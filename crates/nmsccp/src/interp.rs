//! A sequential interleaving interpreter for `nmsccp` configurations.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use softsoa_semiring::{Residuated, Semiring};
use softsoa_telemetry::Telemetry;

use crate::semantics::{enabled, FreshGen, Rule, SemanticsError};
use crate::{Agent, Program, Store};

/// How the interpreter picks among enabled transitions.
///
/// The operational semantics is nondeterministic (rules R3/R5); a
/// policy resolves that nondeterminism. Both policies are
/// deterministic given their inputs, so every run is reproducible.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Policy {
    /// Always take the first enabled transition (left-most agent).
    First,
    /// Rotate through the enabled transitions by step index — a fair
    /// deterministic schedule: no agent is starved forever while
    /// enabled.
    RoundRobin,
    /// Pick uniformly at random with the given seed.
    Random(u64),
}

/// Who caused a trace entry: the agent itself, the timed environment,
/// an injected fault, or a recovery action.
///
/// Faults and recoveries share the trace with ordinary transitions so
/// a resilient run stays replayable from its trace alone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryOrigin {
    /// An ordinary agent transition (rules R1–R10).
    Agent,
    /// A scheduled environment event ([`crate::TimedEvent`]).
    Environment,
    /// An injected fault ([`crate::FaultPlan`]).
    Fault,
    /// A recovery action: retry, rollback or relaxation.
    Recovery,
}

impl std::fmt::Display for EntryOrigin {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            EntryOrigin::Agent => "agent",
            EntryOrigin::Environment => "env",
            EntryOrigin::Fault => "fault",
            EntryOrigin::Recovery => "recovery",
        };
        f.write_str(s)
    }
}

/// One executed step, for post-mortem inspection of a run.
#[derive(Debug, Clone)]
pub struct TraceEntry<S: Semiring> {
    /// 0-based step index.
    pub step: usize,
    /// The rule that fired.
    pub rule: Rule,
    /// Description of the action (e.g. `tell(c4)`).
    pub note: String,
    /// The store consistency `σ ⇓ ∅` after the step.
    pub consistency: S::Value,
    /// How many transitions were enabled when this one was chosen.
    pub enabled: usize,
    /// Who caused the step.
    pub origin: EntryOrigin,
}

/// The terminal state of a run.
#[derive(Debug, Clone)]
pub enum Outcome<S: Semiring> {
    /// Every agent reached `success`.
    Success {
        /// The final store.
        store: Store<S>,
    },
    /// No transition is enabled but agents remain: the configuration
    /// is suspended forever (a failed negotiation, in the paper's
    /// reading).
    Deadlock {
        /// The store at the deadlock.
        store: Store<S>,
        /// The suspended residual agent.
        agent: Agent<S>,
    },
    /// The step budget ran out (e.g. a livelock of asks and retracts).
    OutOfFuel {
        /// The store when the budget ran out.
        store: Store<S>,
        /// The residual agent.
        agent: Agent<S>,
    },
    /// The session deadline passed before the agents finished: the
    /// virtual clock (driven by transitions and retry suspensions)
    /// crossed [`crate::RecoveryPolicy::deadline`] with agents still
    /// pending. Unlike `OutOfFuel` — an interpreter budget — this is a
    /// *negotiated* bound: the client declared how long the session
    /// may take, and a retry schedule is never allowed to sleep past
    /// it.
    DeadlineExceeded {
        /// The store when the deadline passed.
        store: Store<S>,
        /// The residual agent.
        agent: Agent<S>,
    },
}

impl<S: Semiring> Outcome<S> {
    /// Whether the run terminated with `success`.
    pub fn is_success(&self) -> bool {
        matches!(self, Outcome::Success { .. })
    }

    /// A short, residual-free name for metric labels.
    pub(crate) fn label(&self) -> &'static str {
        match self {
            Outcome::Success { .. } => "success",
            Outcome::Deadlock { .. } => "deadlock",
            Outcome::OutOfFuel { .. } => "out_of_fuel",
            Outcome::DeadlineExceeded { .. } => "deadline_exceeded",
        }
    }

    /// The store carried by any outcome.
    pub fn store(&self) -> &Store<S> {
        match self {
            Outcome::Success { store }
            | Outcome::Deadlock { store, .. }
            | Outcome::OutOfFuel { store, .. }
            | Outcome::DeadlineExceeded { store, .. } => store,
        }
    }
}

impl<S: Semiring> std::fmt::Display for Outcome<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Outcome::Success { .. } => write!(f, "SUCCESS"),
            Outcome::Deadlock { agent, .. } => write!(f, "DEADLOCK (residual: {agent})"),
            Outcome::OutOfFuel { agent, .. } => write!(f, "OUT OF FUEL (residual: {agent})"),
            Outcome::DeadlineExceeded { agent, .. } => {
                write!(f, "DEADLINE EXCEEDED (residual: {agent})")
            }
        }
    }
}

/// The full report of a run: outcome, step count and trace.
#[derive(Debug, Clone)]
pub struct RunReport<S: Semiring> {
    /// The terminal state.
    pub outcome: Outcome<S>,
    /// Number of executed transitions.
    pub steps: usize,
    /// The executed transitions, in order.
    pub trace: Vec<TraceEntry<S>>,
}

impl<S: Semiring> RunReport<S> {
    /// The consistency level `σ ⇓ ∅` of the final store, whatever the
    /// outcome — the single number the paper uses to judge a
    /// negotiation.
    ///
    /// # Errors
    ///
    /// Returns [`crate::StoreError`] if a variable of the store's
    /// scope has no declared domain.
    pub fn final_consistency(&self) -> Result<S::Value, crate::StoreError> {
        self.outcome.store().consistency()
    }
}

/// Replays a finished run into `telemetry`: per-rule and per-origin
/// transition counts, the consistency-level time series (indexed by
/// step), the enabled-transition fan-out distribution, the step total
/// and the outcome tally. All derived from the existing trace, so
/// instrumentation costs the run itself one branch.
pub(crate) fn emit_run<S: Semiring>(telemetry: &Telemetry, report: &RunReport<S>) {
    if !telemetry.enabled() {
        return;
    }
    telemetry.incr("nmsccp.runs");
    telemetry.count_labeled("nmsccp.outcome", report.outcome.label(), 1);
    telemetry.count("nmsccp.steps", report.steps as u64);
    for entry in &report.trace {
        telemetry.count_labeled("nmsccp.rule", &entry.rule.to_string(), 1);
        telemetry.count_labeled("nmsccp.origin", &entry.origin.to_string(), 1);
        telemetry.observe("nmsccp.enabled_transitions", entry.enabled as u64);
        telemetry.series(
            "nmsccp.consistency",
            entry.step as u64,
            format!("{:?}", entry.consistency),
        );
    }
}

/// A sequential interpreter executing an agent against a store.
///
/// # Examples
///
/// Example 1 of the paper — providers P1 and P2 merge their policies
/// and P2's final interval check fails, so the run deadlocks:
///
/// ```
/// use softsoa_nmsccp::{Agent, Interpreter, Interval, Program, Store};
/// use softsoa_core::{Constraint, Domain, Domains};
/// use softsoa_semiring::WeightedInt;
///
/// let doms = Domains::new().with("x", Domain::ints(0..=10));
/// let c4 = Constraint::unary(WeightedInt, "x", |v| v.as_int().unwrap() as u64 + 5);
/// let c3 = Constraint::unary(WeightedInt, "x", |v| 2 * v.as_int().unwrap() as u64);
///
/// let p1 = Agent::tell(c4, Interval::any(&WeightedInt), Agent::success());
/// let p2 = Agent::tell(c3, Interval::any(&WeightedInt),
///     // ask(1̄) →^1_4: succeed only if the merged store needs 1–4 hours
///     Agent::ask(Constraint::always(WeightedInt), Interval::levels(4u64, 1u64),
///         Agent::success()));
///
/// let report = Interpreter::new(Program::new())
///     .run(Agent::par(p1, p2), Store::empty(WeightedInt, doms))?;
/// assert!(!report.outcome.is_success()); // σ⇓∅ = 5 ∉ [1, 4]
/// # Ok::<(), softsoa_nmsccp::SemanticsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Interpreter<S: Semiring> {
    program: Program<S>,
    policy: Policy,
    max_steps: usize,
    telemetry: Telemetry,
}

impl<S: Residuated> Interpreter<S> {
    /// Creates an interpreter with the [`Policy::First`] policy and a
    /// budget of 10 000 steps.
    pub fn new(program: Program<S>) -> Interpreter<S> {
        Interpreter {
            program,
            policy: Policy::First,
            max_steps: 10_000,
            telemetry: Telemetry::disabled(),
        }
    }

    /// Sets the scheduling policy.
    pub fn with_policy(mut self, policy: Policy) -> Interpreter<S> {
        self.policy = policy;
        self
    }

    /// Sets the step budget.
    pub fn with_max_steps(mut self, max_steps: usize) -> Interpreter<S> {
        self.max_steps = max_steps;
        self
    }

    /// Attaches a telemetry handle; each finished run is replayed
    /// into it (per-rule counts, consistency series, outcome tally).
    pub fn with_telemetry(mut self, telemetry: Telemetry) -> Interpreter<S> {
        self.telemetry = telemetry;
        self
    }

    /// Runs `agent` to termination, deadlock or fuel exhaustion.
    ///
    /// # Errors
    ///
    /// Returns [`SemanticsError`] on missing domains, unknown
    /// procedures, arity mismatches or unproductive recursion.
    pub fn run(&self, agent: Agent<S>, store: Store<S>) -> Result<RunReport<S>, SemanticsError> {
        let mut rng = match self.policy {
            Policy::First | Policy::RoundRobin => None,
            Policy::Random(seed) => Some(StdRng::seed_from_u64(seed)),
        };
        let mut fresh = FreshGen::new();
        let mut agent = agent.normalize();
        let mut store = store;
        let mut trace = Vec::new();
        let mut steps = 0;

        let finish = |outcome, steps, trace| {
            let report = RunReport {
                outcome,
                steps,
                trace,
            };
            emit_run(&self.telemetry, &report);
            Ok(report)
        };
        loop {
            if agent.is_success() {
                return finish(Outcome::Success { store }, steps, trace);
            }
            if steps >= self.max_steps {
                return finish(Outcome::OutOfFuel { store, agent }, steps, trace);
            }
            let transitions = enabled(&self.program, &agent, &store, &mut fresh)?;
            if transitions.is_empty() {
                return finish(Outcome::Deadlock { store, agent }, steps, trace);
            }
            let count = transitions.len();
            let index = match (&self.policy, &mut rng) {
                (Policy::RoundRobin, _) => steps % count,
                (_, Some(rng)) => rng.random_range(0..count),
                _ => 0,
            };
            let chosen = transitions.into_iter().nth(index).expect("index in range");
            trace.push(TraceEntry {
                step: steps,
                rule: chosen.rule,
                note: chosen.note,
                consistency: chosen.store.consistency()?,
                enabled: count,
                origin: EntryOrigin::Agent,
            });
            agent = chosen.agent.normalize();
            store = chosen.store;
            steps += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Interval;
    use softsoa_core::{Assignment, Constraint, Domain, Domains, Var};
    use softsoa_semiring::WeightedInt;

    fn doms() -> Domains {
        Domains::new().with("x", Domain::ints(0..=10))
    }

    fn linear(a: u64, b: u64, name: &str) -> Constraint<WeightedInt> {
        Constraint::unary(WeightedInt, "x", move |v| {
            a * v.as_int().unwrap() as u64 + b
        })
        .with_label(name)
    }

    fn any() -> Interval<WeightedInt> {
        Interval::any(&WeightedInt)
    }

    /// Example 1: merged policies cost 5 hours minimum; P2's final
    /// interval [1, 4] rejects the store → no shared agreement.
    #[test]
    fn example1_no_agreement() {
        let sp1 = linear(0, 0, "sp1"); // synchronisation constraints are
        let sp2 = linear(0, 0, "sp2"); // zero-cost (pure signals)
        let p1 = Agent::tell(
            linear(1, 5, "c4"),
            any(),
            Agent::tell(
                sp2.clone(),
                any(),
                Agent::ask(sp1.clone(), Interval::levels(10u64, 2u64), Agent::success()),
            ),
        );
        let p2 = Agent::tell(
            linear(2, 0, "c3"),
            any(),
            Agent::tell(
                sp1,
                any(),
                Agent::ask(sp2, Interval::levels(4u64, 1u64), Agent::success()),
            ),
        );
        let report = Interpreter::new(Program::new())
            .run(Agent::par(p1, p2), Store::empty(WeightedInt, doms()))
            .unwrap();
        match &report.outcome {
            Outcome::Deadlock { store, .. } => {
                assert_eq!(store.consistency().unwrap(), 5);
            }
            other => panic!("expected deadlock, got {other:?}"),
        }
    }

    /// Example 2: retracting c1 relaxes the store to 2x + 2, level 2,
    /// inside both intervals → both providers succeed.
    #[test]
    fn example2_agreement_after_retract() {
        let p1 = Agent::tell(
            linear(1, 5, "c4"),
            any(),
            Agent::retract(
                linear(1, 3, "c1"),
                Interval::levels(10u64, 2u64),
                Agent::success(),
            ),
        );
        let p2 = Agent::tell(
            linear(2, 0, "c3"),
            any(),
            Agent::ask(
                Constraint::always(WeightedInt),
                Interval::levels(4u64, 1u64),
                Agent::success(),
            ),
        );
        // P1 then P2's ask: with the First policy, P1's tell and
        // retract run before P2's ask can see the relaxed store; use
        // the parallel order (P1 ‖ P2) and let the scheduler find it.
        let report = Interpreter::new(Program::new())
            .with_policy(Policy::Random(7))
            .run(Agent::par(p1, p2), Store::empty(WeightedInt, doms()))
            .unwrap();
        // The run may deadlock under unlucky schedules (ask before
        // retract with level 5 ∉ [1,4] suspends, then retract enables
        // it again) — ask is re-evaluated, so success must eventually
        // happen.
        match &report.outcome {
            Outcome::Success { store } => {
                assert_eq!(store.consistency().unwrap(), 2);
                let eta = Assignment::new().bind("x", 4);
                assert_eq!(store.sigma().eval(&eta), 10); // 2·4 + 2
            }
            other => panic!("expected success, got {other:?}"),
        }
    }

    /// Example 3: update{x}(c2) refreshes x and leaves the store y + 4.
    #[test]
    fn example3_update() {
        let doms = Domains::new()
            .with("x", Domain::ints(0..=10))
            .with("y", Domain::ints(0..=10));
        let c1 = linear(1, 3, "c1");
        let c2 = Constraint::unary(WeightedInt, "y", |v| v.as_int().unwrap() as u64 + 1)
            .with_label("c2");
        let agent = Agent::tell(
            c1,
            any(),
            Agent::update([Var::new("x")], c2, any(), Agent::success()),
        );
        let report = Interpreter::new(Program::new())
            .run(agent, Store::empty(WeightedInt, doms))
            .unwrap();
        match &report.outcome {
            Outcome::Success { store } => {
                assert_eq!(store.consistency().unwrap(), 4);
                assert!(!store.sigma().scope().contains(&Var::new("x")));
            }
            other => panic!("expected success, got {other:?}"),
        }
    }

    #[test]
    fn trace_records_rules_and_levels() {
        let agent = Agent::tell(linear(1, 1, "c"), any(), Agent::success());
        let report = Interpreter::new(Program::new())
            .run(agent, Store::empty(WeightedInt, doms()))
            .unwrap();
        assert_eq!(report.steps, 1);
        assert_eq!(report.trace.len(), 1);
        assert_eq!(report.trace[0].rule, Rule::Tell);
        assert_eq!(report.trace[0].consistency, 1);
        assert!(report.trace[0].note.contains("c"));
    }

    #[test]
    fn fuel_exhaustion_on_livelock() {
        // p :: tell(1̄) → p  — productive but never terminating.
        let program: Program<WeightedInt> = Program::new().with_clause(
            "p",
            [],
            Agent::tell(
                Constraint::always(WeightedInt).with_label("1"),
                any(),
                Agent::call("p", []),
            ),
        );
        let report = Interpreter::new(program)
            .with_max_steps(50)
            .run(Agent::call("p", []), Store::empty(WeightedInt, doms()))
            .unwrap();
        assert!(matches!(report.outcome, Outcome::OutOfFuel { .. }));
        assert_eq!(report.steps, 50);
    }

    #[test]
    fn round_robin_is_fair_and_deterministic() {
        // Two branches both enabled: round-robin alternates between
        // them, so the second branch's tell lands before the first
        // branch finishes its chain.
        let chain = |tag: u64| {
            Agent::tell(
                linear(0, tag, "a"),
                any(),
                Agent::tell(linear(0, tag, "b"), any(), Agent::success()),
            )
        };
        let run = || {
            Interpreter::new(Program::new())
                .with_policy(Policy::RoundRobin)
                .run(
                    Agent::par(chain(1), chain(2)),
                    Store::empty(WeightedInt, doms()),
                )
                .unwrap()
        };
        let a = run();
        let b = run();
        assert!(a.outcome.is_success());
        let notes: Vec<&str> = a.trace.iter().map(|t| t.note.as_str()).collect();
        assert_eq!(
            notes,
            b.trace.iter().map(|t| t.note.as_str()).collect::<Vec<_>>()
        );
        assert_eq!(a.outcome.store().consistency().unwrap(), 6);
    }

    #[test]
    fn random_policy_is_reproducible() {
        let mk = || {
            Agent::par(
                Agent::tell(linear(0, 1, "a"), any(), Agent::success()),
                Agent::tell(linear(0, 2, "b"), any(), Agent::success()),
            )
        };
        let run = |seed| {
            Interpreter::new(Program::new())
                .with_policy(Policy::Random(seed))
                .run(mk(), Store::empty(WeightedInt, doms()))
                .unwrap()
                .trace
                .iter()
                .map(|t| t.note.clone())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(1));
    }
}
