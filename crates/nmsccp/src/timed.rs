//! Timing mechanisms for nonmonotonic stores.
//!
//! Example 2 of the paper notes that policy changes "can be performed
//! from an interactive console **or by embedding timing mechanisms in
//! the language**" (the timed soft ccp of Bistarelli, Gabbrielli, Meo
//! & Santini, COORDINATION 2008). This module provides the store-level
//! rendition of those mechanisms: a schedule of `tell`/`retract`
//! events indexed by the interpreter's step counter, applied
//! transactionally between agent transitions.

use std::fmt;

use softsoa_core::Constraint;
use softsoa_semiring::{Residuated, Semiring};

use crate::semantics::{enabled, FreshGen, SemanticsError};
use crate::{Agent, Outcome, Program, RunReport, Store, StoreError, TraceEntry};

/// A store mutation scheduled at an interpreter step.
#[derive(Debug, Clone)]
pub enum TimedAction<S: Semiring> {
    /// Add the constraint at the scheduled step.
    Tell(Constraint<S>),
    /// Remove the constraint at the scheduled step (skipped, and
    /// recorded as such, if the store does not entail it then).
    Retract(Constraint<S>),
}

/// A scheduled event: *at* the given step, perform the action.
#[derive(Debug, Clone)]
pub struct TimedEvent<S: Semiring> {
    /// The step count at which the event fires (events at step `k`
    /// fire before the `k`-th agent transition).
    pub at_step: usize,
    /// What to do to the store.
    pub action: TimedAction<S>,
}

/// What happened to a scheduled event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventStatus {
    /// The event was applied to the store.
    Applied,
    /// A retraction was skipped because the store did not entail the
    /// constraint at fire time.
    SkippedNotEntailed,
}

impl fmt::Display for EventStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventStatus::Applied => f.write_str("applied"),
            EventStatus::SkippedNotEntailed => f.write_str("skipped (not entailed)"),
        }
    }
}

/// The report of a timed run: the usual [`RunReport`] plus the fate of
/// every scheduled event.
#[derive(Debug, Clone)]
pub struct TimedRunReport<S: Semiring> {
    /// The underlying run report.
    pub report: RunReport<S>,
    /// `(event index, status)` for every event that fired.
    pub events: Vec<(usize, EventStatus)>,
}

/// An interpreter that interleaves a schedule of store events with
/// agent transitions.
///
/// # Examples
///
/// Example 2 as a timed scenario: the environment retracts `c1` at
/// step 2, relaxing the store enough for the client's `ask` to fire.
///
/// ```
/// use softsoa_nmsccp::{Agent, Interval, Program, Store, TimedInterpreter,
///     TimedEvent, TimedAction};
/// use softsoa_core::{Constraint, Domain, Domains};
/// use softsoa_semiring::WeightedInt;
///
/// let doms = Domains::new().with("x", Domain::ints(0..=10));
/// let lin = |a: u64, b: u64| Constraint::unary(WeightedInt, "x", move |v| {
///     a * v.as_int().unwrap() as u64 + b
/// });
/// // Agents tell c4 and c3, then wait for a 1–4 hour agreement.
/// let agent = Agent::tell(lin(1, 5), Interval::any(&WeightedInt),
///     Agent::tell(lin(2, 0), Interval::any(&WeightedInt),
///         Agent::ask(Constraint::always(WeightedInt),
///             Interval::levels(4u64, 1u64), Agent::success())));
/// let schedule = vec![TimedEvent { at_step: 2, action: TimedAction::Retract(lin(1, 3)) }];
/// let report = TimedInterpreter::new(Program::new(), schedule)
///     .run(agent, Store::empty(WeightedInt, doms))?;
/// assert!(report.report.outcome.is_success());
/// # Ok::<(), softsoa_nmsccp::SemanticsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TimedInterpreter<S: Semiring> {
    program: Program<S>,
    schedule: Vec<TimedEvent<S>>,
    max_steps: usize,
}

impl<S: Residuated> TimedInterpreter<S> {
    /// Creates a timed interpreter over a program and a schedule.
    pub fn new(program: Program<S>, schedule: Vec<TimedEvent<S>>) -> TimedInterpreter<S> {
        TimedInterpreter {
            program,
            schedule,
            max_steps: 10_000,
        }
    }

    /// Sets the step budget.
    pub fn with_max_steps(mut self, max_steps: usize) -> TimedInterpreter<S> {
        self.max_steps = max_steps;
        self
    }

    /// Runs the agent, firing scheduled events at their steps.
    ///
    /// Transitions are chosen with the first-enabled policy. A
    /// suspended agent does not stop the clock: pending events still
    /// fire (each firing counts as one step), which is exactly how a
    /// timed retraction can *unblock* a suspended negotiation.
    ///
    /// # Errors
    ///
    /// Returns [`SemanticsError`] as the sequential interpreter does.
    pub fn run(
        &self,
        agent: Agent<S>,
        store: Store<S>,
    ) -> Result<TimedRunReport<S>, SemanticsError> {
        let mut fresh = FreshGen::new();
        let mut agent = agent.normalize();
        let mut store = store;
        let mut trace = Vec::new();
        let mut events = Vec::new();
        let mut steps = 0usize;
        let mut schedule: Vec<(usize, &TimedEvent<S>)> = self.schedule.iter().enumerate().collect();
        schedule.sort_by_key(|(i, e)| (e.at_step, *i));
        let mut next_event = 0usize;

        loop {
            // Fire due events first.
            while next_event < schedule.len() && schedule[next_event].1.at_step <= steps {
                let (event_index, event) = schedule[next_event];
                next_event += 1;
                let (status, note) = match &event.action {
                    TimedAction::Tell(c) => {
                        store = store.tell(c)?;
                        (EventStatus::Applied, format!("timed tell({})", label(c)))
                    }
                    TimedAction::Retract(c) => match store.retract(c) {
                        Ok(next) => {
                            store = next;
                            (EventStatus::Applied, format!("timed retract({})", label(c)))
                        }
                        Err(StoreError::NotEntailed) => (
                            EventStatus::SkippedNotEntailed,
                            format!("timed retract({}) skipped", label(c)),
                        ),
                        Err(e) => return Err(e.into()),
                    },
                };
                trace.push(TraceEntry {
                    step: steps,
                    rule: crate::Rule::Tell, // environment action
                    note,
                    consistency: store.consistency()?,
                    enabled: 0,
                    origin: crate::EntryOrigin::Environment,
                });
                events.push((event_index, status));
                steps += 1;
            }

            if agent.is_success() {
                return Ok(TimedRunReport {
                    report: RunReport {
                        outcome: Outcome::Success { store },
                        steps,
                        trace,
                    },
                    events,
                });
            }
            if steps >= self.max_steps {
                return Ok(TimedRunReport {
                    report: RunReport {
                        outcome: Outcome::OutOfFuel { store, agent },
                        steps,
                        trace,
                    },
                    events,
                });
            }

            let transitions = enabled(&self.program, &agent, &store, &mut fresh)?;
            if transitions.is_empty() {
                if next_event < schedule.len() {
                    // Suspended, but the environment still has events:
                    // advance the clock to the next event.
                    steps = steps.max(schedule[next_event].1.at_step);
                    continue;
                }
                return Ok(TimedRunReport {
                    report: RunReport {
                        outcome: Outcome::Deadlock { store, agent },
                        steps,
                        trace,
                    },
                    events,
                });
            }
            let count = transitions.len();
            let chosen = transitions.into_iter().next().expect("non-empty");
            trace.push(TraceEntry {
                step: steps,
                rule: chosen.rule,
                note: chosen.note,
                consistency: chosen.store.consistency()?,
                enabled: count,
                origin: crate::EntryOrigin::Agent,
            });
            agent = chosen.agent.normalize();
            store = chosen.store;
            steps += 1;
        }
    }
}

fn label<S: Semiring>(c: &Constraint<S>) -> String {
    c.label().map_or_else(|| "c".to_string(), str::to_string)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Interval;
    use softsoa_core::{Constraint, Domain, Domains};
    use softsoa_semiring::WeightedInt;

    fn doms() -> Domains {
        Domains::new().with("x", Domain::ints(0..=10))
    }

    fn lin(a: u64, b: u64, name: &str) -> Constraint<WeightedInt> {
        Constraint::unary(WeightedInt, "x", move |v| {
            a * v.as_int().unwrap() as u64 + b
        })
        .with_label(name)
    }

    #[test]
    fn timed_retraction_unblocks_a_suspended_ask() {
        // The agent tells c4 ⊗ c3 (level 5) and asks for [1, 4]: stuck
        // until the environment retracts c1 at step 3.
        let agent = Agent::tell(
            lin(1, 5, "c4"),
            Interval::any(&WeightedInt),
            Agent::tell(
                lin(2, 0, "c3"),
                Interval::any(&WeightedInt),
                Agent::ask(
                    Constraint::always(WeightedInt).with_label("1"),
                    Interval::levels(4u64, 1u64),
                    Agent::success(),
                ),
            ),
        );
        let schedule = vec![TimedEvent {
            at_step: 3,
            action: TimedAction::Retract(lin(1, 3, "c1")),
        }];
        let report = TimedInterpreter::new(Program::new(), schedule)
            .run(agent, Store::empty(WeightedInt, doms()))
            .unwrap();
        assert!(report.report.outcome.is_success());
        assert_eq!(report.report.outcome.store().consistency().unwrap(), 2);
        assert_eq!(report.events, vec![(0, EventStatus::Applied)]);
    }

    #[test]
    fn non_entailed_retraction_is_skipped() {
        let agent = Agent::tell(
            lin(1, 1, "c"),
            Interval::any(&WeightedInt),
            Agent::success(),
        );
        let schedule = vec![TimedEvent {
            at_step: 0,
            action: TimedAction::Retract(lin(9, 9, "big")),
        }];
        let report = TimedInterpreter::new(Program::new(), schedule)
            .run(agent, Store::empty(WeightedInt, doms()))
            .unwrap();
        assert!(report.report.outcome.is_success());
        assert_eq!(report.events, vec![(0, EventStatus::SkippedNotEntailed)]);
    }

    #[test]
    fn timed_tell_fires_in_order() {
        let agent = Agent::ask(
            lin(0, 2, "goal"),
            Interval::any(&WeightedInt),
            Agent::success(),
        );
        let schedule = vec![
            TimedEvent {
                at_step: 1,
                action: TimedAction::Tell(lin(0, 1, "one")),
            },
            TimedEvent {
                at_step: 2,
                action: TimedAction::Tell(lin(0, 1, "one-more")),
            },
        ];
        let report = TimedInterpreter::new(Program::new(), schedule)
            .run(agent, Store::empty(WeightedInt, doms()))
            .unwrap();
        assert!(report.report.outcome.is_success());
        // 1̄ ⊗ 1 ⊗ 1 = constant 2 ≥ goal = 2.
        assert_eq!(report.report.outcome.store().consistency().unwrap(), 2);
    }

    #[test]
    fn mid_run_retraction_not_entailed_is_skipped_and_run_continues() {
        // The store holds x+1 when the retraction of 2x+2 fires: the
        // store does not entail it (x+1 ⋢ 2x+2), so the event is
        // skipped and the remaining agent steps still run.
        let agent = Agent::tell(
            lin(1, 1, "c"),
            Interval::any(&WeightedInt),
            Agent::tell(
                lin(0, 1, "d"),
                Interval::any(&WeightedInt),
                Agent::success(),
            ),
        );
        let schedule = vec![TimedEvent {
            at_step: 1,
            action: TimedAction::Retract(lin(2, 2, "big")),
        }];
        let report = TimedInterpreter::new(Program::new(), schedule)
            .run(agent, Store::empty(WeightedInt, doms()))
            .unwrap();
        assert!(report.report.outcome.is_success());
        assert_eq!(report.events, vec![(0, EventStatus::SkippedNotEntailed)]);
        // Both tells still landed: σ⇓∅ = (x+1 ⊗ 1̄+1)⇓∅ = 2 at x = 0.
        assert_eq!(report.report.final_consistency().unwrap(), 2);
        // The skipped event still leaves a trace entry, marked as the
        // environment's.
        let skip = report
            .report
            .trace
            .iter()
            .find(|t| t.note.contains("skipped"))
            .expect("skipped event traced");
        assert_eq!(skip.origin, crate::EntryOrigin::Environment);
    }

    #[test]
    fn events_sharing_a_step_fire_in_schedule_order() {
        // Two tells and a retract all at step 0. Schedule order is
        // tell(a), tell(b), retract(a): the retract must see a store
        // already holding a ⊗ b, so it applies (not skipped) and the
        // final level is b's alone.
        let agent = Agent::ask(
            Constraint::always(WeightedInt).with_label("1"),
            Interval::levels(3u64, 0u64),
            Agent::success(),
        );
        let schedule = vec![
            TimedEvent {
                at_step: 0,
                action: TimedAction::Tell(lin(0, 5, "a")),
            },
            TimedEvent {
                at_step: 0,
                action: TimedAction::Tell(lin(0, 3, "b")),
            },
            TimedEvent {
                at_step: 0,
                action: TimedAction::Retract(lin(0, 5, "a")),
            },
        ];
        let report = TimedInterpreter::new(Program::new(), schedule)
            .run(agent, Store::empty(WeightedInt, doms()))
            .unwrap();
        // All three applied, in declaration order.
        assert_eq!(
            report.events,
            vec![
                (0, EventStatus::Applied),
                (1, EventStatus::Applied),
                (2, EventStatus::Applied),
            ]
        );
        // Trace notes confirm the firing order a, b, retract(a).
        let notes: Vec<&str> = report
            .report
            .trace
            .iter()
            .filter(|t| t.origin == crate::EntryOrigin::Environment)
            .map(|t| t.note.as_str())
            .collect();
        assert_eq!(
            notes,
            vec!["timed tell(a)", "timed tell(b)", "timed retract(a)"]
        );
        assert!(report.report.outcome.is_success());
        assert_eq!(report.report.final_consistency().unwrap(), 3);
    }

    #[test]
    fn deadlock_when_schedule_exhausted() {
        let agent = Agent::ask(
            lin(0, 5, "never"),
            Interval::any(&WeightedInt),
            Agent::success(),
        );
        let report = TimedInterpreter::new(Program::new(), vec![])
            .run(agent, Store::empty(WeightedInt, doms()))
            .unwrap();
        assert!(matches!(report.report.outcome, Outcome::Deadlock { .. }));
    }
}
