//! The agent syntax of the `nmsccp` language (Fig. 2).
//!
//! ```text
//! P ::= F.A
//! F ::= p(Y) :: A | F.F
//! A ::= success | tell(c)▷A | retract(c)▷A | update_X(c)▷A
//!     | E | A ‖ A | ∃x.A | p(Y)
//! E ::= ask(c)▷A | nask(c)▷A | E + E
//! ```
//!
//! where `▷` is one of the checked transitions of
//! [Fig. 3](crate::Interval).

use std::collections::BTreeMap;
use std::fmt;

use softsoa_core::{Constraint, Var};
use softsoa_semiring::Semiring;

use crate::Interval;

/// A checked action `op(c) →ᵘₗ A`: the constraint it carries, its
/// consistency interval and the continuation agent.
#[derive(Debug, Clone)]
pub struct Action<S: Semiring> {
    pub(crate) constraint: Constraint<S>,
    pub(crate) check: Interval<S>,
    pub(crate) then: Box<Agent<S>>,
}

impl<S: Semiring> Action<S> {
    /// The constraint carried by the action.
    pub fn constraint(&self) -> &Constraint<S> {
        &self.constraint
    }

    /// The consistency interval guarding the action.
    pub fn check(&self) -> &Interval<S> {
        &self.check
    }

    /// The continuation agent.
    pub fn then(&self) -> &Agent<S> {
        &self.then
    }
}

/// Whether a guard asks for entailment or for its absence.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GuardKind {
    /// `ask(c)`: enabled when `σ ⊢ c` (rule R2).
    Ask,
    /// `nask(c)`: enabled when `σ ⊬ c` (rule R6).
    Nask,
}

/// One branch of a nondeterministic sum `E + E`.
#[derive(Debug, Clone)]
pub struct Guard<S: Semiring> {
    pub(crate) kind: GuardKind,
    pub(crate) constraint: Constraint<S>,
    pub(crate) check: Interval<S>,
    pub(crate) then: Agent<S>,
}

impl<S: Semiring> Guard<S> {
    /// An `ask(c) →ᵘₗ then` guard.
    pub fn ask(constraint: Constraint<S>, check: Interval<S>, then: Agent<S>) -> Guard<S> {
        Guard {
            kind: GuardKind::Ask,
            constraint,
            check,
            then,
        }
    }

    /// A `nask(c) →ᵘₗ then` guard.
    pub fn nask(constraint: Constraint<S>, check: Interval<S>, then: Agent<S>) -> Guard<S> {
        Guard {
            kind: GuardKind::Nask,
            constraint,
            check,
            then,
        }
    }

    /// Whether this is an `ask` or a `nask` guard.
    pub fn kind(&self) -> GuardKind {
        self.kind
    }
}

/// An `nmsccp` agent (Fig. 2).
///
/// Build agents with the constructor methods; they read close to the
/// paper's syntax:
///
/// ```
/// use softsoa_nmsccp::{Agent, Interval};
/// use softsoa_core::Constraint;
/// use softsoa_semiring::WeightedInt;
///
/// let c4 = Constraint::unary(WeightedInt, "x", |v| v.as_int().unwrap() as u64 + 5);
/// // tell(c4) →^0_∞ success
/// let p1 = Agent::tell(c4, Interval::any(&WeightedInt), Agent::success());
/// assert!(!p1.is_success());
/// ```
#[derive(Debug, Clone)]
pub enum Agent<S: Semiring> {
    /// The terminated agent.
    Success,
    /// `tell(c) →ᵘₗ A` (rule R1): add `c` to the store.
    Tell(Action<S>),
    /// `retract(c) →ᵘₗ A` (rule R7): remove `c` from the store.
    Retract(Action<S>),
    /// `update_X(c) →ᵘₗ A` (rule R8): refresh the variables in `X`,
    /// then add `c`.
    Update {
        /// The variables `X` whose information is discarded.
        vars: Vec<Var>,
        /// The constraint to add and the guarded continuation.
        action: Action<S>,
    },
    /// A nondeterministic sum of `ask`/`nask` guards (rules R2, R5,
    /// R6).
    Sum(Vec<Guard<S>>),
    /// Parallel composition `A ‖ B` by interleaving (rules R3, R4).
    Par(Box<Agent<S>>, Box<Agent<S>>),
    /// Hiding `∃x.A` (rule R9).
    Hide {
        /// The hidden (local) variable.
        var: Var,
        /// The agent body.
        body: Box<Agent<S>>,
    },
    /// A procedure call `p(Y)` (rule R10).
    Call {
        /// The procedure name.
        name: String,
        /// The actual parameters.
        args: Vec<Var>,
    },
}

impl<S: Semiring> Agent<S> {
    /// The terminated agent `success`.
    pub fn success() -> Agent<S> {
        Agent::Success
    }

    /// `tell(c) →ᵘₗ then`.
    pub fn tell(c: Constraint<S>, check: Interval<S>, then: Agent<S>) -> Agent<S> {
        Agent::Tell(Action {
            constraint: c,
            check,
            then: Box::new(then),
        })
    }

    /// `ask(c) →ᵘₗ then` (a one-guard sum).
    pub fn ask(c: Constraint<S>, check: Interval<S>, then: Agent<S>) -> Agent<S> {
        Agent::Sum(vec![Guard::ask(c, check, then)])
    }

    /// `nask(c) →ᵘₗ then` (a one-guard sum).
    pub fn nask(c: Constraint<S>, check: Interval<S>, then: Agent<S>) -> Agent<S> {
        Agent::Sum(vec![Guard::nask(c, check, then)])
    }

    /// `retract(c) →ᵘₗ then`.
    pub fn retract(c: Constraint<S>, check: Interval<S>, then: Agent<S>) -> Agent<S> {
        Agent::Retract(Action {
            constraint: c,
            check,
            then: Box::new(then),
        })
    }

    /// `update_X(c) →ᵘₗ then`.
    pub fn update(
        vars: impl IntoIterator<Item = Var>,
        c: Constraint<S>,
        check: Interval<S>,
        then: Agent<S>,
    ) -> Agent<S> {
        Agent::Update {
            vars: vars.into_iter().collect(),
            action: Action {
                constraint: c,
                check,
                then: Box::new(then),
            },
        }
    }

    /// The nondeterministic sum `E₁ + E₂ + ...`.
    pub fn sum(guards: impl IntoIterator<Item = Guard<S>>) -> Agent<S> {
        Agent::Sum(guards.into_iter().collect())
    }

    /// Parallel composition `a ‖ b`.
    pub fn par(a: Agent<S>, b: Agent<S>) -> Agent<S> {
        Agent::Par(Box::new(a), Box::new(b))
    }

    /// Parallel composition of many agents (right-associated).
    pub fn par_all(agents: impl IntoIterator<Item = Agent<S>>) -> Agent<S> {
        let mut list: Vec<Agent<S>> = agents.into_iter().collect();
        match list.pop() {
            None => Agent::Success,
            Some(last) => list
                .into_iter()
                .rev()
                .fold(last, |acc, a| Agent::par(a, acc)),
        }
    }

    /// Hiding `∃var. body`.
    pub fn hide(var: impl Into<Var>, body: Agent<S>) -> Agent<S> {
        Agent::Hide {
            var: var.into(),
            body: Box::new(body),
        }
    }

    /// A procedure call `name(args)`.
    pub fn call(name: impl Into<String>, args: impl IntoIterator<Item = Var>) -> Agent<S> {
        Agent::Call {
            name: name.into(),
            args: args.into_iter().collect(),
        }
    }

    /// Whether the agent is `success`.
    pub fn is_success(&self) -> bool {
        matches!(self, Agent::Success)
    }

    /// Validates every checked-transition interval in the agent against
    /// the parenthesised side conditions of Fig. 3 (the lower threshold
    /// must not be better than the upper one), recursively.
    ///
    /// An intrinsically contradictory interval makes its action
    /// permanently disabled — legal operationally, but almost always a
    /// specification bug; brokers should validate agents before
    /// running a negotiation.
    ///
    /// # Errors
    ///
    /// Returns the first [`crate::ValidationError`] found.
    pub fn validate_intervals(
        &self,
        semiring: &S,
        domains: &softsoa_core::Domains,
    ) -> Result<(), crate::ValidationError> {
        match self {
            Agent::Success | Agent::Call { .. } => Ok(()),
            Agent::Tell(a) | Agent::Retract(a) | Agent::Update { action: a, .. } => {
                a.check.validate(semiring, domains)?;
                a.then.validate_intervals(semiring, domains)
            }
            Agent::Sum(guards) => {
                for g in guards {
                    g.check.validate(semiring, domains)?;
                    g.then.validate_intervals(semiring, domains)?;
                }
                Ok(())
            }
            Agent::Par(a, b) => {
                a.validate_intervals(semiring, domains)?;
                b.validate_intervals(semiring, domains)
            }
            Agent::Hide { body, .. } => body.validate_intervals(semiring, domains),
        }
    }

    /// Renames free occurrences of `from` to `to` throughout the agent
    /// (constraints, update variable sets, call arguments). Respects
    /// shadowing by inner `∃from` binders.
    ///
    /// # Panics
    ///
    /// Panics if the renaming would capture `to` in a constraint whose
    /// support already mentions it.
    pub fn rename_var(&self, from: &Var, to: &Var) -> Agent<S> {
        let rename_in = |v: &Var| if v == from { to.clone() } else { v.clone() };
        match self {
            Agent::Success => Agent::Success,
            Agent::Tell(a) => Agent::Tell(a.rename_var(from, to)),
            Agent::Retract(a) => Agent::Retract(a.rename_var(from, to)),
            Agent::Update { vars, action } => Agent::Update {
                vars: vars.iter().map(rename_in).collect(),
                action: action.rename_var(from, to),
            },
            Agent::Sum(guards) => Agent::Sum(
                guards
                    .iter()
                    .map(|g| Guard {
                        kind: g.kind,
                        constraint: g.constraint.rename(from, to),
                        check: g.check.rename_var(from, to),
                        then: g.then.rename_var(from, to),
                    })
                    .collect(),
            ),
            Agent::Par(a, b) => Agent::par(a.rename_var(from, to), b.rename_var(from, to)),
            Agent::Hide { var, body } => {
                if var == from {
                    // `from` is shadowed inside.
                    self.clone()
                } else {
                    Agent::Hide {
                        var: var.clone(),
                        body: Box::new(body.rename_var(from, to)),
                    }
                }
            }
            Agent::Call { name, args } => Agent::Call {
                name: name.clone(),
                args: args.iter().map(rename_in).collect(),
            },
        }
    }
}

impl<S: Semiring> Action<S> {
    fn rename_var(&self, from: &Var, to: &Var) -> Action<S> {
        Action {
            constraint: self.constraint.rename(from, to),
            check: self.check.rename_var(from, to),
            then: Box::new(self.then.rename_var(from, to)),
        }
    }
}

impl<S: Semiring> fmt::Display for Agent<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Agent::Success => f.write_str("success"),
            Agent::Tell(a) => write!(f, "tell({})▷{}", label_of(&a.constraint), a.then),
            Agent::Retract(a) => write!(f, "retract({})▷{}", label_of(&a.constraint), a.then),
            Agent::Update { vars, action } => {
                write!(f, "update{{")?;
                for (i, v) in vars.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "}}({})▷{}", label_of(&action.constraint), action.then)
            }
            Agent::Sum(guards) => {
                for (i, g) in guards.iter().enumerate() {
                    if i > 0 {
                        f.write_str(" + ")?;
                    }
                    let op = match g.kind {
                        GuardKind::Ask => "ask",
                        GuardKind::Nask => "nask",
                    };
                    write!(f, "{op}({})▷{}", label_of(&g.constraint), g.then)?;
                }
                Ok(())
            }
            Agent::Par(a, b) => write!(f, "({a} ‖ {b})"),
            Agent::Hide { var, body } => write!(f, "∃{var}.{body}"),
            Agent::Call { name, args } => {
                write!(f, "{name}(")?;
                for (i, v) in args.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{v}")?;
                }
                f.write_str(")")
            }
        }
    }
}

fn label_of<S: Semiring>(c: &Constraint<S>) -> String {
    c.label().map_or_else(|| "c".to_string(), str::to_string)
}

/// A procedure declaration `p(Y) :: A`.
#[derive(Debug, Clone)]
pub struct Clause<S: Semiring> {
    pub(crate) params: Vec<Var>,
    pub(crate) body: Agent<S>,
}

impl<S: Semiring> Clause<S> {
    /// Creates the clause `name(params) :: body`.
    pub fn new(params: impl IntoIterator<Item = Var>, body: Agent<S>) -> Clause<S> {
        Clause {
            params: params.into_iter().collect(),
            body,
        }
    }

    /// The formal parameters.
    pub fn params(&self) -> &[Var] {
        &self.params
    }

    /// The clause body.
    pub fn body(&self) -> &Agent<S> {
        &self.body
    }
}

/// A set of procedure declarations `F` — the static part of a program
/// `P = F.A`.
#[derive(Debug, Clone, Default)]
pub struct Program<S: Semiring> {
    clauses: BTreeMap<String, Clause<S>>,
}

impl<S: Semiring> Program<S> {
    /// Creates an empty program (no declarations).
    pub fn new() -> Program<S> {
        Program {
            clauses: BTreeMap::new(),
        }
    }

    /// Adds the declaration `name(params) :: body` (builder style).
    pub fn with_clause(
        mut self,
        name: impl Into<String>,
        params: impl IntoIterator<Item = Var>,
        body: Agent<S>,
    ) -> Program<S> {
        self.clauses.insert(name.into(), Clause::new(params, body));
        self
    }

    /// Looks up a declaration by name.
    pub fn clause(&self, name: &str) -> Option<&Clause<S>> {
        self.clauses.get(name)
    }

    /// The number of declarations.
    pub fn len(&self) -> usize {
        self.clauses.len()
    }

    /// Whether the program has no declarations.
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softsoa_semiring::WeightedInt;

    fn tell_x(var: &str) -> Agent<WeightedInt> {
        let v = Var::new(var);
        Agent::tell(
            Constraint::unary(WeightedInt, v, |val| val.as_int().unwrap() as u64),
            Interval::any(&WeightedInt),
            Agent::success(),
        )
    }

    #[test]
    fn par_all_right_associates() {
        let a = Agent::par_all([tell_x("x"), tell_x("y"), tell_x("z")]);
        match a {
            Agent::Par(_, rest) => match *rest {
                Agent::Par(_, _) => {}
                _ => panic!("expected nested Par"),
            },
            _ => panic!("expected Par"),
        }
        assert!(Agent::<WeightedInt>::par_all([]).is_success());
    }

    #[test]
    fn rename_respects_shadowing() {
        let inner = tell_x("x");
        let hidden = Agent::hide("x", inner);
        let renamed = hidden.rename_var(&Var::new("x"), &Var::new("y"));
        // x is bound by ∃x, so nothing changes.
        match renamed {
            Agent::Hide { var, body } => {
                assert_eq!(var, Var::new("x"));
                match *body {
                    Agent::Tell(a) => assert_eq!(a.constraint().scope(), &[Var::new("x")]),
                    _ => panic!("expected Tell"),
                }
            }
            _ => panic!("expected Hide"),
        }
    }

    #[test]
    fn rename_changes_free_occurrences() {
        let renamed = tell_x("x").rename_var(&Var::new("x"), &Var::new("y"));
        match renamed {
            Agent::Tell(a) => assert_eq!(a.constraint().scope(), &[Var::new("y")]),
            _ => panic!("expected Tell"),
        }
    }

    #[test]
    fn interval_validation_walks_the_tree() {
        use crate::{Interval, ValidationError};
        use softsoa_core::{Domain, Domains};
        let doms = Domains::new().with("x", Domain::ints(0..=3));
        let ok = Agent::par(
            tell_x("x"),
            Agent::tell(
                Constraint::always(WeightedInt),
                Interval::levels(9u64, 1u64), // floor 9 hours, cap 1 hour: fine
                Agent::success(),
            ),
        );
        assert!(ok.validate_intervals(&WeightedInt, &doms).is_ok());
        // Weighted: lower threshold 1 hour is strictly *better* than
        // the upper threshold 9 hours → contradictory.
        let bad = Agent::par(
            tell_x("x"),
            Agent::hide(
                "x",
                Agent::ask(
                    Constraint::always(WeightedInt),
                    Interval::levels(1u64, 9u64),
                    Agent::success(),
                ),
            ),
        );
        assert!(matches!(
            bad.validate_intervals(&WeightedInt, &doms),
            Err(ValidationError::Invalid(_))
        ));
    }

    #[test]
    fn display_is_readable() {
        let agent = Agent::par(tell_x("x"), Agent::success());
        assert_eq!(agent.to_string(), "(tell(c)▷success ‖ success)");
    }

    #[test]
    fn program_lookup() {
        let p: Program<WeightedInt> =
            Program::new().with_clause("p", [Var::new("x")], Agent::success());
        assert!(p.clause("p").is_some());
        assert!(p.clause("q").is_none());
        assert_eq!(p.len(), 1);
    }
}
