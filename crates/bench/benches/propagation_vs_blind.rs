//! E16 — the propagation-and-decomposition engine: blind
//! branch-and-bound vs soft arc-consistency (root and full),
//! estimate-driven ordering, and connected-component decomposition.
//!
//! Every variant returns the identical `blevel` (property-tested in
//! `softsoa-core`); the series measures what the preprocessing layer
//! buys in explored nodes and wall-clock on the structured k-component
//! union family, where both levers engage: banded components give root
//! pruning real forbidden values to cut, and the union splits into
//! independent subproblems.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use softsoa_core::generate::{union_weighted, UnionScsp};
use softsoa_core::solve::{
    BranchAndBound, Parallelism, PropagationMode, Solver, SolverConfig, VarOrder,
};
use std::hint::black_box;

fn problem(
    components: usize,
    vars_per_component: usize,
) -> softsoa_core::Scsp<softsoa_semiring::WeightedInt> {
    union_weighted(&UnionScsp {
        components,
        vars_per_component,
        domain_size: 3,
        band: 2,
        seed: 42,
    })
}

fn sequential() -> SolverConfig {
    SolverConfig::default().with_parallelism(Parallelism::Sequential)
}

fn blind() -> SolverConfig {
    sequential()
        .with_propagation(PropagationMode::Off)
        .with_decompose(false)
}

fn report_row() {
    // The acceptance shape in one line per size: identical blevel and
    // witness validity, with the full engine exploring at least 10x
    // fewer nodes than the blind run.
    println!(
        "--- E16 / propagation + decomposition (shape: engine explores >=10x fewer nodes) ---"
    );
    for (k, m) in [(3usize, 5usize), (4, 4), (4, 5)] {
        let p = problem(k, m);
        let reference = BranchAndBound::with_config(VarOrder::Input, blind())
            .solve(&p)
            .unwrap();
        let propagated = BranchAndBound::with_config(
            VarOrder::Input,
            sequential()
                .with_propagation(PropagationMode::Root)
                .with_decompose(false),
        )
        .solve(&p)
        .unwrap();
        let engine = BranchAndBound::with_config(VarOrder::Input, sequential())
            .solve(&p)
            .unwrap();
        assert_eq!(propagated.blevel(), reference.blevel());
        assert_eq!(
            propagated.best_assignment(),
            reference.best_assignment(),
            "root propagation must preserve the blind witness"
        );
        assert_eq!(engine.blevel(), reference.blevel());
        assert!(
            engine.best_assignment().is_some(),
            "the engine run lost its witness at k={k} m={m}"
        );
        let (b, r, e) = (
            reference.stats().unwrap(),
            propagated.stats().unwrap(),
            engine.stats().unwrap(),
        );
        assert!(
            e.nodes * 10 <= b.nodes,
            "engine {} nodes vs blind {} at k={k} m={m}: less than 10x",
            e.nodes,
            b.nodes
        );
        println!(
            "measured: k={k} m={m}  blind {:>9} nodes  root-AC {:>9} nodes  engine {:>7} nodes ({} components)",
            b.nodes, r.nodes, e.nodes, e.components
        );
    }
}

fn bench(c: &mut Criterion) {
    report_row();
    let mut group = c.benchmark_group("propagation_vs_blind");
    for (k, m) in [(3usize, 5usize), (4, 4), (4, 5)] {
        let p = problem(k, m);
        let id = format!("{k}x{m}");
        group.bench_with_input(BenchmarkId::new("blind", &id), &p, |b, p| {
            b.iter(|| {
                BranchAndBound::with_config(VarOrder::Input, blind())
                    .solve(black_box(p))
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("propagate_root", &id), &p, |b, p| {
            b.iter(|| {
                BranchAndBound::with_config(
                    VarOrder::Input,
                    sequential()
                        .with_propagation(PropagationMode::Root)
                        .with_decompose(false),
                )
                .solve(black_box(p))
                .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("propagate_full", &id), &p, |b, p| {
            b.iter(|| {
                BranchAndBound::with_config(
                    VarOrder::Input,
                    sequential()
                        .with_propagation(PropagationMode::Full)
                        .with_decompose(false),
                )
                .solve(black_box(p))
                .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("estimate_order", &id), &p, |b, p| {
            b.iter(|| {
                BranchAndBound::with_config(VarOrder::Estimate, sequential().with_decompose(false))
                    .solve(black_box(p))
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("decomposed", &id), &p, |b, p| {
            b.iter(|| {
                BranchAndBound::with_config(VarOrder::Input, sequential())
                    .solve(black_box(p))
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
