//! E1 — Fig. 1: the weighted SCSP and its solution.
//!
//! Regenerates the paper's numbers (solution `⟨a⟩ → 7`, `⟨b⟩ → 16`,
//! `blevel = 7`) and measures all three solvers on the problem.

use criterion::{criterion_group, criterion_main, Criterion};
use softsoa_bench::fig1_problem;
use softsoa_core::solve::{BranchAndBound, BucketElimination, EnumerationSolver, Solver};
use softsoa_core::Assignment;
use std::hint::black_box;

fn report_row() {
    let p = fig1_problem();
    let solution = p.solve().expect("fig1 solves");
    let table = solution.solution_constraint().expect("table");
    println!("--- E1 / Fig. 1 (paper: ⟨a⟩→7, ⟨b⟩→16, blevel = 7) ---");
    println!(
        "measured: ⟨a⟩→{}, ⟨b⟩→{}, blevel = {}",
        table.eval(&Assignment::new().bind("x", "a")),
        table.eval(&Assignment::new().bind("x", "b")),
        solution.blevel()
    );
    assert_eq!(*solution.blevel(), 7);
}

fn bench(c: &mut Criterion) {
    report_row();
    let p = fig1_problem();
    let mut group = c.benchmark_group("fig1");
    group.bench_function("enumeration", |b| {
        b.iter(|| EnumerationSolver::new().solve(black_box(&p)).unwrap())
    });
    group.bench_function("branch_and_bound", |b| {
        b.iter(|| BranchAndBound::default().solve(black_box(&p)).unwrap())
    });
    group.bench_function("bucket_elimination", |b| {
        b.iter(|| BucketElimination::default().solve(black_box(&p)).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
