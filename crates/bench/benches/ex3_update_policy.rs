//! E5 — Example 3 (update): the transactional policy refresh.
//!
//! `tell(c1)` then `update{x}(c2)` projects away everything known
//! about `x` and adds `c2 = y + 1`, leaving the store `≡ y + 4` —
//! the fixed 3-hour management delay of the old policy survives.

use criterion::{criterion_group, criterion_main, Criterion};
use softsoa_bench::{example3_agent, example3_domains, fig7_constraint};
use softsoa_core::Var;
use softsoa_nmsccp::{Interpreter, Program, Store};
use softsoa_semiring::WeightedInt;
use std::hint::black_box;

fn report_row() {
    let report = Interpreter::new(Program::new())
        .run(
            example3_agent(),
            Store::empty(WeightedInt, example3_domains()),
        )
        .expect("runs");
    println!("--- E5 / Example 3 (paper: store ≡ y + 4) ---");
    assert!(report.outcome.is_success());
    let store = report.outcome.store();
    let level = store.consistency().unwrap();
    println!(
        "measured: success, σ⇓∅ = {level}, support = {:?}",
        store.sigma().scope()
    );
    assert_eq!(level, 4);
    assert_eq!(store.sigma().scope(), &[Var::new("y")]);
}

fn bench(c: &mut Criterion) {
    report_row();
    let mut group = c.benchmark_group("ex3");
    group.bench_function("run_update_session", |b| {
        b.iter(|| {
            Interpreter::new(Program::new())
                .run(
                    black_box(example3_agent()),
                    Store::empty(WeightedInt, example3_domains()),
                )
                .unwrap()
        })
    });
    group.bench_function("store_update_only", |b| {
        let c1 = fig7_constraint(1, 3, "x");
        let c2 = fig7_constraint(1, 1, "y");
        let base = Store::empty(WeightedInt, example3_domains())
            .tell(&c1)
            .unwrap();
        b.iter(|| {
            base.update(black_box(&[Var::new("x")]), black_box(&c2))
                .unwrap()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
