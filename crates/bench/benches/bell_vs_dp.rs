//! E15 — coalition formation at scale: the restricted-growth-string
//! Bell-number enumeration vs the `O(3ⁿ)` subset DP.
//!
//! Both engines return the same optimal score (equivalence-tested in
//! `softsoa-coalition`); the series shows the DP pulling away as `n`
//! grows — `B(13) ≈ 27.6` million partitions against `3¹³ ≈ 1.6`
//! million DP transitions — and reaching `n = 16..18` where the
//! enumeration is out of the question.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use softsoa_coalition::{
    exact_formation_enumerated, exact_formation_with, FormationConfig, TrustComposition,
    TrustNetwork,
};
use softsoa_core::solve::Parallelism;
use std::hint::black_box;

fn config() -> FormationConfig {
    FormationConfig {
        compose: TrustComposition::Average,
        require_stability: false,
        max_coalitions: None,
    }
}

fn bench(c: &mut Criterion) {
    println!("--- E15 / Bell enumeration vs subset DP (shape: DP ≥ 5× faster at n = 13) ---");
    let mut group = c.benchmark_group("bell_vs_dp");
    for n in [10u32, 12, 13] {
        let net = TrustNetwork::clustered(n, 3, 0.85, 0.15, u64::from(n));
        group.bench_with_input(BenchmarkId::new("bell_enumeration", n), &net, |b, net| {
            b.iter(|| {
                exact_formation_enumerated(black_box(net), config(), Parallelism::Sequential)
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("subset_dp", n), &net, |b, net| {
            b.iter(|| {
                exact_formation_with(black_box(net), config(), Parallelism::Sequential).unwrap()
            })
        });
    }
    // Beyond the Bell ceiling: the DP alone, up to the new n = 18
    // exact-formation limit (3¹⁸ ≈ 193 million transitions).
    for n in [14u32, 16] {
        let net = TrustNetwork::clustered(n, 3, 0.85, 0.15, u64::from(n));
        group.bench_with_input(BenchmarkId::new("subset_dp", n), &net, |b, net| {
            b.iter(|| {
                exact_formation_with(black_box(net), config(), Parallelism::Sequential).unwrap()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
