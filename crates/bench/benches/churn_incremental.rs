//! E17 — incremental re-solve vs from-scratch search under registry
//! churn.
//!
//! The churn family (`softsoa_bench::churn`) hits a registry of many
//! independent 2-variable clusters with join / leave / QoS-update
//! events; every event dirties exactly one cluster. The incremental
//! engine re-searches that one component and pulls the rest out of its
//! component cache, while the cold baseline re-solves the whole
//! registry after every event — same deltas, same blevels, asserted
//! below before anything is timed.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use softsoa_bench::churn::{
    apply, build, churn_events, run_cold, run_incremental, run_warm, ChurnWorkload,
};
use std::hint::black_box;
use std::time::Instant;

fn shapes() -> [ChurnWorkload; 2] {
    [
        ChurnWorkload {
            clusters: 12,
            domain_size: 8,
            events: 32,
            seed: 7,
        },
        ChurnWorkload::default_shape(),
    ]
}

fn report_row() {
    println!(
        "--- E17 / registry churn (shape: incremental == cold, one component re-searched) ---"
    );
    for w in shapes() {
        let (incremental, stats) = run_incremental(&w);
        let cold = run_cold(&w);
        let warm = run_warm(&w);
        assert_eq!(
            incremental, cold,
            "incremental and from-scratch blevels diverged at {w:?}"
        );
        assert_eq!(
            incremental, warm,
            "incremental and warm-seeded blevels diverged at {w:?}"
        );
        // Every post-event solve sees `clusters` components and should
        // re-search only the one the event dirtied.
        assert!(
            stats.components_reused > stats.components_resolved,
            "churn should mostly reuse cached components: {stats:?}"
        );

        // Per-event latency of the steady-state incremental loop.
        let events = churn_events(&w);
        let (mut solver, mut handles) = build(&w);
        solver.solve().unwrap();
        let mut micros: Vec<u128> = events
            .iter()
            .map(|event| {
                let start = Instant::now();
                apply(&mut solver, &mut handles, event);
                black_box(solver.solve().unwrap());
                start.elapsed().as_micros()
            })
            .collect();
        micros.sort_unstable();
        let p50 = micros[micros.len() / 2];
        let p99 = micros[(micros.len() * 99 / 100).min(micros.len() - 1)];
        println!(
            "measured: clusters={:>2} events={:>2}  per-event p50 {p50} µs  p99 {p99} µs  \
             reuse ratio {:.3}",
            w.clusters,
            w.events,
            stats.reuse_ratio()
        );
    }
}

fn bench(c: &mut Criterion) {
    report_row();
    let mut group = c.benchmark_group("churn_incremental");
    for w in shapes() {
        let id = format!("{}x{}", w.clusters, w.events);
        group.bench_with_input(BenchmarkId::new("incremental", &id), &w, |b, w| {
            b.iter(|| run_incremental(black_box(w)))
        });
        group.bench_with_input(BenchmarkId::new("warm", &id), &w, |b, w| {
            b.iter(|| run_warm(black_box(w)))
        });
        group.bench_with_input(BenchmarkId::new("cold", &id), &w, |b, w| {
            b.iter(|| run_cold(black_box(w)))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
