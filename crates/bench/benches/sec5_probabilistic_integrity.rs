//! E7 — Sec. 5: quantitative (probabilistic) integrity.
//!
//! The paper's spot value `c1(4096 Kb, 1024 Kb) = 0.96`, the
//! minimum-reliability requirement check `MemoryProb ⊑ Imp3`, and the
//! best-configuration search via `blevel`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use softsoa_dependability::{meets_requirement, photo};
use softsoa_semiring::Unit;
use std::hint::black_box;

fn report_row() {
    let spot = photo::stage_reliability(4096, 1024);
    println!("--- E7 / Sec. 5 quantitative (paper: c1(4096,1024) = 0.96) ---");
    println!("measured: {spot}");
    assert!((spot.get() - 0.96).abs() < 1e-12);
}

fn bench(c: &mut Criterion) {
    report_row();
    let mut group = c.benchmark_group("sec5_prob");
    for step in [1024i64, 512] {
        let doms = photo::domains(4096, step);
        let points = 4096 / step + 1;
        group.bench_with_input(
            BenchmarkId::new("meets_requirement", points),
            &doms,
            |b, doms| {
                let imp3 = photo::imp3();
                let req = photo::memory_prob(Unit::clamped(0.5));
                b.iter(|| meets_requirement(black_box(&imp3), &req, doms).unwrap())
            },
        );
        group.bench_with_input(
            BenchmarkId::new("best_configuration", points),
            &doms,
            |b, doms| b.iter(|| photo::best_configuration(black_box(2048), doms).unwrap()),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
