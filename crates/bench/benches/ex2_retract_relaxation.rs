//! E4 — Example 2 (retract): relaxation via semiring division.
//!
//! Retracting `c1 = x + 3` (never told!) from `c4 ⊗ c3 ≡ 3x + 5`
//! leaves `2x + 2`; the consistency level drops from 5 to 2 hours and
//! both providers succeed.

use criterion::{criterion_group, criterion_main, Criterion};
use softsoa_bench::{example2_agent, fig7_constraint, negotiation_store};
use softsoa_nmsccp::{Interpreter, Policy, Program};
use std::hint::black_box;

fn report_row() {
    let report = Interpreter::new(Program::new())
        .with_policy(Policy::Random(3))
        .run(example2_agent(), negotiation_store())
        .expect("runs");
    println!("--- E4 / Example 2 (paper: store ≡ 2x + 2, σ⇓∅ = 2, success) ---");
    assert!(report.outcome.is_success());
    let level = report.outcome.store().consistency().unwrap();
    println!(
        "measured: success at σ⇓∅ = {level} after {} steps",
        report.steps
    );
    assert_eq!(level, 2);
}

fn bench(c: &mut Criterion) {
    report_row();
    let mut group = c.benchmark_group("ex2");
    group.bench_function("run_to_agreement", |b| {
        b.iter(|| {
            Interpreter::new(Program::new())
                .with_policy(Policy::Random(3))
                .run(black_box(example2_agent()), negotiation_store())
                .unwrap()
        })
    });
    // The raw store operation behind the example: tell, tell, retract.
    group.bench_function("store_tell_tell_retract", |b| {
        let c4 = fig7_constraint(1, 5, "x");
        let c3 = fig7_constraint(2, 0, "x");
        let c1 = fig7_constraint(1, 3, "x");
        b.iter(|| {
            negotiation_store()
                .tell(black_box(&c4))
                .unwrap()
                .tell(black_box(&c3))
                .unwrap()
                .retract(black_box(&c1))
                .unwrap()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
