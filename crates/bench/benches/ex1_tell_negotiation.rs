//! E3 — Example 1 (tell): the failed negotiation.
//!
//! The merged policies `c4 ⊗ c3 ≡ 3x + 5` cost 5 hours even with zero
//! failures; P2's interval `[1, 4]` can never accept, so the session
//! deadlocks at consistency level 5.

use criterion::{criterion_group, criterion_main, Criterion};
use softsoa_bench::{example1_agent, negotiation_store};
use softsoa_nmsccp::{Interpreter, Outcome, Program};
use std::hint::black_box;

fn report_row() {
    let report = Interpreter::new(Program::new())
        .run(example1_agent(), negotiation_store())
        .expect("runs");
    println!("--- E3 / Example 1 (paper: no agreement, σ⇓∅ = 5) ---");
    match &report.outcome {
        Outcome::Deadlock { store, .. } => {
            let level = store.consistency().unwrap();
            println!(
                "measured: deadlock at σ⇓∅ = {level} after {} steps",
                report.steps
            );
            assert_eq!(level, 5);
        }
        other => panic!("expected deadlock, got {other:?}"),
    }
}

fn bench(c: &mut Criterion) {
    report_row();
    c.bench_function("ex1/run_to_deadlock", |b| {
        b.iter(|| {
            Interpreter::new(Program::new())
                .run(black_box(example1_agent()), negotiation_store())
                .unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
