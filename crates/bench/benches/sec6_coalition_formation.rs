//! E8 — Sec. 6: trustworthy coalition formation.
//!
//! Reproduces the Fig. 10 blocking detection and its best-response
//! repair, and measures stability checking and formation as the
//! network grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use softsoa_coalition::{
    exact_formation, find_blocking, is_stable, scsp_formation, stabilize, FormationConfig,
    Partition, TrustComposition, TrustNetwork,
};
use std::hint::black_box;

fn report_row() {
    let net = TrustNetwork::fig10();
    let fig10 = Partition::new(
        7,
        vec![
            [0, 1, 2].into_iter().collect(),
            [3, 4, 5, 6].into_iter().collect(),
        ],
    )
    .unwrap();
    let blocking = find_blocking(&net, &fig10, TrustComposition::Average).expect("blocked");
    let (repaired, ok) = stabilize(&net, fig10, TrustComposition::Average, 100);
    println!("--- E8 / Sec. 6 (paper: Fig. 10 partition is blocked by x4) ---");
    println!(
        "measured: x{} defects from #{} to #{}; repaired to {repaired} (stable: {ok})",
        blocking.agent + 1,
        blocking.source + 1,
        blocking.target + 1
    );
    assert_eq!(blocking.agent, 3);
}

fn bench(c: &mut Criterion) {
    report_row();
    let mut group = c.benchmark_group("sec6");

    // Stability checking across network sizes.
    for n in [8u32, 16, 32] {
        let net = TrustNetwork::clustered(n, 4, 0.85, 0.15, 3);
        let partition = {
            let mut coalitions = vec![std::collections::BTreeSet::new(); 4];
            for i in 0..n {
                coalitions[(i % 4) as usize].insert(i);
            }
            Partition::new(n, coalitions).unwrap()
        };
        group.bench_with_input(
            BenchmarkId::new("is_stable", n),
            &(net, partition),
            |b, (net, partition)| {
                b.iter(|| is_stable(black_box(net), partition, TrustComposition::Average))
            },
        );
    }

    // Exact stable formation on the Fig. 10 network and slightly
    // larger ones (Bell-number growth is the point of the series).
    for n in [6u32, 7, 8] {
        let net = if n == 7 {
            TrustNetwork::fig10()
        } else {
            TrustNetwork::clustered(n, 2, 0.85, 0.15, n as u64)
        };
        let cfg = FormationConfig {
            compose: TrustComposition::Average,
            require_stability: true,
            max_coalitions: Some(3),
        };
        group.bench_with_input(BenchmarkId::new("exact_stable", n), &net, |b, net| {
            b.iter(|| exact_formation(black_box(net), cfg).unwrap())
        });
    }

    // The paper's SCSP encoding (exponential, small n only).
    for n in [3u32, 4] {
        let net = TrustNetwork::random(n, 1);
        group.bench_with_input(BenchmarkId::new("scsp_encoding", n), &net, |b, net| {
            b.iter(|| {
                scsp_formation(black_box(net), TrustComposition::Average, true)
                    .unwrap()
                    .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
