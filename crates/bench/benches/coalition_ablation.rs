//! E12 — coalition algorithm ablation: exact vs. greedy
//! (individually / socially oriented) vs. local search, on clustered
//! networks with a coalition budget.
//!
//! Measured shape (EXPERIMENTS.md): exact is optimal but exponential;
//! local search matches the optimum at polynomial cost; the greedy
//! baselines are linear-time but fragile under coalition budgets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use softsoa_coalition::{
    exact_formation, individually_oriented, local_search, socially_oriented, FormationConfig,
    TrustComposition, TrustNetwork,
};
use std::hint::black_box;

fn cfg() -> FormationConfig {
    FormationConfig {
        compose: TrustComposition::Average,
        require_stability: false,
        max_coalitions: Some(3),
    }
}

fn report_quality() {
    println!("--- E12 / coalition ablation (quality on clustered n=9, 3 clusters) ---");
    let net = TrustNetwork::clustered(9, 3, 0.85, 0.15, 11);
    let exact = exact_formation(&net, cfg()).unwrap();
    let ind = individually_oriented(&net, TrustComposition::Average);
    let soc = socially_oriented(&net, TrustComposition::Average);
    let loc = local_search(&net, cfg(), 11, 2000);
    println!(
        "  exact:        score {} ({} partitions)",
        exact.score, exact.explored
    );
    println!("  individual:   score {}", ind.score);
    println!("  social:       score {}", soc.score);
    println!("  local search: score {}", loc.score);
    assert!(exact.score >= loc.score);
}

fn bench(c: &mut Criterion) {
    report_quality();
    let mut group = c.benchmark_group("coalition");
    for n in [8u32, 10, 12] {
        let net = TrustNetwork::clustered(n, 3, 0.85, 0.15, n as u64);
        if n <= 10 {
            group.bench_with_input(BenchmarkId::new("exact", n), &net, |b, net| {
                b.iter(|| exact_formation(black_box(net), cfg()).unwrap())
            });
        }
        group.bench_with_input(
            BenchmarkId::new("individually_oriented", n),
            &net,
            |b, net| b.iter(|| individually_oriented(black_box(net), TrustComposition::Average)),
        );
        group.bench_with_input(BenchmarkId::new("socially_oriented", n), &net, |b, net| {
            b.iter(|| socially_oriented(black_box(net), TrustComposition::Average))
        });
        group.bench_with_input(BenchmarkId::new("local_search_500", n), &net, |b, net| {
            b.iter(|| local_search(black_box(net), cfg(), 1, 500))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
