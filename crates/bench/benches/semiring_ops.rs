//! E11 — raw operator costs across all semiring instances, plus the
//! constraint-level ⊗ / ⇓ / ÷ they drive.

use criterion::{criterion_group, criterion_main, Criterion};
use softsoa_core::{Constraint, Domain, Domains, Var};
use softsoa_semiring::{
    Boolean, Fuzzy, Probabilistic, Product, Residuated, Semiring, SetSemiring, Unit, Weight,
    Weighted, WeightedInt,
};
use std::hint::black_box;

fn scalar_ops(c: &mut Criterion) {
    let mut group = c.benchmark_group("semiring_times");
    group.bench_function("weighted_f64", |b| {
        let s = Weighted;
        let (x, y) = (Weight::new(2.5).unwrap(), Weight::new(3.5).unwrap());
        b.iter(|| s.times(black_box(&x), black_box(&y)))
    });
    group.bench_function("weighted_int", |b| {
        let s = WeightedInt;
        b.iter(|| s.times(black_box(&2), black_box(&3)))
    });
    group.bench_function("fuzzy", |b| {
        let s = Fuzzy;
        let (x, y) = (Unit::new(0.4).unwrap(), Unit::new(0.7).unwrap());
        b.iter(|| s.times(black_box(&x), black_box(&y)))
    });
    group.bench_function("probabilistic", |b| {
        let s = Probabilistic;
        let (x, y) = (Unit::new(0.4).unwrap(), Unit::new(0.7).unwrap());
        b.iter(|| s.times(black_box(&x), black_box(&y)))
    });
    group.bench_function("boolean", |b| {
        let s = Boolean;
        b.iter(|| s.times(black_box(&true), black_box(&false)))
    });
    group.bench_function("set_16", |b| {
        let s: SetSemiring<u8> = (0u8..16).collect();
        let x = s.subset(0..8).unwrap();
        let y = s.subset(4..12).unwrap();
        b.iter(|| s.times(black_box(&x), black_box(&y)))
    });
    group.bench_function("product_weighted_prob", |b| {
        let s = Product::new(Weighted, Probabilistic);
        let x = (Weight::new(2.0).unwrap(), Unit::new(0.9).unwrap());
        let y = (Weight::new(3.0).unwrap(), Unit::new(0.8).unwrap());
        b.iter(|| s.times(black_box(&x), black_box(&y)))
    });
    group.finish();

    let mut group = c.benchmark_group("semiring_div");
    group.bench_function("weighted_int", |b| {
        let s = WeightedInt;
        b.iter(|| s.div(black_box(&7), black_box(&3)))
    });
    group.bench_function("probabilistic", |b| {
        let s = Probabilistic;
        let (x, y) = (Unit::new(0.2).unwrap(), Unit::new(0.8).unwrap());
        b.iter(|| s.div(black_box(&x), black_box(&y)))
    });
    group.bench_function("set_16", |b| {
        let s: SetSemiring<u8> = (0u8..16).collect();
        let x = s.subset(0..4).unwrap();
        let y = s.subset(2..10).unwrap();
        b.iter(|| s.div(black_box(&x), black_box(&y)))
    });
    group.finish();
}

fn constraint_ops(c: &mut Criterion) {
    let doms = Domains::new()
        .with("x", Domain::ints(0..32))
        .with("y", Domain::ints(0..32));
    let a = Constraint::binary(WeightedInt, "x", "y", |p, q| {
        (p.as_int().unwrap() - q.as_int().unwrap()).unsigned_abs()
    });
    let b_c = Constraint::unary(WeightedInt, "y", |p| p.as_int().unwrap() as u64);

    let mut group = c.benchmark_group("constraint_ops");
    group.bench_function("combine_materialize_32x32", |bch| {
        bch.iter(|| a.combine(black_box(&b_c)).materialize(&doms).unwrap())
    });
    group.bench_function("project_32x32_to_x", |bch| {
        let combined = a.combine(&b_c).materialize(&doms).unwrap();
        let keep = [Var::new("x")];
        bch.iter(|| black_box(&combined).project(&keep, &doms).unwrap())
    });
    group.bench_function("divide_materialize_32x32", |bch| {
        let combined = a.combine(&b_c).materialize(&doms).unwrap();
        bch.iter(|| {
            black_box(&combined)
                .divide(&b_c)
                .materialize(&doms)
                .unwrap()
        })
    });
    group.bench_function("leq_32x32", |bch| {
        let combined = a.combine(&b_c).materialize(&doms).unwrap();
        bch.iter(|| black_box(&combined).leq(&a, &doms).unwrap())
    });
    group.finish();
}

fn bench(c: &mut Criterion) {
    println!("--- E11 / semiring op costs (shape: scalar instances flat; set/product pay per element) ---");
    scalar_ops(c);
    constraint_ops(c);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
