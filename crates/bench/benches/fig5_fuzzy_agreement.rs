//! E2 — Fig. 5: the fuzzy SLA agreement, solved directly and through
//! the broker, swept over the resolution of the resource axis.
//!
//! The paper's picture fixes the agreement at the intersection of the
//! client's and provider's preference curves: level 0.5. The measured
//! series reports solve time against grid resolution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use softsoa_bench::fig5_problem;
use softsoa_core::{Constraint, Domain, Var};
use softsoa_dependability::Attribute;
use softsoa_nmsccp::Interval;
use softsoa_semiring::{Fuzzy, Unit};
use softsoa_soa::{
    Broker, NegotiationRequest, OfferShape, QosDocument, QosOffer, Registry, ServiceDescription,
};
use std::hint::black_box;

fn report_row() {
    let blevel = fig5_problem(8).blevel().expect("solves");
    println!("--- E2 / Fig. 5 (paper: agreement level 0.5) ---");
    println!("measured: blevel = {blevel}");
    assert_eq!(blevel, Unit::new(0.5).unwrap());
}

fn broker_setup() -> (Broker<Fuzzy>, NegotiationRequest<Fuzzy>) {
    let mut registry = Registry::new();
    registry.publish(ServiceDescription::new(
        "svc",
        "provider",
        "web-service",
        QosDocument::new("svc").with_offer(QosOffer {
            attribute: Attribute::Reliability,
            variable: "x".into(),
            shape: OfferShape::Piecewise {
                points: vec![(1, 1.0), (9, 0.0)],
            },
        }),
    ));
    let request = NegotiationRequest {
        capability: "web-service".into(),
        variable: Var::new("x"),
        domain: Domain::ints(1..=9),
        constraint: Constraint::unary(Fuzzy, "x", |v| {
            Unit::clamped((v.as_int().unwrap() as f64 - 1.0) / 8.0)
        }),
        acceptance: Interval::any(&Fuzzy),
    };
    (Broker::new(Fuzzy, registry), request)
}

fn bench(c: &mut Criterion) {
    report_row();

    let mut group = c.benchmark_group("fig5");
    // Direct SCSP solve, sweeping the grid resolution.
    for steps in [2i64, 4, 8] {
        let p = fig5_problem(steps);
        group.bench_with_input(BenchmarkId::new("solve", steps + 1), &p, |b, p| {
            b.iter(|| black_box(p).blevel().unwrap())
        });
    }
    // The full broker path: discovery, nmsccp session, binding.
    let (broker, request) = broker_setup();
    group.bench_function("broker_negotiate", |b| {
        b.iter(|| {
            broker
                .negotiate(black_box(&request), QosOffer::to_fuzzy)
                .unwrap()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench
}
criterion_main!(benches);
