//! E6 — Sec. 5: crisp integrity of the photo-editing pipeline.
//!
//! `Imp1 ⇓ {incomp, outcomp} ⊑ Memory` holds; `Imp2` (the unreliable
//! red filter) breaks it. The measured series sweeps the domain
//! discretisation of the byte-size axes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use softsoa_dependability::{check_refinement, locally_refines, photo};
use std::hint::black_box;

fn report_row() {
    let doms = photo::domains(4096, 512);
    let imp1_ok =
        locally_refines(&photo::imp1(), &photo::memory(), &photo::interface(), &doms).unwrap();
    let imp2_ok =
        locally_refines(&photo::imp2(), &photo::memory(), &photo::interface(), &doms).unwrap();
    println!("--- E6 / Sec. 5 crisp (paper: Imp1 ⊑ Memory holds, Imp2 fails) ---");
    println!("measured: Imp1 {imp1_ok}, Imp2 {imp2_ok}");
    assert!(imp1_ok && !imp2_ok);
}

fn bench(c: &mut Criterion) {
    report_row();
    let mut group = c.benchmark_group("sec5_crisp");
    for step in [1024i64, 512, 256] {
        let doms = photo::domains(4096, step);
        let points = 4096 / step + 1;
        group.bench_with_input(
            BenchmarkId::new("imp1_refines_memory", points),
            &doms,
            |b, doms| {
                b.iter(|| {
                    locally_refines(
                        black_box(&photo::imp1()),
                        &photo::memory(),
                        &photo::interface(),
                        doms,
                    )
                    .unwrap()
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("imp2_counterexample", points),
            &doms,
            |b, doms| {
                b.iter(|| {
                    check_refinement(
                        black_box(&photo::imp2()),
                        &photo::memory(),
                        &photo::interface(),
                        doms,
                    )
                    .unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
