//! E9 — solver comparison: the evaluation the paper defers to future
//! work ("we could program it from scratch or extend Gecode").
//!
//! Random dense problems: branch-and-bound prunes, enumeration pays
//! the full product of domains, bucket elimination depends on induced
//! width. Chains (induced width 1): bucket elimination wins by orders
//! of magnitude and enumeration becomes infeasible first.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use softsoa_core::generate::{chain_weighted, random_fuzzy, random_weighted, RandomScsp};
use softsoa_core::solve::{
    add_unary_projections, prune_zero_supports, BranchAndBound, BucketElimination,
    EliminationOrder, EnumerationSolver, Parallelism, Solver, SolverConfig, VarOrder,
};
use std::hint::black_box;

fn bench(c: &mut Criterion) {
    println!(
        "--- E9 / solver comparison (shape: bnb & bucket beat enumeration; gap grows with n) ---"
    );
    let mut group = c.benchmark_group("solvers_random");
    for n in [6usize, 8, 10] {
        let cfg = RandomScsp {
            vars: n,
            domain_size: 3,
            constraints: 2 * n,
            arity: 2,
            seed: 42,
        };
        let p = random_weighted(&cfg);
        group.bench_with_input(BenchmarkId::new("enumeration", n), &p, |b, p| {
            b.iter(|| EnumerationSolver::new().solve(black_box(p)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("branch_and_bound", n), &p, |b, p| {
            b.iter(|| {
                BranchAndBound::new(VarOrder::MostConstrained)
                    .solve(black_box(p))
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("bucket_min_degree", n), &p, |b, p| {
            b.iter(|| {
                BucketElimination::new(EliminationOrder::MinDegree)
                    .solve(black_box(p))
                    .unwrap()
            })
        });
    }
    group.finish();

    let mut group = c.benchmark_group("solvers_chain");
    for n in [8usize, 12, 16] {
        let p = chain_weighted(n, 4, 7);
        // Enumeration only up to n = 8 (4^12 tuples already cost ~10⁸
        // evaluations per solve; 4^16 would take hours).
        if n <= 8 {
            group.bench_with_input(BenchmarkId::new("enumeration", n), &p, |b, p| {
                b.iter(|| EnumerationSolver::new().solve(black_box(p)).unwrap())
            });
        }
        group.bench_with_input(BenchmarkId::new("branch_and_bound", n), &p, |b, p| {
            b.iter(|| {
                BranchAndBound::new(VarOrder::Input)
                    .solve(black_box(p))
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("bucket_min_degree", n), &p, |b, p| {
            b.iter(|| {
                BucketElimination::new(EliminationOrder::MinDegree)
                    .solve(black_box(p))
                    .unwrap()
            })
        });
    }
    group.finish();

    // Lazy vs compiled evaluation: same solver, same problem, the only
    // difference being the flattened-operand dense-table engine. The
    // acceptance gate of the engine work is compiled ≥ 2× faster than
    // lazy enumeration at n = 10.
    let mut group = c.benchmark_group("lazy_vs_compiled");
    for n in [6usize, 8, 10] {
        let cfg = RandomScsp {
            vars: n,
            domain_size: 3,
            constraints: 2 * n,
            arity: 2,
            seed: 42,
        };
        let p = random_weighted(&cfg);
        let lazy = SolverConfig::reference();
        let compiled = SolverConfig::default().with_parallelism(Parallelism::Sequential);
        group.bench_with_input(BenchmarkId::new("enumeration_lazy", n), &p, |b, p| {
            b.iter(|| {
                EnumerationSolver::with_config(lazy)
                    .solve(black_box(p))
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("enumeration_compiled", n), &p, |b, p| {
            b.iter(|| {
                EnumerationSolver::with_config(compiled)
                    .solve(black_box(p))
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("bnb_lazy", n), &p, |b, p| {
            b.iter(|| {
                BranchAndBound::with_config(VarOrder::MostConstrained, lazy)
                    .solve(black_box(p))
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("bnb_compiled", n), &p, |b, p| {
            b.iter(|| {
                BranchAndBound::with_config(VarOrder::MostConstrained, compiled)
                    .solve(black_box(p))
                    .unwrap()
            })
        });
    }
    group.finish();

    // Sequential vs parallel: the compiled engine splitting the
    // outermost domain across worker threads. On a single-core host the
    // thread variants only measure the fan-out overhead.
    let mut group = c.benchmark_group("sequential_vs_parallel");
    let cfg = RandomScsp {
        vars: 10,
        domain_size: 3,
        constraints: 20,
        arity: 2,
        seed: 42,
    };
    let p = random_weighted(&cfg);
    for threads in [1usize, 2, 4] {
        let config = SolverConfig::default().with_parallelism(Parallelism::Threads(threads));
        group.bench_with_input(
            BenchmarkId::new("enumeration_compiled", threads),
            &p,
            |b, p| {
                b.iter(|| {
                    EnumerationSolver::with_config(config)
                        .solve(black_box(p))
                        .unwrap()
                })
            },
        );
    }
    group.finish();

    // Preprocessing ablation: arc-consistency pruning on weighted
    // problems (many ∞ entries) and unary projections on fuzzy ones.
    let mut group = c.benchmark_group("preprocess");
    let cfg = RandomScsp {
        vars: 8,
        domain_size: 4,
        constraints: 16,
        arity: 2,
        seed: 13,
    };
    let pw = random_weighted(&cfg);
    group.bench_function("bnb_plain", |b| {
        b.iter(|| BranchAndBound::default().solve(black_box(&pw)).unwrap())
    });
    group.bench_function("bnb_after_prune", |b| {
        let (pruned, _) = prune_zero_supports(&pw).unwrap();
        b.iter(|| BranchAndBound::default().solve(black_box(&pruned)).unwrap())
    });
    group.bench_function("prune_pass_itself", |b| {
        b.iter(|| prune_zero_supports(black_box(&pw)).unwrap())
    });
    let pf = random_fuzzy(&cfg);
    group.bench_function("fuzzy_bnb_plain", |b| {
        b.iter(|| BranchAndBound::default().solve(black_box(&pf)).unwrap())
    });
    group.bench_function("fuzzy_bnb_with_unary_projections", |b| {
        let extended = add_unary_projections(&pf).unwrap();
        b.iter(|| {
            BranchAndBound::default()
                .solve(black_box(&extended))
                .unwrap()
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
