//! E15 — bounds-driven search: blind branch-and-bound vs mini-bucket
//! completion bounds vs a warm-started incumbent.
//!
//! All three variants return the identical `blevel` and witness
//! (property-tested in `softsoa-core`); the series measures what the
//! admissible bound and the seeded incumbent buy in explored nodes and
//! wall-clock as the problem grows.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use softsoa_core::generate::{random_weighted, RandomScsp};
use softsoa_core::solve::{BranchAndBound, Parallelism, Solver, SolverConfig, VarOrder};
use std::hint::black_box;

fn problem(n: usize) -> softsoa_core::Scsp<softsoa_semiring::WeightedInt> {
    random_weighted(&RandomScsp {
        vars: n,
        domain_size: 3,
        constraints: 2 * n,
        arity: 2,
        seed: 42,
    })
}

fn sequential() -> SolverConfig {
    SolverConfig::default().with_parallelism(Parallelism::Sequential)
}

fn report_row() {
    // The acceptance shape in one line per size: the bound prunes
    // strictly and the bounded search visits fewer nodes than blind.
    println!("--- E15 / bounds-driven search (shape: bounded explores fewer nodes than blind) ---");
    for n in [8usize, 10, 12] {
        let p = problem(n);
        let blind = BranchAndBound::with_config(VarOrder::MostConstrained, sequential())
            .solve(&p)
            .unwrap();
        let bounded = BranchAndBound::with_config(
            VarOrder::MostConstrained,
            sequential().with_ibound(Some(2)),
        )
        .solve(&p)
        .unwrap();
        let (b, m) = (blind.stats().unwrap(), bounded.stats().unwrap());
        assert_eq!(blind.blevel(), bounded.blevel());
        assert!(m.bound_prunes > 0, "ibound=2 never fired at n={n}");
        assert!(m.nodes < b.nodes, "no node reduction at n={n}");
        println!(
            "measured: n={n:2}  blind {:>8} nodes  ibound=2 {:>8} nodes ({} bound prunes)",
            b.nodes, m.nodes, m.bound_prunes
        );
    }
}

fn bench(c: &mut Criterion) {
    report_row();
    let mut group = c.benchmark_group("bounded_vs_blind");
    for n in [8usize, 10, 12] {
        let p = problem(n);
        group.bench_with_input(BenchmarkId::new("blind", n), &p, |b, p| {
            b.iter(|| {
                BranchAndBound::with_config(VarOrder::MostConstrained, sequential())
                    .solve(black_box(p))
                    .unwrap()
            })
        });
        for ibound in [1usize, 2, 3] {
            group.bench_with_input(
                BenchmarkId::new(format!("ibound_{ibound}"), n),
                &p,
                |b, p| {
                    b.iter(|| {
                        BranchAndBound::with_config(
                            VarOrder::MostConstrained,
                            sequential().with_ibound(Some(ibound)),
                        )
                        .solve(black_box(p))
                        .unwrap()
                    })
                },
            );
        }
        group.bench_with_input(BenchmarkId::new("dynamic_order", n), &p, |b, p| {
            b.iter(|| {
                BranchAndBound::with_config(VarOrder::Dynamic, sequential())
                    .solve(black_box(p))
                    .unwrap()
            })
        });
        // Warm re-solve: the previous round's optimum seeds the
        // incumbent, as the broker's SolveCache does between
        // negotiation rounds. The seed is computed outside the timed
        // region — the bench measures only the re-solve.
        let seed = *BranchAndBound::with_config(VarOrder::MostConstrained, sequential())
            .solve(&p)
            .unwrap()
            .blevel();
        group.bench_with_input(BenchmarkId::new("warm_seeded", n), &p, |b, p| {
            b.iter(|| {
                BranchAndBound::with_config(VarOrder::MostConstrained, sequential())
                    .solve_seeded(black_box(p), seed)
                    .unwrap()
            })
        });
        group.bench_with_input(BenchmarkId::new("warm_plus_ibound_2", n), &p, |b, p| {
            b.iter(|| {
                BranchAndBound::with_config(
                    VarOrder::MostConstrained,
                    sequential().with_ibound(Some(2)),
                )
                .solve_seeded(black_box(p), seed)
                .unwrap()
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
