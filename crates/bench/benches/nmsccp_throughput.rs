//! E10 — negotiation throughput: independent nmsccp sessions executed
//! sequentially vs. on one thread per session, and the shared-store
//! concurrent executor as agent count grows.
//!
//! Measured finding (EXPERIMENTS.md): sessions of the paper's size are
//! tens of microseconds — below thread spawn cost — so the threaded
//! variant only pays off for long-running sessions.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use softsoa_bench::{example2_agent, negotiation_store};
use softsoa_core::Constraint;
use softsoa_nmsccp::{
    run_sessions, Agent, ConcurrentExecutor, Interpreter, Interval, Policy, Program,
};
use softsoa_semiring::WeightedInt;
use std::hint::black_box;

fn sessions(n: usize) -> Vec<(Agent<WeightedInt>, softsoa_nmsccp::Store<WeightedInt>)> {
    (0..n)
        .map(|_| (example2_agent(), negotiation_store()))
        .collect()
}

fn bench(c: &mut Criterion) {
    println!("--- E10 / nmsccp throughput (sequential vs threaded; shared-store wakeups) ---");
    let mut group = c.benchmark_group("sessions");
    for n in [1usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("sequential", n), &n, |b, &n| {
            b.iter(|| {
                for (agent, store) in sessions(n) {
                    Interpreter::new(Program::new())
                        .with_policy(Policy::Random(3))
                        .run(black_box(agent), store)
                        .unwrap();
                }
            })
        });
        group.bench_with_input(BenchmarkId::new("threaded", n), &n, |b, &n| {
            b.iter(|| run_sessions(&Program::new(), black_box(sessions(n)), 3).unwrap())
        });
    }
    group.finish();

    // Shared-store executor: one teller, k waiters woken by the tell.
    let mut group = c.benchmark_group("shared_store");
    for k in [1usize, 4, 8] {
        group.bench_with_input(BenchmarkId::new("one_teller_k_askers", k), &k, |b, &k| {
            b.iter(|| {
                let signal = Constraint::unary(WeightedInt, "x", |v| v.as_int().unwrap() as u64)
                    .with_label("signal");
                let mut agents = vec![Agent::tell(
                    signal.clone(),
                    Interval::any(&WeightedInt),
                    Agent::success(),
                )];
                for _ in 0..k {
                    agents.push(Agent::ask(
                        signal.clone(),
                        Interval::any(&WeightedInt),
                        Agent::success(),
                    ));
                }
                let report = ConcurrentExecutor::new(Program::new())
                    .run(black_box(agents), negotiation_store())
                    .unwrap();
                assert!(report.all_succeeded());
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
