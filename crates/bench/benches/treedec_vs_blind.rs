//! E20 — bucket-tree elimination vs blind branch-and-bound on banded
//! weighted instances.
//!
//! The tree engine's cost is `O(n · d^(w+1))` in the induced width
//! `w`, so a fixed band turns the solve polynomial while blind search
//! stays exponential in `n`. The harness self-asserts the two claims
//! the series makes before any timing group runs:
//!
//! - on band-limited sizes both engines can finish, they agree exactly
//!   and the tree solve is at least 10x faster in wall-clock;
//! - at `n = 40, d = 4, band = 3` blind branch-and-bound blows a
//!   2M-node diagnostic budget (`SolverConfig::node_budget`) while the
//!   tree engine solves the instance outright, its witness checked
//!   against the claimed blevel by canonical re-evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use softsoa_core::generate::banded_weighted;
use softsoa_core::solve::{
    BranchAndBound, Parallelism, PropagationMode, SolveError, Solver, SolverConfig, VarOrder,
};
use softsoa_core::Scsp;
use softsoa_semiring::{Semiring, WeightedInt};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Sizes where blind search still finishes: (vars, domain, band).
const FEASIBLE: &[(usize, usize, usize)] = &[(20, 4, 2), (24, 4, 3), (28, 4, 3)];
/// The size blind search cannot finish within the node budget.
const INFEASIBLE: (usize, usize, usize) = (40, 4, 3);
const NODE_BUDGET: u64 = 2_000_000;

fn problem(n: usize, d: usize, band: usize) -> Scsp<WeightedInt> {
    // Interest in every variable, so witnesses are total assignments
    // the canonical re-evaluation can check.
    let p = banded_weighted(n, d, band, 42);
    let all: Vec<softsoa_core::Var> = p.domains().iter().map(|(v, _)| v.clone()).collect();
    p.of_interest(all)
}

fn sequential() -> SolverConfig {
    SolverConfig::default().with_parallelism(Parallelism::Sequential)
}

fn blind() -> SolverConfig {
    sequential()
        .with_propagation(PropagationMode::Off)
        .with_decompose(false)
}

fn tree() -> SolverConfig {
    sequential().with_decompose(false).with_tree_decompose(8)
}

fn solver(config: SolverConfig) -> BranchAndBound {
    BranchAndBound::with_config(VarOrder::Input, config)
}

/// Best-of-3 wall-clock for one solve.
fn time_solve(engine: &BranchAndBound, p: &Scsp<WeightedInt>) -> Duration {
    (0..3)
        .map(|_| {
            let start = Instant::now();
            black_box(engine.solve(black_box(p)).unwrap());
            start.elapsed()
        })
        .min()
        .unwrap()
}

/// Canonical constraint-order product of a solution's witness; `None`
/// when the solution carries no witness.
fn achieved(
    p: &Scsp<WeightedInt>,
    solution: &softsoa_core::solve::Solution<WeightedInt>,
) -> Option<u64> {
    let eta = solution.best_assignment()?;
    let levels: Vec<u64> = p
        .constraints()
        .iter()
        .map(|c| c.try_eval(eta).expect("total witness"))
        .collect();
    Some(WeightedInt.product(levels.iter()))
}

fn report_row() {
    println!("--- E20 / bucket-tree elimination (shape: tree >=10x faster, exact) ---");
    for &(n, d, band) in FEASIBLE {
        let p = problem(n, d, band);
        let blind_solution = solver(blind()).solve(&p).unwrap();
        let tree_solution = solver(tree()).solve(&p).unwrap();
        assert_eq!(
            tree_solution.blevel(),
            blind_solution.blevel(),
            "engines disagree at n={n} d={d} band={band}"
        );
        if let Some(level) = achieved(&p, &tree_solution) {
            assert_eq!(
                level,
                *tree_solution.blevel(),
                "tree witness does not achieve its blevel at n={n} d={d} band={band}"
            );
        }
        let stats = tree_solution.stats().unwrap();
        let tree_stats = stats.tree.as_ref().expect("tree stats ride along");
        assert!(
            !tree_stats.fallback,
            "band {band} must fit the width cap (planned width {})",
            tree_stats.induced_width
        );
        let blind_time = time_solve(&solver(blind()), &p);
        let tree_time = time_solve(&solver(tree()), &p);
        assert!(
            tree_time * 10 <= blind_time,
            "tree {tree_time:?} vs blind {blind_time:?} at n={n} d={d} band={band}: under 10x"
        );
        println!(
            "measured: n={n:>2} d={d} band={band}  blind {:>12?}  tree {:>10?}  ({}x, width {}, {} cells)",
            blind_time,
            tree_time,
            blind_time.as_nanos() / tree_time.as_nanos().max(1),
            tree_stats.induced_width,
            tree_stats.table_cells,
        );
    }

    // The frontier leg: a size blind search cannot finish.
    let (n, d, band) = INFEASIBLE;
    let p = problem(n, d, band);
    let budgeted = solver(blind().with_node_budget(Some(NODE_BUDGET))).solve(&p);
    assert!(
        matches!(
            budgeted,
            Err(SolveError::NodeBudgetExceeded {
                budget: NODE_BUDGET
            })
        ),
        "blind search finished n={n} d={d} band={band} inside {NODE_BUDGET} nodes: {budgeted:?}"
    );
    let start = Instant::now();
    let tree_solution = solver(tree()).solve(&p).unwrap();
    let tree_time = start.elapsed();
    if let Some(level) = achieved(&p, &tree_solution) {
        assert_eq!(level, *tree_solution.blevel(), "frontier witness invalid");
    }
    println!(
        "measured: n={n} d={d} band={band}  blind exceeds {NODE_BUDGET} nodes  tree {:?} (blevel {})",
        tree_time,
        tree_solution.blevel(),
    );
}

fn bench(c: &mut Criterion) {
    report_row();
    let mut group = c.benchmark_group("treedec_vs_blind");
    for &(n, d, band) in FEASIBLE {
        let p = problem(n, d, band);
        let id = format!("{n}x{d}b{band}");
        group.bench_with_input(BenchmarkId::new("blind", &id), &p, |b, p| {
            b.iter(|| solver(blind()).solve(black_box(p)).unwrap())
        });
        group.bench_with_input(BenchmarkId::new("treedec", &id), &p, |b, p| {
            b.iter(|| solver(tree()).solve(black_box(p)).unwrap())
        });
    }
    // Blind search cannot finish the frontier size; only the tree
    // engine is measured there.
    let (n, d, band) = INFEASIBLE;
    let p = problem(n, d, band);
    let id = format!("{n}x{d}b{band}");
    group.bench_with_input(BenchmarkId::new("treedec", &id), &p, |b, p| {
        b.iter(|| solver(tree()).solve(black_box(p)).unwrap())
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench
}
criterion_main!(benches);
