//! Shared fixtures for the `softsoa` benchmark harness.
//!
//! Every table-like artefact of the paper (worked examples, figures
//! with numbers) has a bench target in `benches/`; this library crate
//! holds the scenario builders they share, so that benches and the
//! experiment write-up (`EXPERIMENTS.md`) use exactly the same code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod churn;

use softsoa_core::{Constraint, Domain, Domains, Scsp, Val, Var};
use softsoa_nmsccp::{Agent, Interval, Store};
use softsoa_semiring::{Fuzzy, Unit, WeightedInt};

/// Builds the weighted SCSP of Fig. 1 (expected: `⟨a⟩→7`, `⟨b⟩→16`,
/// `blevel = 7`).
pub fn fig1_problem() -> Scsp<WeightedInt> {
    let x = Var::new("x");
    let y = Var::new("y");
    Scsp::new(WeightedInt)
        .with_domain(x.clone(), Domain::syms(["a", "b"]))
        .with_domain(y.clone(), Domain::syms(["a", "b"]))
        .with_constraint(Constraint::table(
            WeightedInt,
            std::slice::from_ref(&x),
            [(vec![Val::sym("a")], 1), (vec![Val::sym("b")], 9)],
            u64::MAX,
        ))
        .with_constraint(Constraint::table(
            WeightedInt,
            &[x.clone(), y.clone()],
            [
                (vec![Val::sym("a"), Val::sym("a")], 5),
                (vec![Val::sym("a"), Val::sym("b")], 1),
                (vec![Val::sym("b"), Val::sym("a")], 2),
                (vec![Val::sym("b"), Val::sym("b")], 2),
            ],
            u64::MAX,
        ))
        .with_constraint(Constraint::table(
            WeightedInt,
            std::slice::from_ref(&y),
            [(vec![Val::sym("a")], 5), (vec![Val::sym("b")], 5)],
            u64::MAX,
        ))
        .of_interest([x])
}

/// The linear weighted policies of Fig. 7: `c1 = x + 3`, `c2 = y + 1`,
/// `c3 = 2x`, `c4 = x + 5`.
pub fn fig7_constraint(slope: u64, intercept: u64, var: &str) -> Constraint<WeightedInt> {
    let v = Var::new(var);
    Constraint::unary(WeightedInt, v, move |val| {
        slope * val.as_int().unwrap() as u64 + intercept
    })
}

/// The shared `x ∈ {0..10}` domain of the negotiation examples.
pub fn negotiation_domains() -> Domains {
    Domains::new().with("x", Domain::ints(0..=10))
}

/// The Example 1 agent (`P1 ‖ P2`, merged policies cost 5h, P2's
/// interval `[1, 4]` rejects → deadlock).
pub fn example1_agent() -> Agent<WeightedInt> {
    let any = Interval::any(&WeightedInt);
    let p1 = Agent::tell(fig7_constraint(1, 5, "x"), any.clone(), Agent::success());
    let p2 = Agent::tell(
        fig7_constraint(2, 0, "x"),
        any,
        Agent::ask(
            Constraint::always(WeightedInt),
            Interval::levels(4u64, 1u64),
            Agent::success(),
        ),
    );
    Agent::par(p1, p2)
}

/// The Example 2 agent (retract `c1` relaxes the store to `2x + 2`,
/// level 2 → success).
pub fn example2_agent() -> Agent<WeightedInt> {
    let any = Interval::any(&WeightedInt);
    let p1 = Agent::tell(
        fig7_constraint(1, 5, "x"),
        any.clone(),
        Agent::retract(
            fig7_constraint(1, 3, "x"),
            Interval::levels(10u64, 2u64),
            Agent::success(),
        ),
    );
    let p2 = Agent::tell(
        fig7_constraint(2, 0, "x"),
        any,
        Agent::ask(
            Constraint::always(WeightedInt),
            Interval::levels(4u64, 1u64),
            Agent::success(),
        ),
    );
    Agent::par(p1, p2)
}

/// The Example 3 agent (`tell(c1)` then `update{x}(c2)` → store
/// `y + 4`).
pub fn example3_agent() -> Agent<WeightedInt> {
    let any = Interval::any(&WeightedInt);
    Agent::tell(
        fig7_constraint(1, 3, "x"),
        any.clone(),
        Agent::update(
            [Var::new("x")],
            fig7_constraint(1, 1, "y"),
            any,
            Agent::success(),
        ),
    )
}

/// Domains for Example 3 (two variables).
pub fn example3_domains() -> Domains {
    Domains::new()
        .with("x", Domain::ints(0..=10))
        .with("y", Domain::ints(0..=10))
}

/// An empty weighted store over the negotiation domains.
pub fn negotiation_store() -> Store<WeightedInt> {
    Store::empty(WeightedInt, negotiation_domains())
}

/// The Fig. 5 fuzzy agreement as an SCSP over a resolution-`steps`
/// discretisation of the resource axis `[1, 9]` (expected blevel 0.5
/// at the preference intersection for any odd-resolution grid).
pub fn fig5_problem(steps: i64) -> Scsp<Fuzzy> {
    let x = Var::new("x");
    // Client preference rises 0 → 1 over [1, 9]; provider's falls.
    let client = Constraint::unary(Fuzzy, x.clone(), |v| {
        Unit::clamped((v.as_int().unwrap() as f64 - 1.0) / 8.0)
    });
    let provider = Constraint::unary(Fuzzy, x.clone(), |v| {
        Unit::clamped((9.0 - v.as_int().unwrap() as f64) / 8.0)
    });
    Scsp::new(Fuzzy)
        .with_domain(x.clone(), Domain::ints_stepped(1, 9, (8 / steps).max(1)))
        .with_constraint(client)
        .with_constraint(provider)
        .of_interest([x])
}

#[cfg(test)]
mod tests {
    use super::*;
    use softsoa_nmsccp::{Interpreter, Outcome, Policy, Program};

    #[test]
    fn fixtures_reproduce_paper_values() {
        assert_eq!(fig1_problem().blevel().unwrap(), 7);
        assert_eq!(fig5_problem(8).blevel().unwrap(), Unit::new(0.5).unwrap());

        let run = |agent, doms| {
            Interpreter::new(Program::new())
                .with_policy(Policy::Random(3))
                .run(agent, Store::empty(WeightedInt, doms))
                .unwrap()
        };
        let r1 = run(example1_agent(), negotiation_domains());
        assert!(matches!(r1.outcome, Outcome::Deadlock { .. }));
        assert_eq!(r1.outcome.store().consistency().unwrap(), 5);

        let r2 = run(example2_agent(), negotiation_domains());
        assert!(r2.outcome.is_success());
        assert_eq!(r2.outcome.store().consistency().unwrap(), 2);

        let r3 = run(example3_agent(), example3_domains());
        assert!(r3.outcome.is_success());
        assert_eq!(r3.outcome.store().consistency().unwrap(), 4);
    }
}
