//! Registry-churn workload for the incremental re-solve engine (E17).
//!
//! Models a service registry under provider churn: `clusters`
//! independent 3-variable QoS clusters (each the binding problem of
//! one capability), hit by a stream of join / leave / QoS-update
//! events. Every event dirties exactly one cluster, so an incremental
//! solver re-searches one component while a from-scratch baseline
//! re-solves the whole registry.
//!
//! [`run_incremental`], [`run_warm`] and [`run_cold`] apply the *same*
//! delta stream through the same [`IncrementalSolver`] entry points —
//! the baselines merely snapshot [`IncrementalSolver::problem`] and
//! solve it from scratch after every event (the warm variant seeds the
//! search with the previous witness re-evaluated under the new store,
//! the discipline of the broker's pre-incremental `SolveCache`) — so
//! their per-event `blevel` sequences are directly comparable (and
//! asserted equal by the `churn_incremental` bench and the
//! differential test suite).

use rand::{rngs::StdRng, Rng, SeedableRng};
use softsoa_core::solve::{
    BranchAndBound, ConstraintId, IncrementalSolver, IncrementalStats, Parallelism, Solver,
    SolverConfig, VarOrder,
};
use softsoa_core::{Constraint, Domain, Var};
use softsoa_semiring::{Semiring, WeightedInt};

/// Shape of a churn workload over the weighted semiring.
#[derive(Debug, Clone, Copy)]
pub struct ChurnWorkload {
    /// Number of independent 2-variable clusters.
    pub clusters: usize,
    /// Domain size of every cluster variable (`0..domain_size`).
    pub domain_size: i64,
    /// Length of the churn event stream.
    pub events: usize,
    /// RNG seed for the event stream.
    pub seed: u64,
}

impl ChurnWorkload {
    /// The default E17 shape: 24 clusters of 3 variables over domain
    /// `{0..7}`, 64 churn events.
    pub fn default_shape() -> ChurnWorkload {
        ChurnWorkload {
            clusters: 24,
            domain_size: 8,
            events: 64,
            seed: 7,
        }
    }
}

/// One registry-churn delta against a single cluster.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnEvent {
    /// A provider joins: a fresh unary preference lands on the
    /// cluster's last variable.
    Join {
        /// Target cluster.
        cluster: usize,
        /// Slope of the provider's cost curve.
        weight: u64,
        /// Constant offset of the provider's cost curve.
        bias: u64,
    },
    /// The most recently joined provider of the cluster leaves again.
    Leave {
        /// Target cluster.
        cluster: usize,
    },
    /// A QoS re-publication rewrites the cluster's link constraint.
    Update {
        /// Target cluster.
        cluster: usize,
        /// New slope on the variable mismatch.
        weight: u64,
        /// New constant offset.
        bias: u64,
    },
}

/// Generates the deterministic event stream for `w`. `Leave` events
/// are only emitted against clusters that still have a joined
/// provider, so every event is applicable in order.
pub fn churn_events(w: &ChurnWorkload) -> Vec<ChurnEvent> {
    let mut rng = StdRng::seed_from_u64(w.seed);
    let mut joined = vec![0usize; w.clusters];
    (0..w.events)
        .map(|_| {
            let cluster = rng.random_range(0..w.clusters);
            let weight = rng.random_range(1..4u64);
            let bias = rng.random_range(0..5u64);
            match rng.random_range(0..3u32) {
                0 if joined[cluster] > 0 => {
                    joined[cluster] -= 1;
                    ChurnEvent::Leave { cluster }
                }
                // A leave against an empty cluster becomes a join.
                0 | 1 => {
                    joined[cluster] += 1;
                    ChurnEvent::Join {
                        cluster,
                        weight,
                        bias,
                    }
                }
                _ => ChurnEvent::Update {
                    cluster,
                    weight,
                    bias,
                },
            }
        })
        .collect()
}

/// Per-cluster constraint handles threaded through the delta stream.
#[derive(Debug, Clone)]
pub struct ChurnHandles {
    links: Vec<ConstraintId>,
    joins: Vec<Vec<ConstraintId>>,
}

fn cluster_vars(cluster: usize) -> (Var, Var, Var) {
    (
        Var::new(format!("c{cluster}_a")),
        Var::new(format!("c{cluster}_b")),
        Var::new(format!("c{cluster}_c")),
    )
}

fn link_constraint(cluster: usize, weight: u64, bias: u64) -> Constraint<WeightedInt> {
    let (a, b, _) = cluster_vars(cluster);
    Constraint::binary(WeightedInt, a, b, move |x, y| {
        weight * x.as_int().unwrap().abs_diff(y.as_int().unwrap()) + bias
    })
}

fn provider_constraint(cluster: usize, weight: u64, bias: u64) -> Constraint<WeightedInt> {
    let (_, _, c) = cluster_vars(cluster);
    Constraint::unary(WeightedInt, c, move |v| {
        weight * v.as_int().unwrap() as u64 + bias
    })
}

/// Builds the base registry: every cluster chains its three variables
/// with two link constraints plus a unary client preference, all
/// clusters independent of each other.
pub fn build(w: &ChurnWorkload) -> (IncrementalSolver<WeightedInt>, ChurnHandles) {
    let mut solver = IncrementalSolver::new(WeightedInt).with_config(
        VarOrder::Input,
        SolverConfig::default().with_parallelism(Parallelism::Sequential),
    );
    let mut con = Vec::new();
    let mut links = Vec::new();
    for cluster in 0..w.clusters {
        let (a, b, c) = cluster_vars(cluster);
        for v in [&a, &b, &c] {
            solver.declare(v.clone(), Domain::ints(0..w.domain_size));
        }
        solver.add_constraint(Constraint::unary(WeightedInt, a.clone(), |v| {
            v.as_int().unwrap() as u64
        }));
        links.push(solver.add_constraint(link_constraint(cluster, 1, 0)));
        solver.add_constraint(Constraint::binary(
            WeightedInt,
            b.clone(),
            c.clone(),
            |x, y| x.as_int().unwrap().abs_diff(y.as_int().unwrap()),
        ));
        con.extend([a, b, c]);
    }
    let solver = solver.of_interest(con);
    let joins = vec![Vec::new(); w.clusters];
    (solver, ChurnHandles { links, joins })
}

/// Applies one churn event as an incremental delta.
pub fn apply(
    solver: &mut IncrementalSolver<WeightedInt>,
    handles: &mut ChurnHandles,
    event: &ChurnEvent,
) {
    match *event {
        ChurnEvent::Join {
            cluster,
            weight,
            bias,
        } => {
            let id = solver.add_constraint(provider_constraint(cluster, weight, bias));
            handles.joins[cluster].push(id);
        }
        ChurnEvent::Leave { cluster } => {
            let id = handles.joins[cluster]
                .pop()
                .expect("leave against a cluster with no joined provider");
            solver.retract_constraint(id);
        }
        ChurnEvent::Update {
            cluster,
            weight,
            bias,
        } => {
            solver.update_constraint(
                handles.links[cluster],
                link_constraint(cluster, weight, bias),
            );
        }
    }
}

/// Runs the workload through the incremental engine: one persistent
/// solver, one `solve` per event. Returns the per-event blevels and
/// the accumulated work-avoidance stats.
pub fn run_incremental(w: &ChurnWorkload) -> (Vec<u64>, IncrementalStats) {
    let events = churn_events(w);
    let (mut solver, mut handles) = build(w);
    solver.solve().expect("base churn problem must solve");
    let blevels = events
        .iter()
        .map(|event| {
            apply(&mut solver, &mut handles, event);
            *solver.solve().expect("churn step must solve").blevel()
        })
        .collect();
    (blevels, solver.stats().clone())
}

/// Runs the same workload from scratch: after every event the current
/// problem is snapshotted and handed to a fresh [`BranchAndBound`].
pub fn run_cold(w: &ChurnWorkload) -> Vec<u64> {
    let events = churn_events(w);
    let (mut solver, mut handles) = build(w);
    let search = BranchAndBound::with_config(
        VarOrder::Input,
        SolverConfig::default().with_parallelism(Parallelism::Sequential),
    );
    search
        .solve(&solver.problem())
        .expect("base churn problem must solve");
    events
        .iter()
        .map(|event| {
            apply(&mut solver, &mut handles, event);
            *search
                .solve(&solver.problem())
                .expect("churn step must solve")
                .blevel()
        })
        .collect()
}

/// Runs the same workload warm: from-scratch search after every
/// event, but seeded with the previous witness re-evaluated under the
/// mutated store — an always-admissible incumbent, and exactly the
/// discipline of the broker's pre-incremental `SolveCache`.
pub fn run_warm(w: &ChurnWorkload) -> Vec<u64> {
    let events = churn_events(w);
    let (mut solver, mut handles) = build(w);
    let search = BranchAndBound::with_config(
        VarOrder::Input,
        SolverConfig::default().with_parallelism(Parallelism::Sequential),
    );
    let mut witness = search
        .solve(&solver.problem())
        .expect("base churn problem must solve")
        .best_assignment()
        .cloned();
    events
        .iter()
        .map(|event| {
            apply(&mut solver, &mut handles, event);
            let problem = solver.problem();
            let seed = witness.as_ref().and_then(|eta| {
                problem
                    .constraints()
                    .iter()
                    .try_fold(WeightedInt.one(), |acc, c| {
                        c.try_eval(eta).map(|v| WeightedInt.times(&acc, &v)).ok()
                    })
            });
            let solution = match seed {
                Some(seed) if !WeightedInt.is_zero(&seed) => search.solve_seeded(&problem, seed),
                _ => search.solve(&problem),
            }
            .expect("churn step must solve");
            witness = solution.best_assignment().cloned();
            *solution.blevel()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incremental_matches_cold_blevels() {
        let w = ChurnWorkload {
            clusters: 6,
            domain_size: 3,
            events: 24,
            seed: 11,
        };
        let (incremental, stats) = run_incremental(&w);
        let cold = run_cold(&w);
        let warm = run_warm(&w);
        assert_eq!(incremental, cold);
        assert_eq!(incremental, warm);
        assert_eq!(incremental.len(), w.events);
        // Each event dirties one cluster; the other five come out of
        // the component cache.
        assert!(
            stats.components_reused > stats.components_resolved,
            "churn should mostly reuse: {stats:?}"
        );
    }

    #[test]
    fn leave_events_only_target_joined_clusters() {
        let w = ChurnWorkload::default_shape();
        let events = churn_events(&w);
        assert_eq!(events.len(), w.events);
        let mut joined = vec![0i64; w.clusters];
        for event in &events {
            match *event {
                ChurnEvent::Join { cluster, .. } => joined[cluster] += 1,
                ChurnEvent::Leave { cluster } => {
                    joined[cluster] -= 1;
                    assert!(joined[cluster] >= 0, "leave from empty cluster");
                }
                ChurnEvent::Update { cluster, .. } => assert!(cluster < w.clusters),
            }
        }
        assert!(
            events.iter().any(|e| matches!(e, ChurnEvent::Leave { .. })),
            "stream should exercise retractions"
        );
    }
}
