//! Property-based tests of the coalition-formation algorithms.

use proptest::prelude::*;
use softsoa_coalition::{
    exact_formation, find_blocking, individually_oriented, is_stable, local_search, propagate,
    socially_oriented, stabilize, FormationConfig, Partition, TrustComposition, TrustNetwork,
};
use softsoa_semiring::{Fuzzy, Probabilistic, Unit};

fn network_strategy() -> impl Strategy<Value = TrustNetwork> {
    (2u32..7, any::<u64>()).prop_map(|(n, seed)| TrustNetwork::random(n, seed))
}

fn compose_strategy() -> impl Strategy<Value = TrustComposition> {
    prop_oneof![
        Just(TrustComposition::Min),
        Just(TrustComposition::Max),
        Just(TrustComposition::Average),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every algorithm returns a valid partition of all agents.
    #[test]
    fn algorithms_return_valid_partitions(net in network_strategy(), compose in compose_strategy()) {
        let n = net.len();
        let cfg = FormationConfig { compose, require_stability: false, ..Default::default() };
        let results = [
            exact_formation(&net, cfg).unwrap().partition,
            individually_oriented(&net, compose).partition,
            socially_oriented(&net, compose).partition,
            local_search(&net, cfg, 0, 200).partition,
        ];
        for p in results {
            // Re-validating through the constructor checks coverage,
            // disjointness and ranges.
            let coalitions = p.coalitions().to_vec();
            prop_assert!(Partition::new(n, coalitions).is_ok());
        }
    }

    /// The exact optimum dominates every heuristic.
    #[test]
    fn exact_dominates_heuristics(net in network_strategy(), compose in compose_strategy()) {
        let cfg = FormationConfig { compose, require_stability: false, ..Default::default() };
        let exact = exact_formation(&net, cfg).unwrap();
        prop_assert!(exact.score >= individually_oriented(&net, compose).score);
        prop_assert!(exact.score >= socially_oriented(&net, compose).score);
        prop_assert!(exact.score >= local_search(&net, cfg, 1, 200).score);
    }

    /// With a coalition budget the same dominance holds among
    /// budget-respecting algorithms, and the budget is respected.
    #[test]
    fn budget_is_respected(net in network_strategy(), compose in compose_strategy(), k in 1usize..4) {
        let cfg = FormationConfig { compose, require_stability: false, max_coalitions: Some(k) };
        let exact = exact_formation(&net, cfg).unwrap();
        prop_assert!(exact.partition.len() <= k);
        let ls = local_search(&net, cfg, 2, 200);
        prop_assert!(ls.partition.len() <= k);
        prop_assert!(exact.score >= ls.score);
    }

    /// `stabilize` either reports stability truthfully or runs out of
    /// moves; when it claims stability, no blocking pair exists.
    #[test]
    fn stabilize_is_truthful(net in network_strategy(), compose in compose_strategy()) {
        let start = Partition::grand(net.len());
        let (partition, claimed) = stabilize(&net, start, compose, 64);
        prop_assert_eq!(claimed, find_blocking(&net, &partition, compose).is_none());
        prop_assert_eq!(claimed, is_stable(&net, &partition, compose));
    }

    /// Under Min composition every partition is stable (adding a
    /// member never raises a minimum), so stability never constrains
    /// the optimum.
    #[test]
    fn min_composition_makes_everything_stable(net in network_strategy()) {
        let with = exact_formation(&net, FormationConfig {
            compose: TrustComposition::Min,
            require_stability: true,
            ..Default::default()
        }).unwrap();
        let without = exact_formation(&net, FormationConfig {
            compose: TrustComposition::Min,
            require_stability: false,
            ..Default::default()
        }).unwrap();
        prop_assert_eq!(with.score, without.score);
    }

    /// Trust propagation dominates the input network pointwise and is
    /// a fixpoint, for both paper-relevant semirings.
    #[test]
    fn propagation_properties(net in network_strategy()) {
        let closed = propagate(&net, &Probabilistic);
        let twice = propagate(&closed, &Probabilistic);
        for i in net.agents() {
            for j in net.agents() {
                prop_assert!(closed.get(i, j) >= net.get(i, j));
                prop_assert!((closed.get(i, j).get() - twice.get(i, j).get()).abs() < 1e-9);
            }
        }
        // Fuzzy (widest-path) closure dominates probabilistic closure:
        // min along a path is ≥ the product along it.
        let fuzzy = propagate(&net, &Fuzzy);
        for i in net.agents() {
            for j in net.agents() {
                if i != j {
                    prop_assert!(fuzzy.get(i, j) >= closed.get(i, j));
                }
            }
        }
    }

    /// Scores always lie in [0, 1] and singletons always score 1 when
    /// self-trust is full.
    #[test]
    fn score_bounds(net in network_strategy(), compose in compose_strategy()) {
        let p = Partition::singletons(net.len());
        prop_assert_eq!(p.score(&net, compose), Unit::MAX);
        let g = Partition::grand(net.len());
        let s = g.score(&net, compose);
        prop_assert!(s >= Unit::MIN && s <= Unit::MAX);
    }
}
