//! Equivalence of the `O(3ⁿ)` subset DP and the Bell-number
//! enumeration it replaced: on every network both engines find a
//! partition of the same optimal score, under every composition,
//! stability requirement and coalition budget.
//!
//! Partitions themselves may differ — several partitions can attain
//! the optimum and the engines break ties differently — so the tests
//! compare scores and re-validate each winner against its own
//! constraints instead.

use softsoa_coalition::{
    exact_formation_enumerated, exact_formation_with, is_stable, FormationConfig, TrustComposition,
    TrustNetwork,
};
use softsoa_core::solve::Parallelism;

const COMPOSITIONS: [TrustComposition; 3] = [
    TrustComposition::Min,
    TrustComposition::Max,
    TrustComposition::Average,
];

fn assert_engines_agree(net: &TrustNetwork, cfg: FormationConfig, context: &str) {
    let dp = exact_formation_with(net, cfg, Parallelism::Sequential);
    let bell = exact_formation_enumerated(net, cfg, Parallelism::Sequential);
    match (dp, bell) {
        (Some(dp), Some(bell)) => {
            assert_eq!(dp.score, bell.score, "{context}: optimal scores differ");
            for (engine, result) in [("dp", &dp), ("bell", &bell)] {
                assert_eq!(
                    result.partition.score(net, cfg.compose),
                    result.score,
                    "{context}: {engine} partition does not attain its claimed score"
                );
                if let Some(k) = cfg.max_coalitions {
                    assert!(
                        result.partition.len() <= k.max(1),
                        "{context}: {engine} ignored the coalition budget"
                    );
                }
                if cfg.require_stability {
                    assert!(
                        is_stable(net, &result.partition, cfg.compose),
                        "{context}: {engine} returned an unstable partition"
                    );
                }
            }
        }
        (None, None) => {}
        (dp, bell) => panic!(
            "{context}: engines disagree on feasibility (dp: {}, bell: {})",
            dp.is_some(),
            bell.is_some()
        ),
    }
}

fn configs() -> Vec<FormationConfig> {
    let mut configs = Vec::new();
    for compose in COMPOSITIONS {
        for require_stability in [false, true] {
            for max_coalitions in [None, Some(1), Some(2), Some(3)] {
                configs.push(FormationConfig {
                    compose,
                    require_stability,
                    max_coalitions,
                });
            }
        }
    }
    configs
}

/// Exhaustive sweep over small networks: every config combination on
/// random networks up to `n = 8` (Bell(8) = 4140 partitions each).
#[test]
fn dp_matches_enumeration_exhaustively_up_to_8() {
    for n in 2u32..=8 {
        for seed in 0..3u64 {
            let net = TrustNetwork::random(n, seed);
            for cfg in configs() {
                assert_engines_agree(&net, cfg, &format!("n={n} seed={seed} {cfg:?}"));
            }
        }
    }
}

/// The Fig. 10 network of the paper, with and without the stability
/// requirement that makes it interesting.
#[test]
fn dp_matches_enumeration_on_fig10() {
    let net = TrustNetwork::fig10();
    for cfg in configs() {
        assert_engines_agree(&net, cfg, &format!("fig10 {cfg:?}"));
    }
}

/// Fixed-seed random networks at n = 10, where the enumeration still
/// runs in a debug-build test (Bell(10) ≈ 116 thousand partitions).
#[test]
fn dp_matches_enumeration_at_10() {
    for seed in [1u64, 2] {
        let net = TrustNetwork::clustered(10, 3, 0.85, 0.15, seed);
        let cfg = FormationConfig {
            compose: TrustComposition::Average,
            require_stability: false,
            max_coalitions: None,
        };
        assert_engines_agree(&net, cfg, &format!("n=10 seed={seed}"));
    }
}

/// Fixed-seed networks up to the Bell ceiling (n = 11..13; Bell(13) ≈
/// 27.6 million partitions — minutes in a debug build, so run
/// explicitly with `cargo test --release -- --ignored`).
#[test]
#[ignore = "Bell-number enumeration at n = 13 takes minutes in debug builds"]
fn dp_matches_enumeration_up_to_the_bell_ceiling() {
    for n in [11u32, 12, 13] {
        let net = TrustNetwork::clustered(n, 3, 0.85, 0.15, u64::from(n));
        for compose in COMPOSITIONS {
            let cfg = FormationConfig {
                compose,
                require_stability: false,
                max_coalitions: None,
            };
            assert_engines_agree(&net, cfg, &format!("n={n} {compose:?}"));
        }
    }
}
