//! The stability condition of Def. 4: blocking coalitions.

use crate::{attachment, coalition_trust, AgentId, Partition, TrustComposition, TrustNetwork};

/// A witness that two coalitions block a partition (Fig. 10).
///
/// `agent` (the paper's `x_k ∈ C_v`) prefers the coalition at index
/// `target` (the paper's `C_u`) to the rest of its own coalition at
/// index `source`, and the target's trustworthiness grows by admitting
/// it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockingPair {
    /// Index of the agent's current coalition (`C_v`).
    pub source: usize,
    /// Index of the coalition the agent would rather join (`C_u`).
    pub target: usize,
    /// The defecting agent (`x_k`).
    pub agent: AgentId,
}

/// Finds the first blocking pair of a partition, if any (Def. 4).
///
/// Coalitions `C_u` and `C_v` are *blocking* iff there is an
/// `x_k ∈ C_v` with
///
/// - `◦_{x_i ∈ C_u} t(x_k, x_i)  >  ◦_{x_j ∈ C_v, j ≠ k} t(x_k, x_j)`
///   (the agent trusts the other coalition more than its own), and
/// - `T(C_u ∪ {x_k}) > T(C_u)` (the other coalition gains by
///   admitting it).
///
/// Note that under [`TrustComposition::Min`] the second condition can
/// never hold strictly (adding a member never raises a minimum), so
/// every partition is trivially stable; the interesting instantiations
/// for stability are `Average` and `Max`.
///
/// # Examples
///
/// The Fig. 10 situation: `x4` would defect from `{x4..x7}` to
/// `{x1, x2, x3}`.
///
/// ```
/// use softsoa_coalition::{find_blocking, Partition, TrustComposition, TrustNetwork};
///
/// let net = TrustNetwork::fig10();
/// let p = Partition::new(7, vec![
///     [0, 1, 2].into_iter().collect(),
///     [3, 4, 5, 6].into_iter().collect(),
/// ]).unwrap();
/// let blocking = find_blocking(&net, &p, TrustComposition::Average).unwrap();
/// assert_eq!(blocking.agent, 3); // x4 (0-indexed)
/// assert_eq!(blocking.target, 0);
/// ```
pub fn find_blocking(
    network: &TrustNetwork,
    partition: &Partition,
    compose: TrustComposition,
) -> Option<BlockingPair> {
    let coalitions = partition.coalitions();
    for (v, cv) in coalitions.iter().enumerate() {
        for &agent in cv {
            let own_attachment = attachment(network, agent, cv, compose);
            for (u, cu) in coalitions.iter().enumerate() {
                if u == v {
                    continue;
                }
                let other_attachment = attachment(network, agent, cu, compose);
                if other_attachment <= own_attachment {
                    continue;
                }
                let t_cu = coalition_trust(network, cu, compose);
                let mut extended = cu.clone();
                extended.insert(agent);
                let t_extended = coalition_trust(network, &extended, compose);
                if t_extended > t_cu {
                    return Some(BlockingPair {
                        source: v,
                        target: u,
                        agent,
                    });
                }
            }
        }
    }
    None
}

/// Whether a partition is *stable*: no blocking coalitions exist
/// ("a set of coalitions is stable, i.e. is a valid solution, if no
/// blocking coalitions exist in the partitioning").
pub fn is_stable(network: &TrustNetwork, partition: &Partition, compose: TrustComposition) -> bool {
    find_blocking(network, partition, compose).is_none()
}

#[cfg(test)]
mod tests {
    use super::*;
    use softsoa_semiring::Unit;

    #[test]
    fn fig10_partition_is_blocking() {
        let net = TrustNetwork::fig10();
        let p = Partition::new(
            7,
            vec![
                [0, 1, 2].into_iter().collect(),
                [3, 4, 5, 6].into_iter().collect(),
            ],
        )
        .unwrap();
        let blocking = find_blocking(&net, &p, TrustComposition::Average).unwrap();
        assert_eq!(
            blocking,
            BlockingPair {
                source: 1,
                target: 0,
                agent: 3,
            }
        );
        assert!(!is_stable(&net, &p, TrustComposition::Average));
        // Under Min, admission can never strictly improve a coalition's
        // trustworthiness, so the same partition is trivially stable.
        assert!(is_stable(&net, &p, TrustComposition::Min));
    }

    #[test]
    fn moving_the_defector_stabilises_fig10() {
        let net = TrustNetwork::fig10();
        let p = Partition::new(
            7,
            vec![
                [0, 1, 2, 3].into_iter().collect(),
                [4, 5, 6].into_iter().collect(),
            ],
        )
        .unwrap();
        assert!(is_stable(&net, &p, TrustComposition::Average));
    }

    #[test]
    fn grand_coalition_is_trivially_stable() {
        // With a single coalition there is no C_u ≠ C_v.
        let net = TrustNetwork::random(5, 1);
        assert!(is_stable(
            &net,
            &Partition::grand(5),
            TrustComposition::Average
        ));
    }

    #[test]
    fn indifferent_agents_do_not_block() {
        // Uniform trust: attachments are equal everywhere, so the
        // strict preference of Def. 4 never holds.
        let net = TrustNetwork::new(4, Unit::new(0.5).unwrap());
        let p = Partition::new(
            4,
            vec![[0, 1].into_iter().collect(), [2, 3].into_iter().collect()],
        )
        .unwrap();
        assert!(is_stable(&net, &p, TrustComposition::Average));
    }

    #[test]
    fn admission_must_improve_target_trust() {
        // Agent 0 prefers coalition {1, 2}, but admitting 0 would
        // *lower* that coalition's trustworthiness → not blocking.
        let u = |v: f64| Unit::clamped(v);
        let mut net = TrustNetwork::new(3, u(0.9));
        // 0 loves 1 and 2; they despise 0.
        net.set(1, 0, u(0.1));
        net.set(2, 0, u(0.1));
        // 0 is alone; {1, 2} are together.
        let p = Partition::new(
            3,
            vec![[0].into_iter().collect(), [1, 2].into_iter().collect()],
        )
        .unwrap();
        assert!(is_stable(&net, &p, TrustComposition::Average));
    }
}
