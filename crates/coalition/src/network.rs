//! Directed trust networks of service components (Fig. 9).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use softsoa_semiring::Unit;

/// An agent (service component) identifier: `0 .. n`.
pub type AgentId = u32;

/// A directed trust network: `t(i, j)` is the trust score agent `i`
/// has collected on agent `j` (the directed arcs of Fig. 9; the
/// direction captures the *subjectivity* of the estimation).
///
/// Scores live in `[0, 1]` and the diagonal `t(i, i)` models trust in
/// oneself (Def. 3 explicitly allows `i = j`).
///
/// # Examples
///
/// ```
/// use softsoa_coalition::TrustNetwork;
/// use softsoa_semiring::Unit;
///
/// let mut net = TrustNetwork::new(3, Unit::new(0.5)?);
/// net.set(0, 1, Unit::new(0.9)?);
/// assert_eq!(net.get(0, 1).get(), 0.9);
/// assert_eq!(net.get(1, 0).get(), 0.5); // direction matters
/// # Ok::<(), softsoa_semiring::UnitRangeError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct TrustNetwork {
    n: u32,
    /// Row-major `n × n` matrix.
    trust: Vec<Unit>,
}

impl TrustNetwork {
    /// Creates a network of `n` agents with every score at `default`
    /// (self-trust included).
    pub fn new(n: u32, default: Unit) -> TrustNetwork {
        TrustNetwork {
            n,
            trust: vec![default; (n as usize) * (n as usize)],
        }
    }

    /// The number of agents.
    pub fn len(&self) -> u32 {
        self.n
    }

    /// Whether the network has no agents.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// All agent ids, `0 .. n`.
    pub fn agents(&self) -> impl Iterator<Item = AgentId> {
        0..self.n
    }

    fn index(&self, from: AgentId, to: AgentId) -> usize {
        assert!(from < self.n && to < self.n, "agent id out of range");
        (from as usize) * (self.n as usize) + to as usize
    }

    /// Sets the trust `from` has collected on `to`.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn set(&mut self, from: AgentId, to: AgentId, trust: Unit) {
        let i = self.index(from, to);
        self.trust[i] = trust;
    }

    /// The trust `from` has collected on `to`.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn get(&self, from: AgentId, to: AgentId) -> Unit {
        self.trust[self.index(from, to)]
    }

    /// A random network with scores drawn uniformly from
    /// `{0.0, 0.05, .., 1.0}` and full self-trust.
    pub fn random(n: u32, seed: u64) -> TrustNetwork {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = TrustNetwork::new(n, Unit::MIN);
        for i in 0..n {
            for j in 0..n {
                let t = if i == j {
                    Unit::MAX
                } else {
                    Unit::clamped(rng.random_range(0..=20) as f64 / 20.0)
                };
                net.set(i, j, t);
            }
        }
        net
    }

    /// A clustered network: agents are split into `clusters` blocks
    /// with high intra-block trust and low inter-block trust (plus
    /// seeded noise). The natural ground-truth partition is one
    /// coalition per block.
    pub fn clustered(n: u32, clusters: u32, intra: f64, inter: f64, seed: u64) -> TrustNetwork {
        assert!(clusters > 0, "at least one cluster");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut net = TrustNetwork::new(n, Unit::MIN);
        for i in 0..n {
            for j in 0..n {
                let t = if i == j {
                    Unit::MAX
                } else {
                    let base = if i % clusters == j % clusters {
                        intra
                    } else {
                        inter
                    };
                    let noise = (rng.random_range(0..=10) as f64 / 10.0 - 0.5) * 0.1;
                    Unit::clamped(base + noise)
                };
                net.set(i, j, t);
            }
        }
        net
    }

    /// The seven-component network of Figs. 9–10, with trust values
    /// chosen so that the partition `{x1, x2, x3} | {x4, .., x7}` of
    /// Fig. 10 exhibits exactly the blocking situation the paper
    /// describes: `x4` prefers coalition `C1` to the rest of its own
    /// `C2`, and `C1`'s trustworthiness grows by admitting `x4`.
    ///
    /// Agents are 0-indexed (`x1` is agent `0`).
    pub fn fig10() -> TrustNetwork {
        let u = |v: f64| Unit::clamped(v);
        let mut net = TrustNetwork::new(7, u(0.5));
        for i in 0..7 {
            net.set(i, i, Unit::MAX);
        }
        // C1 = {x1, x2, x3} trust each other well.
        for &(i, j) in &[(0, 1), (1, 0), (0, 2), (2, 0), (1, 2), (2, 1)] {
            net.set(i, j, u(0.8));
        }
        // x4 (id 3) trusts C1's members highly...
        net.set(3, 0, u(0.9));
        net.set(3, 1, u(0.9));
        net.set(3, 2, u(0.9));
        // ...and C1's members trust x4 even more than each other.
        net.set(0, 3, u(0.9));
        net.set(1, 3, u(0.9));
        net.set(2, 3, u(0.9));
        // x4 has little trust in the rest of C2 = {x5, x6, x7}.
        net.set(3, 4, u(0.3));
        net.set(3, 5, u(0.3));
        net.set(3, 6, u(0.3));
        // C2's remaining members trust each other moderately.
        for &(i, j) in &[(4, 5), (5, 4), (4, 6), (6, 4), (5, 6), (6, 5)] {
            net.set(i, j, u(0.6));
        }
        // and have moderate opinions of x4.
        for i in 4..7 {
            net.set(i, 3, u(0.5));
        }
        net
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_and_set_get() {
        let mut net = TrustNetwork::new(2, Unit::MIN);
        assert_eq!(net.get(0, 1), Unit::MIN);
        net.set(0, 1, Unit::MAX);
        assert_eq!(net.get(0, 1), Unit::MAX);
        assert_eq!(net.get(1, 0), Unit::MIN);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_panics() {
        let net = TrustNetwork::new(2, Unit::MIN);
        let _ = net.get(0, 2);
    }

    #[test]
    fn random_is_deterministic_and_self_trusting() {
        let a = TrustNetwork::random(5, 7);
        let b = TrustNetwork::random(5, 7);
        assert_eq!(a, b);
        for i in 0..5 {
            assert_eq!(a.get(i, i), Unit::MAX);
        }
    }

    #[test]
    fn clustered_has_higher_intra_trust() {
        let net = TrustNetwork::clustered(8, 2, 0.9, 0.1, 3);
        // Average intra vs inter.
        let (mut intra, mut ni, mut inter, mut nj) = (0.0, 0, 0.0, 0);
        for i in 0..8u32 {
            for j in 0..8u32 {
                if i == j {
                    continue;
                }
                if i % 2 == j % 2 {
                    intra += net.get(i, j).get();
                    ni += 1;
                } else {
                    inter += net.get(i, j).get();
                    nj += 1;
                }
            }
        }
        assert!(intra / ni as f64 > inter / nj as f64 + 0.5);
    }

    #[test]
    fn fig10_shape() {
        let net = TrustNetwork::fig10();
        assert_eq!(net.len(), 7);
        // x4 trusts C1 members more than its C2 fellows.
        assert!(net.get(3, 0) > net.get(3, 4));
        assert_eq!(net.get(3, 3), Unit::MAX);
    }
}
