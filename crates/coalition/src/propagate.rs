//! Semiring-based trust propagation across the network.
//!
//! The paper notes that "by changing the semiring structure we can
//! represent different trust metrics" (citing Bistarelli & Santini's
//! *multitrust* propagation and Theodorakopoulos & Baras' ad-hoc-network
//! trust evaluation). Direct trust scores only exist between agents
//! that have interacted; [`propagate`] closes the network over a
//! chosen c-semiring: the derived trust `t*(i, j)` is the `+`-sum
//! (best) over all paths of the `×`-product (composition) of the edge
//! scores along the path.
//!
//! - with the **probabilistic** semiring, trust decays multiplicatively
//!   along a referral chain and the best chain wins;
//! - with the **fuzzy** semiring, a chain is as strong as its weakest
//!   referral (widest-path trust).

use softsoa_semiring::{Semiring, Unit};

use crate::TrustNetwork;

/// Closes the trust network over a semiring: the algebraic-path
/// (Floyd–Warshall) computation of
/// `t*(i, j) = Σ_paths Π_edges t(…)`.
///
/// The result dominates the input pointwise (`t*(i, j) ≥ t(i, j)` in
/// the semiring order) and is a fixpoint: propagating again changes
/// nothing. Diagonal entries are preserved.
///
/// The semiring's carrier must be [`Unit`] so the result is again a
/// [`TrustNetwork`]; both paper-relevant instances (probabilistic and
/// fuzzy) qualify.
///
/// # Examples
///
/// ```
/// use softsoa_coalition::{propagate, TrustNetwork};
/// use softsoa_semiring::{Probabilistic, Unit};
///
/// // 0 trusts 1 (0.9), 1 trusts 2 (0.8); 0 has no direct score on 2.
/// let mut net = TrustNetwork::new(3, Unit::MIN);
/// net.set(0, 1, Unit::new(0.9)?);
/// net.set(1, 2, Unit::new(0.8)?);
/// let closed = propagate(&net, &Probabilistic);
/// assert!((closed.get(0, 2).get() - 0.72).abs() < 1e-12);
/// # Ok::<(), softsoa_semiring::UnitRangeError>(())
/// ```
pub fn propagate<S>(network: &TrustNetwork, semiring: &S) -> TrustNetwork
where
    S: Semiring<Value = Unit>,
{
    let n = network.len();
    let mut closed = network.clone();
    for k in 0..n {
        for i in 0..n {
            if i == k {
                continue;
            }
            let ik = closed.get(i, k);
            for j in 0..n {
                if j == k || i == j {
                    continue;
                }
                let through_k = semiring.times(&ik, &closed.get(k, j));
                let best = semiring.plus(&closed.get(i, j), &through_k);
                closed.set(i, j, best);
            }
        }
    }
    closed
}

#[cfg(test)]
mod tests {
    use super::*;
    use softsoa_semiring::{Fuzzy, Probabilistic};

    fn u(v: f64) -> Unit {
        Unit::clamped(v)
    }

    fn chain() -> TrustNetwork {
        // 0 → 1 → 2 → 3 referral chain plus a weak direct 0 → 3 edge.
        let mut net = TrustNetwork::new(4, Unit::MIN);
        for i in 0..4 {
            net.set(i, i, Unit::MAX);
        }
        net.set(0, 1, u(0.9));
        net.set(1, 2, u(0.8));
        net.set(2, 3, u(0.5));
        net.set(0, 3, u(0.3));
        net
    }

    #[test]
    fn probabilistic_propagation_decays_along_chains() {
        let closed = propagate(&chain(), &Probabilistic);
        // 0→1→2: 0.9 × 0.8 = 0.72.
        assert!((closed.get(0, 2).get() - 0.72).abs() < 1e-12);
        // 0→3: the chain 0.9·0.8·0.5 = 0.36 beats the direct 0.3.
        assert!((closed.get(0, 3).get() - 0.36).abs() < 1e-12);
        // No path 3 → 0.
        assert_eq!(closed.get(3, 0), Unit::MIN);
    }

    #[test]
    fn fuzzy_propagation_is_widest_path() {
        let closed = propagate(&chain(), &Fuzzy);
        // min(0.9, 0.8) = 0.8 for 0→2; min(0.9, 0.8, 0.5) = 0.5 for 0→3.
        assert_eq!(closed.get(0, 2), u(0.8));
        assert_eq!(closed.get(0, 3), u(0.5));
    }

    #[test]
    fn propagation_dominates_input_and_is_idempotent() {
        let net = TrustNetwork::random(6, 13);
        for s_name in ["prob", "fuzzy"] {
            let (once, twice) = if s_name == "prob" {
                let once = propagate(&net, &Probabilistic);
                (once.clone(), propagate(&once, &Probabilistic))
            } else {
                let once = propagate(&net, &Fuzzy);
                (once.clone(), propagate(&once, &Fuzzy))
            };
            for i in 0..6 {
                for j in 0..6 {
                    assert!(once.get(i, j) >= net.get(i, j), "{s_name} ({i},{j})");
                    let a = once.get(i, j).get();
                    let b = twice.get(i, j).get();
                    assert!((a - b).abs() < 1e-9, "{s_name} not a fixpoint at ({i},{j})");
                }
            }
        }
    }

    #[test]
    fn diagonal_is_preserved() {
        let mut net = TrustNetwork::new(3, u(0.9));
        net.set(1, 1, u(0.2)); // unusual self-doubt
        let closed = propagate(&net, &Probabilistic);
        assert_eq!(closed.get(1, 1), u(0.2));
    }

    #[test]
    fn propagation_enables_coalitions_between_strangers() {
        use crate::{coalition_trust, TrustComposition};
        // Two strangers connected only through a broker agent.
        let mut net = TrustNetwork::new(3, Unit::MIN);
        for i in 0..3 {
            net.set(i, i, Unit::MAX);
        }
        net.set(0, 1, u(0.9));
        net.set(1, 0, u(0.9));
        net.set(1, 2, u(0.9));
        net.set(2, 1, u(0.9));
        let direct: crate::Coalition = [0, 2].into_iter().collect();
        assert_eq!(
            coalition_trust(&net, &direct, TrustComposition::Min),
            Unit::MIN
        );
        let closed = propagate(&net, &Probabilistic);
        let t = coalition_trust(&closed, &direct, TrustComposition::Min);
        assert!((t.get() - 0.81).abs() < 1e-12);
    }
}
