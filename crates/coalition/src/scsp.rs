//! The SCSP encoding of coalition formation (Sec. 6.1).
//!
//! Variables `co1 .. con` range over the powerset of agent
//! identifiers; the Fuzzy semiring maximises the minimum coalition
//! trustworthiness; crisp (0/1-valued) constraints enforce that the
//! coalitions partition the agents and that no blocking pair exists.
//! This is the paper's formalisation verbatim — exponential in `n`,
//! and therefore cross-checked against the direct
//! [`exact_formation`](crate::exact_formation) search on small
//! networks (they must and do agree).

use std::collections::BTreeSet;

use softsoa_core::solve::{BranchAndBound, Solver, SolverConfig, VarOrder};
use softsoa_core::{Constraint, Domain, Scsp, SolveError, Val, Var};
use softsoa_semiring::{Fuzzy, Unit};

use crate::{
    attachment, coalition_trust, Coalition, FormationResult, Partition, TrustComposition,
    TrustNetwork,
};

fn co_var(i: u32) -> Var {
    Var::new(format!("co{}", i + 1))
}

fn as_coalition(v: &Val) -> Coalition {
    v.as_set().cloned().unwrap_or_default()
}

/// Builds the Sec. 6.1 SCSP for a trust network.
///
/// The problem has one variable per potential coalition (`n` of them,
/// since at most `n` non-empty coalitions exist), each with the
/// powerset domain `𝒫{0..n}`; `con` is the full variable set.
///
/// Constraint classes, as in the paper:
///
/// 1. **trust** — a unary fuzzy constraint per variable scoring the
///    coalition's trustworthiness `T(C)` through `◦` (empty
///    coalitions score `1`);
/// 2. **partition** — crisp: pairwise disjointness plus full coverage;
/// 3. **stability** — crisp, for each ordered variable pair: no agent
///    of the first would defect to the second (Def. 4).
///
/// # Panics
///
/// Panics if `network.len() > 5` (the encoding enumerates
/// `(2ⁿ)ⁿ` tuples; at `n = 5` that is already 33M).
pub fn formation_scsp(
    network: &TrustNetwork,
    compose: TrustComposition,
    require_stability: bool,
) -> Scsp<Fuzzy> {
    let n = network.len();
    assert!(n <= 5, "the SCSP encoding is exponential; use n ≤ 5");
    let vars: Vec<Var> = (0..n).map(co_var).collect();

    let mut problem = Scsp::new(Fuzzy);
    for v in &vars {
        problem.add_domain(v.clone(), Domain::powerset(n));
    }

    // 1. Trust constraints.
    for v in &vars {
        let net = network.clone();
        problem.add_constraint(
            Constraint::unary(Fuzzy, v.clone(), move |val| {
                let c = as_coalition(val);
                if c.is_empty() {
                    Unit::MAX
                } else {
                    coalition_trust(&net, &c, compose)
                }
            })
            .with_label(format!("trust({v})")),
        );
    }

    // 2. Partition constraints: pairwise disjointness...
    for i in 0..vars.len() {
        for j in (i + 1)..vars.len() {
            problem.add_constraint(
                Constraint::binary(Fuzzy, vars[i].clone(), vars[j].clone(), |a, b| {
                    if as_coalition(a).is_disjoint(&as_coalition(b)) {
                        Unit::MAX
                    } else {
                        Unit::MIN
                    }
                })
                .with_label(format!("disjoint({},{})", vars[i], vars[j])),
            );
        }
    }
    // ...plus full coverage: |co1 ∪ ... ∪ con| = n.
    {
        let total = n;
        problem.add_constraint(
            Constraint::crisp(Fuzzy, &vars, move |vals| {
                let mut union: BTreeSet<u32> = BTreeSet::new();
                for v in vals {
                    union.extend(as_coalition(v));
                }
                union.len() == total as usize
            })
            .with_label("coverage"),
        );
    }

    // 3. Stability constraints (one binary crisp constraint per
    // ordered pair (co_v, co_u), conjoining the paper's per-agent
    // ternary constraints over x_k ∈ co_v).
    if require_stability {
        for v in 0..vars.len() {
            for u in 0..vars.len() {
                if u == v {
                    continue;
                }
                let net = network.clone();
                problem.add_constraint(
                    Constraint::binary(
                        Fuzzy,
                        vars[v].clone(),
                        vars[u].clone(),
                        move |cv_val, cu_val| {
                            let cv = as_coalition(cv_val);
                            let cu = as_coalition(cu_val);
                            if cu.is_empty() {
                                return Unit::MAX;
                            }
                            for &k in &cv {
                                let own = attachment(&net, k, &cv, compose);
                                let other = attachment(&net, k, &cu, compose);
                                if other > own {
                                    let t_cu = coalition_trust(&net, &cu, compose);
                                    let mut ext = cu.clone();
                                    ext.insert(k);
                                    if coalition_trust(&net, &ext, compose) > t_cu {
                                        return Unit::MIN; // blocking
                                    }
                                }
                            }
                            Unit::MAX
                        },
                    )
                    .with_label(format!("stable({},{})", vars[v], vars[u])),
                );
            }
        }
    }

    problem.of_interest(vars)
}

/// Solves the Sec. 6.1 encoding and decodes the best assignment into a
/// [`Partition`].
///
/// Returns `None` when no feasible (partitioning, and stable if
/// required) assignment exists at a level above `0`.
///
/// # Errors
///
/// Returns [`SolveError`] if solving fails.
///
/// # Panics
///
/// Panics if `network.len() > 5` (see [`formation_scsp`]).
pub fn scsp_formation(
    network: &TrustNetwork,
    compose: TrustComposition,
    require_stability: bool,
) -> Result<Option<FormationResult>, SolveError> {
    let n = network.len();
    let problem = formation_scsp(network, compose, require_stability);
    let solution = problem.solve()?;
    decode(n, solution.best().first())
}

/// [`scsp_formation`] on the branch-and-bound engine with an explicit
/// [`SolverConfig`] — the path behind the CLI's `--propagate` /
/// `--decompose` flags. The formation score is identical to the
/// enumeration path for every configuration; the decoded partition is
/// always feasible (and stable when required) but, the fuzzy semiring
/// being idempotent, may be a different equally best partition.
///
/// # Errors
///
/// Returns [`SolveError`] if solving fails.
///
/// # Panics
///
/// Panics if `network.len() > 5` (see [`formation_scsp`]).
pub fn scsp_formation_with(
    network: &TrustNetwork,
    compose: TrustComposition,
    require_stability: bool,
    config: &SolverConfig,
) -> Result<Option<FormationResult>, SolveError> {
    let n = network.len();
    let problem = formation_scsp(network, compose, require_stability);
    let solver = BranchAndBound::with_config(VarOrder::Input, *config);
    let solution = solver.solve(&problem)?;
    decode(n, solution.best().first())
}

fn decode(
    n: u32,
    best: Option<&(softsoa_core::Assignment, Unit)>,
) -> Result<Option<FormationResult>, SolveError> {
    let Some((eta, score)) = best else {
        return Ok(None);
    };
    let mut coalitions: Vec<Coalition> = Vec::new();
    for i in 0..n {
        let c = as_coalition(eta.get(&co_var(i)).expect("assigned"));
        if !c.is_empty() {
            coalitions.push(c);
        }
    }
    let partition = Partition::new(n, coalitions).expect("decoded assignment partitions");
    Ok(Some(FormationResult {
        partition,
        score: *score,
        explored: 0,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{exact_formation, is_stable, FormationConfig};

    #[test]
    fn scsp_matches_direct_exact_search() {
        for seed in 0..2 {
            let net = TrustNetwork::random(4, seed);
            for require_stability in [false, true] {
                let cfg = FormationConfig {
                    compose: TrustComposition::Average,
                    require_stability,
                    ..Default::default()
                };
                let direct = exact_formation(&net, cfg).unwrap();
                let scsp = scsp_formation(&net, cfg.compose, require_stability)
                    .unwrap()
                    .expect("feasible");
                assert_eq!(
                    scsp.score, direct.score,
                    "seed {seed} stability {require_stability}"
                );
            }
        }
    }

    #[test]
    fn scsp_solution_is_a_stable_partition() {
        let net = TrustNetwork::random(4, 9);
        let result = scsp_formation(&net, TrustComposition::Average, true)
            .unwrap()
            .expect("feasible");
        assert!(is_stable(
            &net,
            &result.partition,
            TrustComposition::Average
        ));
    }

    #[test]
    fn branch_and_bound_formation_matches_enumeration_score() {
        use softsoa_core::solve::PropagationMode;
        let net = TrustNetwork::random(4, 3);
        let reference = scsp_formation(&net, TrustComposition::Average, true)
            .unwrap()
            .expect("feasible");
        for config in [
            SolverConfig::default(),
            SolverConfig::default().with_propagation(PropagationMode::Full),
            SolverConfig::default()
                .with_propagation(PropagationMode::Off)
                .with_decompose(false),
        ] {
            let result = scsp_formation_with(&net, TrustComposition::Average, true, &config)
                .unwrap()
                .expect("feasible");
            assert_eq!(result.score, reference.score);
            assert!(is_stable(
                &net,
                &result.partition,
                TrustComposition::Average
            ));
        }
    }

    #[test]
    fn trust_constraint_scores_empty_as_top() {
        let net = TrustNetwork::random(3, 1);
        let p = formation_scsp(&net, TrustComposition::Min, false);
        // Singleton-per-agent assignments with empties are feasible and
        // score MAX; so must the blevel.
        assert_eq!(p.blevel().unwrap(), Unit::MAX);
    }

    #[test]
    #[should_panic(expected = "exponential")]
    fn large_networks_are_rejected() {
        let net = TrustNetwork::random(6, 0);
        let _ = formation_scsp(&net, TrustComposition::Min, false);
    }
}
