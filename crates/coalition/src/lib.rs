//! Trust networks and trustworthy coalition formation for service
//! components.
//!
//! This crate implements Sec. 6 of *Bistarelli & Santini, "Soft
//! Constraints for Dependable Service Oriented Architectures"* (DSN
//! 2008): grouping service components into *trustworthy coalitions*.
//! Components rate each other on a directed [`TrustNetwork`] (Fig. 9);
//! a coalition's trustworthiness `T(C)` composes those 1-to-1 scores
//! through the social operator `◦` ([`TrustComposition`], Def. 3);
//! partitions must be *stable* — free of blocking pairs
//! ([`find_blocking`], Def. 4, Fig. 10) — and the Fuzzy-semiring
//! objective maximises the minimum coalition trustworthiness
//! (Sec. 6.1).
//!
//! Solvers:
//!
//! - [`formation_scsp`] / [`scsp_formation`] — the paper's SCSP
//!   encoding verbatim, solved by `softsoa-core` (small `n`);
//! - [`exact_formation`] — exact search via an `O(3ⁿ)` bitmask subset
//!   DP (up to `n = 18`; the Bell-number enumeration it replaced is
//!   kept as [`exact_formation_enumerated`], up to `n = 13`);
//! - [`individually_oriented`] / [`socially_oriented`] — the greedy
//!   mechanisms the paper contrasts (Breban & Vassileva);
//! - [`local_search`] and best-response [`stabilize`] — scalable
//!   heuristics.
//!
//! [`propagate`] additionally closes a sparse trust network over a
//! c-semiring (best referral chain), so coalitions can form between
//! components that never interacted directly.
//!
//! # Example
//!
//! ```
//! use softsoa_coalition::*;
//!
//! let net = TrustNetwork::fig10();
//! // The Fig. 10 partition is *not* stable: x4 defects to {x1,x2,x3}.
//! let fig10 = Partition::new(7, vec![
//!     [0, 1, 2].into_iter().collect(),
//!     [3, 4, 5, 6].into_iter().collect(),
//! ]).unwrap();
//! assert!(!is_stable(&net, &fig10, TrustComposition::Average));
//!
//! // Best-response dynamics repair it.
//! let (stable, ok) = stabilize(&net, fig10, TrustComposition::Average, 100);
//! assert!(ok && is_stable(&net, &stable, TrustComposition::Average));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod coalition;
mod network;
mod propagate;
mod scsp;
mod solvers;
mod stability;

pub use coalition::{
    attachment, coalition_trust, Coalition, InvalidPartitionError, Partition, TrustComposition,
};
pub use network::{AgentId, TrustNetwork};
pub use propagate::propagate;
pub use scsp::{formation_scsp, scsp_formation, scsp_formation_with};
pub use solvers::{
    exact_formation, exact_formation_enumerated, exact_formation_instrumented,
    exact_formation_with, individually_oriented, local_search, socially_oriented, stabilize,
    FormationConfig, FormationResult, MAX_ENUMERATED_AGENTS, MAX_EXACT_AGENTS,
};
pub use stability::{find_blocking, is_stable, BlockingPair};
