//! Coalitions, partitions and their trustworthiness (Defs. 3–4).

use std::collections::BTreeSet;
use std::fmt;

use softsoa_semiring::Unit;

use crate::{AgentId, TrustNetwork};

/// The trust-composition operator `◦` of Def. 3.
///
/// `◦` aggregates the 1-to-1 trust relationships inside a coalition
/// into a single trustworthiness score. The paper stresses that it is
/// a *social* aggregation, independent of the semiring operators; its
/// example instantiations are the minimum, the maximum and the
/// arithmetic mean.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum TrustComposition {
    /// The weakest link: a coalition is as trustworthy as its least
    /// trusted relationship.
    #[default]
    Min,
    /// The strongest link (the paper's `max` example).
    Max,
    /// The arithmetic mean (the paper's `avg` example).
    Average,
}

impl TrustComposition {
    /// Composes a sequence of trust scores.
    ///
    /// The empty composition is [`Unit::MIN`]: an agent with no
    /// relationships in a group places no trust in it. (Def. 4's
    /// preference comparison then makes a lonely agent willing to
    /// join any coalition that would have it.)
    pub fn compose<I: IntoIterator<Item = Unit>>(&self, scores: I) -> Unit {
        let mut iter = scores.into_iter();
        let Some(first) = iter.next() else {
            return Unit::MIN;
        };
        match self {
            TrustComposition::Min => iter.fold(first, |acc, s| acc.min(s)),
            TrustComposition::Max => iter.fold(first, |acc, s| acc.max(s)),
            TrustComposition::Average => {
                let mut sum = first.get();
                let mut count = 1usize;
                for s in iter {
                    sum += s.get();
                    count += 1;
                }
                Unit::clamped(sum / count as f64)
            }
        }
    }
}

/// A coalition: a set of agent ids.
pub type Coalition = BTreeSet<AgentId>;

/// The trustworthiness `T(C)` of a coalition (Def. 3): the `◦`
/// composition of every ordered 1-to-1 trust relationship inside it,
/// self-trust included.
///
/// # Examples
///
/// ```
/// use softsoa_coalition::{coalition_trust, Coalition, TrustComposition, TrustNetwork};
/// use softsoa_semiring::Unit;
///
/// let net = TrustNetwork::fig10();
/// let c1: Coalition = [0, 1, 2].into_iter().collect();
/// let t = coalition_trust(&net, &c1, TrustComposition::Min);
/// assert_eq!(t.get(), 0.8); // the weakest intra-C1 link
/// ```
pub fn coalition_trust(
    network: &TrustNetwork,
    coalition: &Coalition,
    compose: TrustComposition,
) -> Unit {
    compose.compose(
        coalition
            .iter()
            .flat_map(|&i| coalition.iter().map(move |&j| (i, j)))
            .map(|(i, j)| network.get(i, j)),
    )
}

/// How much `agent` trusts the members of `group` (excluding itself),
/// composed with `◦` — the quantity Def. 4 compares across coalitions.
pub fn attachment(
    network: &TrustNetwork,
    agent: AgentId,
    group: &Coalition,
    compose: TrustComposition,
) -> Unit {
    compose.compose(
        group
            .iter()
            .filter(|&&j| j != agent)
            .map(|&j| network.get(agent, j)),
    )
}

/// A partition of the agents into disjoint coalitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    coalitions: Vec<Coalition>,
}

/// An error returned when a candidate partition is not a partition:
/// overlapping coalitions, missing agents, out-of-range ids or empty
/// coalitions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidPartitionError {
    reason: String,
}

impl fmt::Display for InvalidPartitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid partition: {}", self.reason)
    }
}

impl std::error::Error for InvalidPartitionError {}

impl Partition {
    /// Validates and creates a partition of the `n` agents `0 .. n`.
    ///
    /// Every agent must belong to exactly one coalition ("a single
    /// entity can appear in only one coalition at \[a\] time"); empty
    /// coalitions are rejected.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidPartitionError`] when the candidate is not a
    /// partition of `0 .. n`.
    pub fn new(n: u32, coalitions: Vec<Coalition>) -> Result<Partition, InvalidPartitionError> {
        let mut seen: BTreeSet<AgentId> = BTreeSet::new();
        for c in &coalitions {
            if c.is_empty() {
                return Err(InvalidPartitionError {
                    reason: "empty coalition".into(),
                });
            }
            for &agent in c {
                if agent >= n {
                    return Err(InvalidPartitionError {
                        reason: format!("agent {agent} out of range (n = {n})"),
                    });
                }
                if !seen.insert(agent) {
                    return Err(InvalidPartitionError {
                        reason: format!("agent {agent} appears in two coalitions"),
                    });
                }
            }
        }
        if seen.len() != n as usize {
            return Err(InvalidPartitionError {
                reason: format!("only {}/{n} agents are assigned", seen.len()),
            });
        }
        Ok(Partition { coalitions })
    }

    /// The all-singletons partition (every agent alone).
    pub fn singletons(n: u32) -> Partition {
        Partition {
            coalitions: (0..n).map(|i| BTreeSet::from([i])).collect(),
        }
    }

    /// The grand coalition (everyone together); `n` must be positive.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn grand(n: u32) -> Partition {
        assert!(n > 0, "grand coalition of zero agents");
        Partition {
            coalitions: vec![(0..n).collect()],
        }
    }

    /// The coalitions.
    pub fn coalitions(&self) -> &[Coalition] {
        &self.coalitions
    }

    /// The number of coalitions.
    pub fn len(&self) -> usize {
        self.coalitions.len()
    }

    /// Whether the partition has no coalitions (the `n = 0` case).
    pub fn is_empty(&self) -> bool {
        self.coalitions.is_empty()
    }

    /// The index of the coalition containing `agent`.
    pub fn coalition_of(&self, agent: AgentId) -> Option<usize> {
        self.coalitions.iter().position(|c| c.contains(&agent))
    }

    /// The *fuzzy objective* of Sec. 6.1: the minimum trustworthiness
    /// over all coalitions (the quantity the Fuzzy-semiring SCSP
    /// maximises). The empty partition scores [`Unit::MAX`].
    pub fn score(&self, network: &TrustNetwork, compose: TrustComposition) -> Unit {
        self.coalitions
            .iter()
            .map(|c| coalition_trust(network, c, compose))
            .min()
            .unwrap_or(Unit::MAX)
    }
}

impl fmt::Display for Partition {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.coalitions.iter().enumerate() {
            if i > 0 {
                f.write_str(" | ")?;
            }
            f.write_str("{")?;
            for (k, a) in c.iter().enumerate() {
                if k > 0 {
                    f.write_str(",")?;
                }
                write!(f, "{a}")?;
            }
            f.write_str("}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn u(v: f64) -> Unit {
        Unit::clamped(v)
    }

    #[test]
    fn composition_operators() {
        let scores = [u(0.2), u(0.8), u(0.5)];
        assert_eq!(TrustComposition::Min.compose(scores), u(0.2));
        assert_eq!(TrustComposition::Max.compose(scores), u(0.8));
        assert_eq!(TrustComposition::Average.compose(scores), u(0.5));
        assert_eq!(TrustComposition::Min.compose([]), Unit::MIN);
    }

    #[test]
    fn singleton_trust_is_self_trust() {
        let net = TrustNetwork::fig10();
        let c: Coalition = BTreeSet::from([4]);
        assert_eq!(coalition_trust(&net, &c, TrustComposition::Min), Unit::MAX);
    }

    #[test]
    fn attachment_ignores_self() {
        let net = TrustNetwork::fig10();
        let c1: Coalition = [0, 1, 2, 3].into_iter().collect();
        // x4's (agent 3) attachment to C1 ∪ {x4} counts only 0, 1, 2.
        assert_eq!(attachment(&net, 3, &c1, TrustComposition::Min), u(0.9));
    }

    #[test]
    fn partition_validation() {
        let ok = Partition::new(3, vec![BTreeSet::from([0, 1]), BTreeSet::from([2])]);
        assert!(ok.is_ok());
        let overlap = Partition::new(3, vec![BTreeSet::from([0, 1]), BTreeSet::from([1, 2])]);
        assert!(overlap.is_err());
        let missing = Partition::new(3, vec![BTreeSet::from([0, 1])]);
        assert!(missing.is_err());
        let out_of_range = Partition::new(2, vec![BTreeSet::from([0, 5]), BTreeSet::from([1])]);
        assert!(out_of_range.is_err());
        let empty = Partition::new(1, vec![BTreeSet::from([0]), BTreeSet::new()]);
        assert!(empty.is_err());
    }

    #[test]
    fn canonical_partitions() {
        let s = Partition::singletons(4);
        assert_eq!(s.len(), 4);
        let g = Partition::grand(4);
        assert_eq!(g.len(), 1);
        assert_eq!(g.coalition_of(2), Some(0));
        assert_eq!(s.coalition_of(2), Some(2));
        assert_eq!(s.coalition_of(9), None);
    }

    #[test]
    fn score_is_min_over_coalitions() {
        let net = TrustNetwork::fig10();
        let p = Partition::new(
            7,
            vec![
                [0, 1, 2].into_iter().collect(),
                [3, 4, 5, 6].into_iter().collect(),
            ],
        )
        .unwrap();
        let t1 = coalition_trust(&net, &p.coalitions()[0], TrustComposition::Min);
        let t2 = coalition_trust(&net, &p.coalitions()[1], TrustComposition::Min);
        assert_eq!(p.score(&net, TrustComposition::Min), t1.min(t2));
        // Singletons are fully self-trusting.
        assert_eq!(
            Partition::singletons(7).score(&net, TrustComposition::Min),
            Unit::MAX
        );
    }

    #[test]
    fn display() {
        let p = Partition::new(3, vec![BTreeSet::from([0, 2]), BTreeSet::from([1])]).unwrap();
        assert_eq!(p.to_string(), "{0,2} | {1}");
    }
}
