//! Coalition-formation algorithms: exact, greedy baselines and local
//! search.
//!
//! The exact solver maximises the Sec. 6.1 fuzzy objective (the
//! minimum coalition trustworthiness) over *all* set partitions,
//! optionally restricted to stable ones. The greedy baselines are the
//! two mechanisms the paper contrasts (after Breban & Vassileva):
//! *individually oriented* — each agent clusters with the agent it
//! trusts most — and *socially oriented* — each agent joins the
//! coalition holding its highest summative trust. Local search and
//! best-response stabilisation scale to networks the exact solver
//! cannot touch; the `coalition_ablation` bench (experiment E12)
//! compares them all.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use softsoa_core::solve::Parallelism;
use softsoa_semiring::Unit;
use softsoa_telemetry::Telemetry;

use crate::{
    find_blocking, is_stable, AgentId, Coalition, Partition, TrustComposition, TrustNetwork,
};

/// Configuration of a coalition-formation run.
#[derive(Debug, Clone, Copy, Default)]
pub struct FormationConfig {
    /// The trust-composition operator `◦`.
    pub compose: TrustComposition,
    /// Whether only stable partitions (Def. 4) are feasible.
    pub require_stability: bool,
    /// An upper bound on the number of coalitions. The paper motivates
    /// coalitions by *consumable shared resources* ("the same resource
    /// cannot be assigned to more than a user at a given time"): with
    /// one resource pool per coalition, only so many coalitions can be
    /// provisioned. Unbounded (`None`) formation under a min-trust
    /// objective degenerates to all-singletons (full self-trust).
    pub max_coalitions: Option<usize>,
}

/// The outcome of a formation algorithm.
#[derive(Debug, Clone)]
pub struct FormationResult {
    /// The chosen partition.
    pub partition: Partition,
    /// Its fuzzy objective: the minimum coalition trustworthiness.
    pub score: Unit,
    /// Work counter: partitions examined (exact), or moves tried
    /// (local search), or agents placed (greedy).
    pub explored: usize,
}

/// Exhaustively searches every set partition (restricted-growth-string
/// enumeration) for the best objective; `None` when stability is
/// required and no stable partition exists.
///
/// The number of partitions is the Bell number `B(n)` — callers are
/// limited to `n ≤ 13` (`B(13) ≈ 2.7·10⁷`).
///
/// # Panics
///
/// Panics if `network.len() > 13`.
///
/// # Examples
///
/// ```
/// use softsoa_coalition::{exact_formation, is_stable, FormationConfig,
///     TrustComposition, TrustNetwork};
///
/// let net = TrustNetwork::fig10();
/// let cfg = FormationConfig {
///     compose: TrustComposition::Average,
///     require_stability: true,
///     ..Default::default()
/// };
/// let best = exact_formation(&net, cfg).unwrap();
/// assert!(is_stable(&net, &best.partition, TrustComposition::Average));
/// // The Fig. 10 partition {x1..x3} | {x4..x7} is blocked, so the
/// // optimum is a different (here: better-scoring) partition.
/// assert!(best.score.get() >= 0.8);
/// ```
pub fn exact_formation(network: &TrustNetwork, cfg: FormationConfig) -> Option<FormationResult> {
    exact_formation_with(network, cfg, Parallelism::Sequential)
}

/// [`exact_formation`] with an explicit parallelism level: the
/// restricted-growth-string prefixes of a fixed depth are enumerated up
/// front and their subtrees are distributed contiguously over worker
/// threads. Local optima are merged in prefix order with strict
/// improvement only, so the winning partition (and the tie-breaking
/// towards the earliest enumerated optimum) is identical to the
/// sequential search at every thread count.
///
/// # Panics
///
/// Panics if `network.len() > 13`.
pub fn exact_formation_with(
    network: &TrustNetwork,
    cfg: FormationConfig,
    parallelism: Parallelism,
) -> Option<FormationResult> {
    exact_formation_instrumented(network, cfg, parallelism, &Telemetry::disabled())
}

/// The largest network [`exact_formation`] accepts: Bell numbers grow
/// super-exponentially, and B(13) ≈ 27.6 million partitions is the
/// practical ceiling. Check against this before calling to avoid the
/// documented panic.
pub const MAX_EXACT_AGENTS: u32 = 13;

/// [`exact_formation_with`] reporting through `telemetry`: the
/// partitions-explored total (`formation.explored`), the per-chunk
/// partition balance (`formation.chunk_explored` observations), the
/// thread gauge and the winning partition's coalition count.
///
/// # Panics
///
/// Panics if `network.len() > `[`MAX_EXACT_AGENTS`].
pub fn exact_formation_instrumented(
    network: &TrustNetwork,
    cfg: FormationConfig,
    parallelism: Parallelism,
    telemetry: &Telemetry,
) -> Option<FormationResult> {
    let n = network.len();
    assert!(
        n <= MAX_EXACT_AGENTS,
        "exact formation is limited to {MAX_EXACT_AGENTS} agents"
    );
    if n == 0 {
        return Some(FormationResult {
            partition: Partition::new(0, vec![]).expect("empty partition"),
            score: Unit::MAX,
            explored: 1,
        });
    }

    // Deep enough that every worker gets several independent subtrees,
    // shallow enough that prefix enumeration stays negligible.
    let depth = (n as usize).min(4);
    let prefixes = rgs_prefixes(depth, cfg.max_coalitions);
    let threads = parallelism.thread_count(prefixes.len());

    let run_chunk = |chunk: &[Vec<u32>]| -> (Option<(Partition, Unit)>, usize) {
        let mut best: Option<(Partition, Unit)> = None;
        let mut explored = 0usize;
        for prefix in chunk {
            let mut labels = vec![0u32; n as usize];
            labels[..depth].copy_from_slice(prefix);
            enumerate_rgs(&mut labels, depth, network, cfg, &mut best, &mut explored);
        }
        (best, explored)
    };
    let parts: Vec<(Option<(Partition, Unit)>, usize)> = if threads <= 1 {
        vec![run_chunk(&prefixes)]
    } else {
        std::thread::scope(|scope| {
            let run_chunk = &run_chunk;
            let chunk_size = prefixes.len().div_ceil(threads);
            let handles: Vec<_> = prefixes
                .chunks(chunk_size)
                .map(|chunk| scope.spawn(move || run_chunk(chunk)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("formation worker panicked"))
                .collect()
        })
    };

    let mut best: Option<(Partition, Unit)> = None;
    let mut explored = 0usize;
    if telemetry.enabled() {
        telemetry.incr("formation.runs");
        telemetry.gauge("formation.threads", threads as i64);
        for (_, count) in &parts {
            telemetry.observe("formation.chunk_explored", *count as u64);
        }
    }
    for (local, count) in parts {
        explored += count;
        if let Some((partition, score)) = local {
            match &best {
                Some((_, best_score)) if *best_score >= score => {}
                _ => best = Some((partition, score)),
            }
        }
    }
    telemetry.count("formation.explored", explored as u64);
    let result = best.map(|(partition, score)| FormationResult {
        partition,
        score,
        explored,
    });
    if let Some(result) = &result {
        telemetry.gauge("formation.coalitions", result.partition.len() as i64);
    }
    result
}

/// Enumerates every valid restricted-growth-string prefix of the given
/// length, in the order the sequential DFS would visit them.
fn rgs_prefixes(depth: usize, max_coalitions: Option<usize>) -> Vec<Vec<u32>> {
    fn rec(prefix: &mut Vec<u32>, depth: usize, limit: Option<usize>, out: &mut Vec<Vec<u32>>) {
        if prefix.len() == depth {
            out.push(prefix.clone());
            return;
        }
        let mut highest = prefix.iter().copied().max().unwrap_or(0) + 1;
        if let Some(limit) = limit {
            highest = highest.min(limit.saturating_sub(1) as u32);
        }
        for label in 0..=highest {
            prefix.push(label);
            rec(prefix, depth, limit, out);
            prefix.pop();
        }
    }
    let mut out = Vec::new();
    rec(&mut vec![0u32], depth, max_coalitions, &mut out);
    out
}

/// Recursively enumerates restricted growth strings over `labels`.
fn enumerate_rgs(
    labels: &mut Vec<u32>,
    depth: usize,
    network: &TrustNetwork,
    cfg: FormationConfig,
    best: &mut Option<(Partition, Unit)>,
    explored: &mut usize,
) {
    let n = labels.len();
    if depth == n {
        *explored += 1;
        let partition = partition_from_labels(network.len(), labels);
        if cfg.require_stability && !is_stable(network, &partition, cfg.compose) {
            return;
        }
        let score = partition.score(network, cfg.compose);
        match best {
            Some((_, best_score)) if *best_score >= score => {}
            _ => *best = Some((partition, score)),
        }
        return;
    }
    let max_label = labels[..depth].iter().copied().max().unwrap_or(0);
    let mut highest = max_label + 1;
    if let Some(limit) = cfg.max_coalitions {
        highest = highest.min(limit.saturating_sub(1) as u32);
    }
    for label in 0..=highest {
        labels[depth] = label;
        enumerate_rgs(labels, depth + 1, network, cfg, best, explored);
    }
    labels[depth] = 0;
}

fn partition_from_labels(n: u32, labels: &[u32]) -> Partition {
    let groups = labels.iter().copied().max().unwrap_or(0) + 1;
    let mut coalitions: Vec<Coalition> = vec![Coalition::new(); groups as usize];
    for (agent, &label) in labels.iter().enumerate() {
        coalitions[label as usize].insert(agent as AgentId);
    }
    coalitions.retain(|c| !c.is_empty());
    Partition::new(n, coalitions).expect("labels induce a partition")
}

/// The *individually oriented* baseline: every agent clusters with the
/// single agent it trusts most (ties to the lowest id); the coalitions
/// are the connected components of that "best friend" graph.
pub fn individually_oriented(network: &TrustNetwork, compose: TrustComposition) -> FormationResult {
    let n = network.len();
    if n == 0 {
        return FormationResult {
            partition: Partition::new(0, vec![]).expect("empty partition"),
            score: Unit::MAX,
            explored: 0,
        };
    }
    // Union-find over "agent — most trusted other".
    let mut parent: Vec<u32> = (0..n).collect();
    fn find(parent: &mut Vec<u32>, i: u32) -> u32 {
        if parent[i as usize] != i {
            let root = find(parent, parent[i as usize]);
            parent[i as usize] = root;
        }
        parent[i as usize]
    }
    for i in 0..n {
        let mut best: Option<(Unit, u32)> = None;
        for j in 0..n {
            if i == j {
                continue;
            }
            let t = network.get(i, j);
            match best {
                Some((bt, _)) if bt >= t => {}
                _ => best = Some((t, j)),
            }
        }
        if let Some((_, j)) = best {
            let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
            if ri != rj {
                parent[ri as usize] = rj;
            }
        }
    }
    let mut groups: std::collections::BTreeMap<u32, Coalition> = Default::default();
    for i in 0..n {
        let root = find(&mut parent, i);
        groups.entry(root).or_default().insert(i);
    }
    let partition =
        Partition::new(n, groups.into_values().collect()).expect("components partition");
    let score = partition.score(network, compose);
    FormationResult {
        partition,
        score,
        explored: n as usize,
    }
}

/// The *socially oriented* baseline: agents are placed in id order;
/// each joins the existing coalition where its *summative* trust is
/// highest, or opens a singleton when no coalition beats its
/// self-trust.
pub fn socially_oriented(network: &TrustNetwork, compose: TrustComposition) -> FormationResult {
    let n = network.len();
    let mut coalitions: Vec<Coalition> = Vec::new();
    for i in 0..n {
        let mut best: Option<(f64, usize)> = None;
        for (idx, c) in coalitions.iter().enumerate() {
            let sum: f64 = c.iter().map(|&j| network.get(i, j).get()).sum();
            match best {
                Some((bs, _)) if bs >= sum => {}
                _ => best = Some((sum, idx)),
            }
        }
        match best {
            Some((sum, idx)) if sum > network.get(i, i).get() => {
                coalitions[idx].insert(i);
            }
            _ => coalitions.push(Coalition::from([i])),
        }
    }
    let partition = if n == 0 {
        Partition::new(0, vec![]).expect("empty partition")
    } else {
        Partition::new(n, coalitions).expect("greedy placement partitions")
    };
    let score = partition.score(network, compose);
    FormationResult {
        partition,
        score,
        explored: n as usize,
    }
}

/// Seeded hill-climbing on the fuzzy objective: random single-agent
/// moves (to another coalition or to a fresh singleton), keeping
/// strict improvements, starting from the socially-oriented greedy
/// solution.
pub fn local_search(
    network: &TrustNetwork,
    cfg: FormationConfig,
    seed: u64,
    max_moves: usize,
) -> FormationResult {
    let n = network.len();
    let start = socially_oriented(network, cfg.compose);
    if n < 2 {
        return start;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut current = match cfg.max_coalitions {
        Some(limit) if limit > 0 && start.partition.len() > limit => {
            // Round-robin the agents into `limit` coalitions.
            let buckets = limit.min(n as usize);
            let mut coalitions: Vec<Coalition> = vec![Coalition::new(); buckets];
            for i in 0..n {
                coalitions[(i as usize) % buckets].insert(i);
            }
            Partition::new(n, coalitions).expect("round-robin partitions")
        }
        _ => start.partition,
    };
    let mut score = current.score(network, cfg.compose);
    let mut explored = 0usize;

    for _ in 0..max_moves {
        explored += 1;
        let agent: AgentId = rng.random_range(0..n);
        let from = current.coalition_of(agent).expect("agent placed");
        // Candidate targets: every other coalition, or a new singleton.
        let target = rng.random_range(0..=current.len());
        if target == from {
            continue;
        }
        let mut coalitions: Vec<Coalition> = current.coalitions().to_vec();
        coalitions[from].remove(&agent);
        if target == current.len() {
            coalitions.push(Coalition::from([agent]));
        } else {
            coalitions[target].insert(agent);
        }
        coalitions.retain(|c| !c.is_empty());
        let candidate = Partition::new(n, coalitions).expect("move preserves partition");
        if cfg
            .max_coalitions
            .is_some_and(|limit| candidate.len() > limit)
        {
            continue;
        }
        if cfg.require_stability && !is_stable(network, &candidate, cfg.compose) {
            continue;
        }
        let candidate_score = candidate.score(network, cfg.compose);
        if candidate_score > score {
            current = candidate;
            score = candidate_score;
        }
    }
    FormationResult {
        partition: current,
        score,
        explored,
    }
}

/// Best-response stabilisation: repeatedly resolve the first blocking
/// pair (Def. 4) by moving the defecting agent into the coalition it
/// prefers, until stable or out of moves.
///
/// Returns the final partition and whether it is stable. Best-response
/// dynamics may cycle, hence the bound.
pub fn stabilize(
    network: &TrustNetwork,
    partition: Partition,
    compose: TrustComposition,
    max_moves: usize,
) -> (Partition, bool) {
    let n = network.len();
    let mut current = partition;
    for _ in 0..max_moves {
        let Some(blocking) = find_blocking(network, &current, compose) else {
            return (current, true);
        };
        let mut coalitions: Vec<Coalition> = current.coalitions().to_vec();
        coalitions[blocking.source].remove(&blocking.agent);
        coalitions[blocking.target].insert(blocking.agent);
        coalitions.retain(|c| !c.is_empty());
        current = Partition::new(n, coalitions).expect("defection preserves partition");
    }
    let stable = is_stable(network, &current, compose);
    (current, stable)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_on_clustered_network_recovers_clusters() {
        let net = TrustNetwork::clustered(6, 2, 0.9, 0.1, 5);
        let cfg = FormationConfig {
            compose: TrustComposition::Min,
            require_stability: false,
            ..Default::default()
        };
        let best = exact_formation(&net, cfg).unwrap();
        // Agents with the same parity belong together.
        for c in best.partition.coalitions() {
            let parities: std::collections::BTreeSet<u32> = c.iter().map(|a| a % 2).collect();
            assert_eq!(parities.len(), 1, "mixed coalition {c:?}");
        }
        assert!(best.explored >= 203); // B(6) = 203 partitions
    }

    #[test]
    fn exact_with_stability_resolves_fig10() {
        let net = TrustNetwork::fig10();
        let cfg = FormationConfig {
            compose: TrustComposition::Average,
            require_stability: true,
            ..Default::default()
        };
        let best = exact_formation(&net, cfg).unwrap();
        assert!(is_stable(&net, &best.partition, TrustComposition::Average));
        // The Fig. 10 partition is blocked, so it cannot be chosen.
        let fig10 = Partition::new(
            7,
            vec![
                [0, 1, 2].into_iter().collect(),
                [3, 4, 5, 6].into_iter().collect(),
            ],
        )
        .unwrap();
        assert_ne!(best.partition, fig10);
    }

    #[test]
    fn singletons_are_an_exact_lower_bound() {
        // The all-singleton partition scores MAX (full self-trust), so
        // the unconstrained exact optimum is always MAX-scored.
        let net = TrustNetwork::random(5, 11);
        let cfg = FormationConfig {
            compose: TrustComposition::Min,
            require_stability: false,
            ..Default::default()
        };
        let best = exact_formation(&net, cfg).unwrap();
        assert_eq!(best.score, Unit::MAX);
    }

    #[test]
    fn individually_oriented_pairs_mutual_friends() {
        let u = |v: f64| Unit::clamped(v);
        let mut net = TrustNetwork::new(4, u(0.1));
        for i in 0..4 {
            net.set(i, i, Unit::MAX);
        }
        // 0↔1 and 2↔3 are mutual best friends.
        net.set(0, 1, u(0.9));
        net.set(1, 0, u(0.9));
        net.set(2, 3, u(0.9));
        net.set(3, 2, u(0.9));
        let result = individually_oriented(&net, TrustComposition::Min);
        assert_eq!(result.partition.len(), 2);
        assert_eq!(
            result.partition.coalition_of(0),
            result.partition.coalition_of(1)
        );
        assert_eq!(
            result.partition.coalition_of(2),
            result.partition.coalition_of(3)
        );
    }

    #[test]
    fn socially_oriented_prefers_summative_trust() {
        let u = |v: f64| Unit::clamped(v);
        let mut net = TrustNetwork::new(3, u(0.4));
        net.set(0, 0, u(0.5));
        net.set(1, 1, u(0.5));
        net.set(2, 2, u(0.5));
        // Agent 2 trusts both 0 and 1 at 0.4 each: summative 0.8 beats
        // its self-trust 0.5 once 0 and 1 are together.
        net.set(1, 0, u(0.6));
        let result = socially_oriented(&net, TrustComposition::Average);
        assert_eq!(result.partition.len(), 1);
    }

    #[test]
    fn local_search_never_worse_than_greedy_start() {
        for seed in 0..5 {
            let net = TrustNetwork::random(8, seed);
            let cfg = FormationConfig {
                compose: TrustComposition::Average,
                require_stability: false,
                ..Default::default()
            };
            let greedy = socially_oriented(&net, cfg.compose);
            let improved = local_search(&net, cfg, seed, 300);
            assert!(improved.score >= greedy.score, "seed {seed}");
        }
    }

    #[test]
    fn stabilize_fixes_fig10() {
        let net = TrustNetwork::fig10();
        let fig10 = Partition::new(
            7,
            vec![
                [0, 1, 2].into_iter().collect(),
                [3, 4, 5, 6].into_iter().collect(),
            ],
        )
        .unwrap();
        let (stable, ok) = stabilize(&net, fig10, TrustComposition::Average, 50);
        assert!(ok);
        // x4 defected into the first coalition.
        let c = stable.coalition_of(3).unwrap();
        assert!(stable.coalitions()[c].contains(&0));
    }

    #[test]
    fn max_coalitions_bounds_the_partition() {
        let net = TrustNetwork::clustered(6, 2, 0.9, 0.1, 5);
        let cfg = FormationConfig {
            compose: TrustComposition::Average,
            require_stability: false,
            max_coalitions: Some(2),
        };
        let best = exact_formation(&net, cfg).unwrap();
        assert!(best.partition.len() <= 2);
        // With the budget, the clustered structure is recovered (the
        // two parity classes), instead of the all-singletons optimum.
        for c in best.partition.coalitions() {
            let parities: std::collections::BTreeSet<u32> = c.iter().map(|a| a % 2).collect();
            assert_eq!(parities.len(), 1, "mixed coalition {c:?}");
        }
        let ls = local_search(&net, cfg, 1, 500);
        assert!(ls.partition.len() <= 2);
        assert!(ls.score <= best.score);
    }

    #[test]
    fn parallel_formation_reproduces_the_sequential_optimum() {
        for seed in 0..4 {
            let net = TrustNetwork::random(7, seed);
            for max_coalitions in [None, Some(3)] {
                let cfg = FormationConfig {
                    compose: TrustComposition::Average,
                    require_stability: false,
                    max_coalitions,
                };
                let sequential = exact_formation(&net, cfg).unwrap();
                for threads in [1, 2, 5] {
                    let parallel =
                        exact_formation_with(&net, cfg, Parallelism::Threads(threads)).unwrap();
                    assert_eq!(parallel.partition, sequential.partition, "seed {seed}");
                    assert_eq!(parallel.score, sequential.score, "seed {seed}");
                    assert_eq!(parallel.explored, sequential.explored, "seed {seed}");
                }
            }
        }
    }

    #[test]
    fn exact_matches_brute_force_score_small() {
        // Cross-check the RGS enumeration against scores of the two
        // canonical partitions on a 3-agent network.
        let net = TrustNetwork::random(3, 2);
        let cfg = FormationConfig {
            compose: TrustComposition::Average,
            require_stability: false,
            ..Default::default()
        };
        let best = exact_formation(&net, cfg).unwrap();
        assert_eq!(best.explored, 5); // B(3) = 5
        for p in [Partition::singletons(3), Partition::grand(3)] {
            assert!(best.score >= p.score(&net, cfg.compose));
        }
    }
}
