//! Coalition-formation algorithms: exact, greedy baselines and local
//! search.
//!
//! The exact solver maximises the Sec. 6.1 fuzzy objective (the
//! minimum coalition trustworthiness) over *all* set partitions via a
//! bitmask subset DP — `O(3ⁿ)` transitions instead of the Bell number
//! `B(n)` of whole partitions; the retired enumeration survives as
//! [`exact_formation_enumerated`], the `bell_vs_dp` benchmark
//! baseline — optionally restricted to stable ones. The greedy
//! baselines are the
//! two mechanisms the paper contrasts (after Breban & Vassileva):
//! *individually oriented* — each agent clusters with the agent it
//! trusts most — and *socially oriented* — each agent joins the
//! coalition holding its highest summative trust. Local search and
//! best-response stabilisation scale to networks the exact solver
//! cannot touch; the `coalition_ablation` bench (experiment E12)
//! compares them all.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use softsoa_core::solve::Parallelism;
use softsoa_semiring::Unit;
use softsoa_telemetry::Telemetry;

use crate::{
    find_blocking, is_stable, AgentId, Coalition, Partition, TrustComposition, TrustNetwork,
};

/// Configuration of a coalition-formation run.
#[derive(Debug, Clone, Copy, Default)]
pub struct FormationConfig {
    /// The trust-composition operator `◦`.
    pub compose: TrustComposition,
    /// Whether only stable partitions (Def. 4) are feasible.
    pub require_stability: bool,
    /// An upper bound on the number of coalitions. The paper motivates
    /// coalitions by *consumable shared resources* ("the same resource
    /// cannot be assigned to more than a user at a given time"): with
    /// one resource pool per coalition, only so many coalitions can be
    /// provisioned. Unbounded (`None`) formation under a min-trust
    /// objective degenerates to all-singletons (full self-trust).
    pub max_coalitions: Option<usize>,
}

/// The outcome of a formation algorithm.
#[derive(Debug, Clone)]
pub struct FormationResult {
    /// The chosen partition.
    pub partition: Partition,
    /// Its fuzzy objective: the minimum coalition trustworthiness.
    pub score: Unit,
    /// Work counter: partitions examined (exact), or moves tried
    /// (local search), or agents placed (greedy).
    pub explored: usize,
}

/// Exhaustively finds a best-scoring set partition; `None` when
/// stability is required and no stable partition exists.
///
/// Coalitions are `u32` bitmasks. Every subset's trustworthiness
/// `T(C)` is memoized once (`O(2ⁿ·n²)`), then a subset DP assembles
/// the optimal partition of each subset from the optimal partitions
/// of its sub-subsets — `O(3ⁿ)` transitions in total, far below the
/// Bell number `B(n)` of whole partitions, which raises the practical
/// ceiling from 13 to [`MAX_EXACT_AGENTS`]` = 18` agents. The retired
/// enumeration is kept as [`exact_formation_enumerated`].
///
/// # Panics
///
/// Panics if `network.len() > `[`MAX_EXACT_AGENTS`]; also if
/// stability is required, the unconstrained optimum turns out
/// unstable, *and* `network.len() > `[`MAX_ENUMERATED_AGENTS`] — the
/// blocking-pair filter does not decompose over subsets, so those
/// runs fall back to filtered enumeration.
///
/// # Examples
///
/// ```
/// use softsoa_coalition::{exact_formation, is_stable, FormationConfig,
///     TrustComposition, TrustNetwork};
///
/// let net = TrustNetwork::fig10();
/// let cfg = FormationConfig {
///     compose: TrustComposition::Average,
///     require_stability: true,
///     ..Default::default()
/// };
/// let best = exact_formation(&net, cfg).unwrap();
/// assert!(is_stable(&net, &best.partition, TrustComposition::Average));
/// // The Fig. 10 partition {x1..x3} | {x4..x7} is blocked, so the
/// // optimum is a different (here: better-scoring) partition.
/// assert!(best.score.get() >= 0.8);
/// ```
pub fn exact_formation(network: &TrustNetwork, cfg: FormationConfig) -> Option<FormationResult> {
    exact_formation_with(network, cfg, Parallelism::Sequential)
}

/// [`exact_formation`] with an explicit parallelism level: the
/// subset-trust memo table is filled in contiguous mask ranges across
/// worker threads (every entry is independent, so any split yields an
/// identical table), and the DP itself is deterministic — the winning
/// partition, score and work counter are identical at every thread
/// count.
///
/// # Panics
///
/// As for [`exact_formation`].
pub fn exact_formation_with(
    network: &TrustNetwork,
    cfg: FormationConfig,
    parallelism: Parallelism,
) -> Option<FormationResult> {
    exact_formation_instrumented(network, cfg, parallelism, &Telemetry::disabled())
}

/// The largest network [`exact_formation`] accepts. The subset DP
/// costs `O(3ⁿ)` time over an `O(2ⁿ)` memo table: at `n = 18` that is
/// ≈193 million transitions over 2 MiB, the practical ceiling. Check
/// against this before calling to avoid the documented panic.
pub const MAX_EXACT_AGENTS: u32 = 18;

/// The largest network [`exact_formation_enumerated`] accepts — and
/// the ceiling for [`exact_formation`] runs that must fall back to it
/// (stability required and the unconstrained optimum unstable). Bell
/// numbers grow super-exponentially; `B(13) ≈ 27.6` million
/// partitions is the practical limit.
pub const MAX_ENUMERATED_AGENTS: u32 = 13;

/// [`exact_formation_with`] reporting through `telemetry`: the DP
/// transitions examined (`formation.explored`), the per-chunk memo
/// balance (`formation.chunk_explored` observations), the thread
/// gauge and the winning partition's coalition count.
///
/// # Panics
///
/// As for [`exact_formation`].
pub fn exact_formation_instrumented(
    network: &TrustNetwork,
    cfg: FormationConfig,
    parallelism: Parallelism,
    telemetry: &Telemetry,
) -> Option<FormationResult> {
    let n = network.len();
    assert!(
        n <= MAX_EXACT_AGENTS,
        "exact formation is limited to {MAX_EXACT_AGENTS} agents"
    );
    if n == 0 {
        return Some(FormationResult {
            partition: Partition::new(0, vec![]).expect("empty partition"),
            score: Unit::MAX,
            explored: 1,
        });
    }

    let full: u32 = (1u32 << n) - 1;
    let size = full as usize + 1;
    let threads = parallelism.thread_count(full as usize);
    if telemetry.enabled() {
        telemetry.incr("formation.runs");
        telemetry.gauge("formation.threads", threads as i64);
        let chunk = size.div_ceil(threads.max(1));
        let mut start = 0usize;
        while start < size {
            let len = chunk.min(size - start);
            telemetry.observe("formation.chunk_explored", len as u64);
            start += len;
        }
    }
    let val = subset_trust_table(network, cfg.compose, threads);

    // A budget of `k ≥ n` coalitions never binds; `Some(0)` behaves as
    // a single mandatory coalition, as in the enumerated baseline.
    let budget = cfg
        .max_coalitions
        .map(|k| k.max(1))
        .filter(|&k| k < n as usize);
    let dp = match budget {
        None => dp_unbounded(n, &val, full),
        Some(k) => dp_bounded(n, &val, full, k),
    };
    let mut explored = dp.explored;
    let mut outcome = Some(dp);

    if cfg.require_stability {
        let already_stable = outcome
            .as_ref()
            .is_some_and(|r| is_stable(network, &r.partition, cfg.compose));
        if !already_stable {
            // Stability (Def. 4) is a property of the whole partition —
            // a coalition is blocked by agents *outside* it — so it
            // does not decompose over subsets. When the unconstrained
            // optimum fails the check, fall back to the filtered
            // Bell-number enumeration.
            assert!(
                n <= MAX_ENUMERATED_AGENTS,
                "stable formation is limited to {MAX_ENUMERATED_AGENTS} agents \
                 when the unconstrained optimum is unstable"
            );
            let (best, enumerated) = enumerate_partitions(network, cfg, parallelism);
            explored += enumerated;
            outcome = best.map(|(partition, score)| FormationResult {
                partition,
                score,
                explored: 0,
            });
        }
    }

    telemetry.count("formation.explored", explored as u64);
    let result = outcome.map(|r| FormationResult { explored, ..r });
    if let Some(result) = &result {
        telemetry.gauge("formation.coalitions", result.partition.len() as i64);
    }
    result
}

/// The restricted-growth-string Bell-number search that backed
/// [`exact_formation`] before the subset DP. Retained as the
/// reference baseline for equivalence tests and the `bell_vs_dp`
/// benchmark, and as the fallback engine for stable formation (it
/// filters partitions *during* the search, which the DP cannot).
///
/// Prefixes of a fixed depth are distributed contiguously over worker
/// threads; local optima merge in prefix order with strict
/// improvement only, so the result is identical at every thread
/// count.
///
/// # Panics
///
/// Panics if `network.len() > `[`MAX_ENUMERATED_AGENTS`].
pub fn exact_formation_enumerated(
    network: &TrustNetwork,
    cfg: FormationConfig,
    parallelism: Parallelism,
) -> Option<FormationResult> {
    let n = network.len();
    assert!(
        n <= MAX_ENUMERATED_AGENTS,
        "enumerated formation is limited to {MAX_ENUMERATED_AGENTS} agents"
    );
    if n == 0 {
        return Some(FormationResult {
            partition: Partition::new(0, vec![]).expect("empty partition"),
            score: Unit::MAX,
            explored: 1,
        });
    }
    let (best, explored) = enumerate_partitions(network, cfg, parallelism);
    best.map(|(partition, score)| FormationResult {
        partition,
        score,
        explored,
    })
}

/// The parallel RGS enumeration shared by
/// [`exact_formation_enumerated`] and the stability fallback.
fn enumerate_partitions(
    network: &TrustNetwork,
    cfg: FormationConfig,
    parallelism: Parallelism,
) -> (Option<(Partition, Unit)>, usize) {
    let n = network.len();
    // Deep enough that every worker gets several independent subtrees,
    // shallow enough that prefix enumeration stays negligible.
    let depth = (n as usize).min(4);
    let prefixes = rgs_prefixes(depth, cfg.max_coalitions);
    let threads = parallelism.thread_count(prefixes.len());

    let run_chunk = |chunk: &[Vec<u32>]| -> (Option<(Partition, Unit)>, usize) {
        let mut best: Option<(Partition, Unit)> = None;
        let mut explored = 0usize;
        for prefix in chunk {
            let mut labels = vec![0u32; n as usize];
            labels[..depth].copy_from_slice(prefix);
            enumerate_rgs(&mut labels, depth, network, cfg, &mut best, &mut explored);
        }
        (best, explored)
    };
    let parts: Vec<(Option<(Partition, Unit)>, usize)> = if threads <= 1 {
        vec![run_chunk(&prefixes)]
    } else {
        std::thread::scope(|scope| {
            let run_chunk = &run_chunk;
            let chunk_size = prefixes.len().div_ceil(threads);
            let handles: Vec<_> = prefixes
                .chunks(chunk_size)
                .map(|chunk| scope.spawn(move || run_chunk(chunk)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("formation worker panicked"))
                .collect()
        })
    };

    let mut best: Option<(Partition, Unit)> = None;
    let mut explored = 0usize;
    for (local, count) in parts {
        explored += count;
        if let Some((partition, score)) = local {
            match &best {
                Some((_, best_score)) if *best_score >= score => {}
                _ => best = Some((partition, score)),
            }
        }
    }
    (best, explored)
}

/// The members of a bitmask coalition, ascending.
fn mask_members(mask: u32) -> Vec<AgentId> {
    let mut members = Vec::with_capacity(mask.count_ones() as usize);
    let mut rest = mask;
    while rest != 0 {
        members.push(rest.trailing_zeros());
        rest &= rest - 1;
    }
    members
}

fn mask_coalition(mask: u32) -> Coalition {
    mask_members(mask).into_iter().collect()
}

/// `T(C)` for a bitmask coalition: the same ascending ordered-pair
/// sweep as [`coalition_trust`] over a [`Coalition`], so scores —
/// including the float-summation-order-sensitive `Average` — are
/// bit-identical to `Partition::score`.
fn mask_trust(network: &TrustNetwork, mask: u32, compose: TrustComposition) -> Unit {
    let members = mask_members(mask);
    compose.compose(
        members
            .iter()
            .flat_map(|&i| members.iter().map(move |&j| (i, j)))
            .map(|(i, j)| network.get(i, j)),
    )
}

/// Memoizes `T(C)` for every non-empty coalition bitmask. Entries are
/// independent, so the table is filled in contiguous ranges across
/// worker threads with an identical result at every thread count.
fn subset_trust_table(
    network: &TrustNetwork,
    compose: TrustComposition,
    threads: usize,
) -> Vec<Unit> {
    let size = 1usize << network.len();
    let mut val = vec![Unit::MIN; size];
    let fill = |start: usize, slice: &mut [Unit]| {
        for (offset, slot) in slice.iter_mut().enumerate() {
            let mask = (start + offset) as u32;
            if mask != 0 {
                *slot = mask_trust(network, mask, compose);
            }
        }
    };
    if threads <= 1 {
        fill(0, &mut val);
    } else {
        let chunk = size.div_ceil(threads);
        std::thread::scope(|scope| {
            for (index, slice) in val.chunks_mut(chunk).enumerate() {
                let fill = &fill;
                scope.spawn(move || fill(index * chunk, slice));
            }
        });
    }
    val
}

/// The unconstrained subset DP. `best[S]` is the optimal score over
/// partitions of the subset `S`, assembled by choosing the block that
/// contains `S`'s lowest agent — every partition of `S` is generated
/// exactly once. Submasks are scanned in increasing order with ties
/// keeping the first candidate, which fixes the reconstruction
/// deterministically. Work is `Σ_S 2^(|S|−1) = (3ⁿ − 1)/2`
/// transitions.
fn dp_unbounded(n: u32, val: &[Unit], full: u32) -> FormationResult {
    let mut best = vec![Unit::MAX; val.len()];
    let mut choice = vec![0u32; val.len()];
    let mut explored = 0usize;
    for mask in 1..=full {
        let low = mask & mask.wrapping_neg();
        let rest = mask ^ low;
        let mut local: Option<(Unit, u32)> = None;
        let mut sub = 0u32;
        loop {
            let block = sub | low;
            // The objective is the min over blocks: the block's own
            // trust meets the best score of the remainder.
            let cand = val[block as usize].min(best[(mask ^ block) as usize]);
            explored += 1;
            match local {
                Some((score, _)) if score >= cand => {}
                _ => local = Some((cand, block)),
            }
            if sub == rest {
                break;
            }
            sub = sub.wrapping_sub(rest) & rest;
        }
        let (score, block) = local.expect("the subset itself is always a candidate block");
        best[mask as usize] = score;
        choice[mask as usize] = block;
    }

    let mut coalitions = Vec::new();
    let mut mask = full;
    while mask != 0 {
        let block = choice[mask as usize];
        coalitions.push(mask_coalition(block));
        mask ^= block;
    }
    FormationResult {
        partition: Partition::new(n, coalitions).expect("blocks partition the agents"),
        score: best[full as usize],
        explored,
    }
}

/// The budgeted subset DP: layer `j` holds the best score over
/// partitions of each subset into *at most* `j` coalitions (`None`
/// while infeasible). Scores roll between two rows; only the chosen
/// blocks are kept per layer, enough to reconstruct the winner.
fn dp_bounded(n: u32, val: &[Unit], full: u32, budget: usize) -> FormationResult {
    let size = val.len();
    let mut prev: Vec<Option<Unit>> = vec![None; size];
    let mut current: Vec<Option<Unit>> = vec![None; size];
    prev[0] = Some(Unit::MAX);
    let mut choices: Vec<Vec<u32>> = Vec::with_capacity(budget);
    let mut explored = 0usize;
    for _ in 1..=budget {
        current[0] = Some(Unit::MAX);
        let mut choice = vec![0u32; size];
        for mask in 1..=full {
            let low = mask & mask.wrapping_neg();
            let rest = mask ^ low;
            let mut local: Option<(Unit, u32)> = None;
            let mut sub = 0u32;
            loop {
                let block = sub | low;
                if let Some(tail) = prev[(mask ^ block) as usize] {
                    let cand = val[block as usize].min(tail);
                    explored += 1;
                    match local {
                        Some((score, _)) if score >= cand => {}
                        _ => local = Some((cand, block)),
                    }
                }
                if sub == rest {
                    break;
                }
                sub = sub.wrapping_sub(rest) & rest;
            }
            match local {
                Some((score, block)) => {
                    current[mask as usize] = Some(score);
                    choice[mask as usize] = block;
                }
                None => current[mask as usize] = None,
            }
        }
        choices.push(choice);
        std::mem::swap(&mut prev, &mut current);
    }

    let score = prev[full as usize].expect("one coalition is always feasible");
    let mut coalitions = Vec::new();
    let mut mask = full;
    let mut layer = budget;
    while mask != 0 {
        let block = choices[layer - 1][mask as usize];
        coalitions.push(mask_coalition(block));
        mask ^= block;
        layer -= 1;
    }
    FormationResult {
        partition: Partition::new(n, coalitions).expect("blocks partition the agents"),
        score,
        explored,
    }
}

/// Enumerates every valid restricted-growth-string prefix of the given
/// length, in the order the sequential DFS would visit them.
fn rgs_prefixes(depth: usize, max_coalitions: Option<usize>) -> Vec<Vec<u32>> {
    fn rec(prefix: &mut Vec<u32>, depth: usize, limit: Option<usize>, out: &mut Vec<Vec<u32>>) {
        if prefix.len() == depth {
            out.push(prefix.clone());
            return;
        }
        let mut highest = prefix.iter().copied().max().unwrap_or(0) + 1;
        if let Some(limit) = limit {
            highest = highest.min(limit.saturating_sub(1) as u32);
        }
        for label in 0..=highest {
            prefix.push(label);
            rec(prefix, depth, limit, out);
            prefix.pop();
        }
    }
    let mut out = Vec::new();
    rec(&mut vec![0u32], depth, max_coalitions, &mut out);
    out
}

/// Recursively enumerates restricted growth strings over `labels`.
fn enumerate_rgs(
    labels: &mut Vec<u32>,
    depth: usize,
    network: &TrustNetwork,
    cfg: FormationConfig,
    best: &mut Option<(Partition, Unit)>,
    explored: &mut usize,
) {
    let n = labels.len();
    if depth == n {
        *explored += 1;
        let partition = partition_from_labels(network.len(), labels);
        if cfg.require_stability && !is_stable(network, &partition, cfg.compose) {
            return;
        }
        let score = partition.score(network, cfg.compose);
        match best {
            Some((_, best_score)) if *best_score >= score => {}
            _ => *best = Some((partition, score)),
        }
        return;
    }
    let max_label = labels[..depth].iter().copied().max().unwrap_or(0);
    let mut highest = max_label + 1;
    if let Some(limit) = cfg.max_coalitions {
        highest = highest.min(limit.saturating_sub(1) as u32);
    }
    for label in 0..=highest {
        labels[depth] = label;
        enumerate_rgs(labels, depth + 1, network, cfg, best, explored);
    }
    labels[depth] = 0;
}

fn partition_from_labels(n: u32, labels: &[u32]) -> Partition {
    let groups = labels.iter().copied().max().unwrap_or(0) + 1;
    let mut coalitions: Vec<Coalition> = vec![Coalition::new(); groups as usize];
    for (agent, &label) in labels.iter().enumerate() {
        coalitions[label as usize].insert(agent as AgentId);
    }
    coalitions.retain(|c| !c.is_empty());
    Partition::new(n, coalitions).expect("labels induce a partition")
}

/// The *individually oriented* baseline: every agent clusters with the
/// single agent it trusts most (ties to the lowest id); the coalitions
/// are the connected components of that "best friend" graph.
pub fn individually_oriented(network: &TrustNetwork, compose: TrustComposition) -> FormationResult {
    let n = network.len();
    if n == 0 {
        return FormationResult {
            partition: Partition::new(0, vec![]).expect("empty partition"),
            score: Unit::MAX,
            explored: 0,
        };
    }
    // Union-find over "agent — most trusted other".
    let mut parent: Vec<u32> = (0..n).collect();
    fn find(parent: &mut Vec<u32>, i: u32) -> u32 {
        if parent[i as usize] != i {
            let root = find(parent, parent[i as usize]);
            parent[i as usize] = root;
        }
        parent[i as usize]
    }
    for i in 0..n {
        let mut best: Option<(Unit, u32)> = None;
        for j in 0..n {
            if i == j {
                continue;
            }
            let t = network.get(i, j);
            match best {
                Some((bt, _)) if bt >= t => {}
                _ => best = Some((t, j)),
            }
        }
        if let Some((_, j)) = best {
            let (ri, rj) = (find(&mut parent, i), find(&mut parent, j));
            if ri != rj {
                parent[ri as usize] = rj;
            }
        }
    }
    let mut groups: std::collections::BTreeMap<u32, Coalition> = Default::default();
    for i in 0..n {
        let root = find(&mut parent, i);
        groups.entry(root).or_default().insert(i);
    }
    let partition =
        Partition::new(n, groups.into_values().collect()).expect("components partition");
    let score = partition.score(network, compose);
    FormationResult {
        partition,
        score,
        explored: n as usize,
    }
}

/// The *socially oriented* baseline: agents are placed in id order;
/// each joins the existing coalition where its *summative* trust is
/// highest, or opens a singleton when no coalition beats its
/// self-trust.
pub fn socially_oriented(network: &TrustNetwork, compose: TrustComposition) -> FormationResult {
    let n = network.len();
    let mut coalitions: Vec<Coalition> = Vec::new();
    for i in 0..n {
        let mut best: Option<(f64, usize)> = None;
        for (idx, c) in coalitions.iter().enumerate() {
            let sum: f64 = c.iter().map(|&j| network.get(i, j).get()).sum();
            match best {
                Some((bs, _)) if bs >= sum => {}
                _ => best = Some((sum, idx)),
            }
        }
        match best {
            Some((sum, idx)) if sum > network.get(i, i).get() => {
                coalitions[idx].insert(i);
            }
            _ => coalitions.push(Coalition::from([i])),
        }
    }
    let partition = if n == 0 {
        Partition::new(0, vec![]).expect("empty partition")
    } else {
        Partition::new(n, coalitions).expect("greedy placement partitions")
    };
    let score = partition.score(network, compose);
    FormationResult {
        partition,
        score,
        explored: n as usize,
    }
}

/// Seeded hill-climbing on the fuzzy objective: random single-agent
/// moves (to another coalition or to a fresh singleton), keeping
/// strict improvements, starting from the socially-oriented greedy
/// solution.
pub fn local_search(
    network: &TrustNetwork,
    cfg: FormationConfig,
    seed: u64,
    max_moves: usize,
) -> FormationResult {
    let n = network.len();
    let start = socially_oriented(network, cfg.compose);
    if n < 2 {
        return start;
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut current = match cfg.max_coalitions {
        Some(limit) if limit > 0 && start.partition.len() > limit => {
            // Round-robin the agents into `limit` coalitions.
            let buckets = limit.min(n as usize);
            let mut coalitions: Vec<Coalition> = vec![Coalition::new(); buckets];
            for i in 0..n {
                coalitions[(i as usize) % buckets].insert(i);
            }
            Partition::new(n, coalitions).expect("round-robin partitions")
        }
        _ => start.partition,
    };
    let mut score = current.score(network, cfg.compose);
    let mut explored = 0usize;

    for _ in 0..max_moves {
        explored += 1;
        let agent: AgentId = rng.random_range(0..n);
        let from = current.coalition_of(agent).expect("agent placed");
        // Candidate targets: every other coalition, or a new singleton.
        let target = rng.random_range(0..=current.len());
        if target == from {
            continue;
        }
        let mut coalitions: Vec<Coalition> = current.coalitions().to_vec();
        coalitions[from].remove(&agent);
        if target == current.len() {
            coalitions.push(Coalition::from([agent]));
        } else {
            coalitions[target].insert(agent);
        }
        coalitions.retain(|c| !c.is_empty());
        let candidate = Partition::new(n, coalitions).expect("move preserves partition");
        if cfg
            .max_coalitions
            .is_some_and(|limit| candidate.len() > limit)
        {
            continue;
        }
        if cfg.require_stability && !is_stable(network, &candidate, cfg.compose) {
            continue;
        }
        let candidate_score = candidate.score(network, cfg.compose);
        if candidate_score > score {
            current = candidate;
            score = candidate_score;
        }
    }
    FormationResult {
        partition: current,
        score,
        explored,
    }
}

/// Best-response stabilisation: repeatedly resolve the first blocking
/// pair (Def. 4) by moving the defecting agent into the coalition it
/// prefers, until stable or out of moves.
///
/// Returns the final partition and whether it is stable. Best-response
/// dynamics may cycle, hence the bound.
pub fn stabilize(
    network: &TrustNetwork,
    partition: Partition,
    compose: TrustComposition,
    max_moves: usize,
) -> (Partition, bool) {
    let n = network.len();
    let mut current = partition;
    for _ in 0..max_moves {
        let Some(blocking) = find_blocking(network, &current, compose) else {
            return (current, true);
        };
        let mut coalitions: Vec<Coalition> = current.coalitions().to_vec();
        coalitions[blocking.source].remove(&blocking.agent);
        coalitions[blocking.target].insert(blocking.agent);
        coalitions.retain(|c| !c.is_empty());
        current = Partition::new(n, coalitions).expect("defection preserves partition");
    }
    let stable = is_stable(network, &current, compose);
    (current, stable)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_on_clustered_network_recovers_clusters() {
        let net = TrustNetwork::clustered(6, 2, 0.9, 0.1, 5);
        let cfg = FormationConfig {
            compose: TrustComposition::Min,
            require_stability: false,
            ..Default::default()
        };
        let best = exact_formation(&net, cfg).unwrap();
        // Agents with the same parity belong together.
        for c in best.partition.coalitions() {
            let parities: std::collections::BTreeSet<u32> = c.iter().map(|a| a % 2).collect();
            assert_eq!(parities.len(), 1, "mixed coalition {c:?}");
        }
        // (3⁶ − 1)/2 = 364 DP transitions — still above the B(6) = 203
        // partitions the enumeration used to visit.
        assert!(best.explored >= 203);
    }

    #[test]
    fn exact_with_stability_resolves_fig10() {
        let net = TrustNetwork::fig10();
        let cfg = FormationConfig {
            compose: TrustComposition::Average,
            require_stability: true,
            ..Default::default()
        };
        let best = exact_formation(&net, cfg).unwrap();
        assert!(is_stable(&net, &best.partition, TrustComposition::Average));
        // The Fig. 10 partition is blocked, so it cannot be chosen.
        let fig10 = Partition::new(
            7,
            vec![
                [0, 1, 2].into_iter().collect(),
                [3, 4, 5, 6].into_iter().collect(),
            ],
        )
        .unwrap();
        assert_ne!(best.partition, fig10);
    }

    #[test]
    fn singletons_are_an_exact_lower_bound() {
        // The all-singleton partition scores MAX (full self-trust), so
        // the unconstrained exact optimum is always MAX-scored.
        let net = TrustNetwork::random(5, 11);
        let cfg = FormationConfig {
            compose: TrustComposition::Min,
            require_stability: false,
            ..Default::default()
        };
        let best = exact_formation(&net, cfg).unwrap();
        assert_eq!(best.score, Unit::MAX);
    }

    #[test]
    fn individually_oriented_pairs_mutual_friends() {
        let u = |v: f64| Unit::clamped(v);
        let mut net = TrustNetwork::new(4, u(0.1));
        for i in 0..4 {
            net.set(i, i, Unit::MAX);
        }
        // 0↔1 and 2↔3 are mutual best friends.
        net.set(0, 1, u(0.9));
        net.set(1, 0, u(0.9));
        net.set(2, 3, u(0.9));
        net.set(3, 2, u(0.9));
        let result = individually_oriented(&net, TrustComposition::Min);
        assert_eq!(result.partition.len(), 2);
        assert_eq!(
            result.partition.coalition_of(0),
            result.partition.coalition_of(1)
        );
        assert_eq!(
            result.partition.coalition_of(2),
            result.partition.coalition_of(3)
        );
    }

    #[test]
    fn socially_oriented_prefers_summative_trust() {
        let u = |v: f64| Unit::clamped(v);
        let mut net = TrustNetwork::new(3, u(0.4));
        net.set(0, 0, u(0.5));
        net.set(1, 1, u(0.5));
        net.set(2, 2, u(0.5));
        // Agent 2 trusts both 0 and 1 at 0.4 each: summative 0.8 beats
        // its self-trust 0.5 once 0 and 1 are together.
        net.set(1, 0, u(0.6));
        let result = socially_oriented(&net, TrustComposition::Average);
        assert_eq!(result.partition.len(), 1);
    }

    #[test]
    fn local_search_never_worse_than_greedy_start() {
        for seed in 0..5 {
            let net = TrustNetwork::random(8, seed);
            let cfg = FormationConfig {
                compose: TrustComposition::Average,
                require_stability: false,
                ..Default::default()
            };
            let greedy = socially_oriented(&net, cfg.compose);
            let improved = local_search(&net, cfg, seed, 300);
            assert!(improved.score >= greedy.score, "seed {seed}");
        }
    }

    #[test]
    fn stabilize_fixes_fig10() {
        let net = TrustNetwork::fig10();
        let fig10 = Partition::new(
            7,
            vec![
                [0, 1, 2].into_iter().collect(),
                [3, 4, 5, 6].into_iter().collect(),
            ],
        )
        .unwrap();
        let (stable, ok) = stabilize(&net, fig10, TrustComposition::Average, 50);
        assert!(ok);
        // x4 defected into the first coalition.
        let c = stable.coalition_of(3).unwrap();
        assert!(stable.coalitions()[c].contains(&0));
    }

    #[test]
    fn max_coalitions_bounds_the_partition() {
        let net = TrustNetwork::clustered(6, 2, 0.9, 0.1, 5);
        let cfg = FormationConfig {
            compose: TrustComposition::Average,
            require_stability: false,
            max_coalitions: Some(2),
        };
        let best = exact_formation(&net, cfg).unwrap();
        assert!(best.partition.len() <= 2);
        // With the budget, the clustered structure is recovered (the
        // two parity classes), instead of the all-singletons optimum.
        for c in best.partition.coalitions() {
            let parities: std::collections::BTreeSet<u32> = c.iter().map(|a| a % 2).collect();
            assert_eq!(parities.len(), 1, "mixed coalition {c:?}");
        }
        let ls = local_search(&net, cfg, 1, 500);
        assert!(ls.partition.len() <= 2);
        assert!(ls.score <= best.score);
    }

    #[test]
    fn parallel_formation_reproduces_the_sequential_optimum() {
        for seed in 0..4 {
            let net = TrustNetwork::random(7, seed);
            for max_coalitions in [None, Some(3)] {
                let cfg = FormationConfig {
                    compose: TrustComposition::Average,
                    require_stability: false,
                    max_coalitions,
                };
                let sequential = exact_formation(&net, cfg).unwrap();
                for threads in [1, 2, 5] {
                    let parallel =
                        exact_formation_with(&net, cfg, Parallelism::Threads(threads)).unwrap();
                    assert_eq!(parallel.partition, sequential.partition, "seed {seed}");
                    assert_eq!(parallel.score, sequential.score, "seed {seed}");
                    assert_eq!(parallel.explored, sequential.explored, "seed {seed}");
                }
            }
        }
    }

    #[test]
    fn exact_matches_brute_force_score_small() {
        // Cross-check the subset DP against the enumerated baseline
        // and the two canonical partitions on a 3-agent network.
        let net = TrustNetwork::random(3, 2);
        let cfg = FormationConfig {
            compose: TrustComposition::Average,
            require_stability: false,
            ..Default::default()
        };
        let best = exact_formation(&net, cfg).unwrap();
        assert_eq!(best.explored, 13); // (3³ − 1)/2 DP transitions
        for p in [Partition::singletons(3), Partition::grand(3)] {
            assert!(best.score >= p.score(&net, cfg.compose));
        }
        let baseline = exact_formation_enumerated(&net, cfg, Parallelism::Sequential).unwrap();
        assert_eq!(baseline.explored, 5); // B(3) = 5 partitions
        assert_eq!(best.score, baseline.score);
    }

    #[test]
    fn dp_scales_past_the_bell_ceiling() {
        // n = 14 is beyond the old enumeration limit (B(14) ≈ 1.9·10⁸)
        // but cheap for the DP: (3¹⁴ − 1)/2 ≈ 2.4M transitions.
        let net = TrustNetwork::random(14, 3);
        let cfg = FormationConfig {
            compose: TrustComposition::Min,
            require_stability: false,
            ..Default::default()
        };
        let best = exact_formation(&net, cfg).unwrap();
        // Full self-trust makes all-singletons the MAX-scored optimum.
        assert_eq!(best.score, Unit::MAX);
        assert_eq!(best.explored, (3usize.pow(14) - 1) / 2);
    }

    #[test]
    #[ignore = "release-mode scale check: 193M DP transitions at n = 18"]
    fn dp_accepts_eighteen_agents() {
        let net = TrustNetwork::clustered(18, 3, 0.9, 0.1, 7);
        let cfg = FormationConfig {
            compose: TrustComposition::Average,
            require_stability: false,
            max_coalitions: Some(3),
        };
        let best = exact_formation(&net, cfg).unwrap();
        assert!(best.partition.len() <= 3);
        for c in best.partition.coalitions() {
            let residues: std::collections::BTreeSet<u32> = c.iter().map(|a| a % 3).collect();
            assert_eq!(residues.len(), 1, "mixed coalition {c:?}");
        }
    }

    #[test]
    fn dp_matches_enumeration_scores_on_random_networks() {
        for seed in 0..8 {
            let net = TrustNetwork::random(6, seed);
            for compose in [
                TrustComposition::Min,
                TrustComposition::Max,
                TrustComposition::Average,
            ] {
                for max_coalitions in [None, Some(2), Some(3)] {
                    let cfg = FormationConfig {
                        compose,
                        require_stability: false,
                        max_coalitions,
                    };
                    let dp = exact_formation(&net, cfg).unwrap();
                    let baseline =
                        exact_formation_enumerated(&net, cfg, Parallelism::Sequential).unwrap();
                    assert_eq!(dp.score, baseline.score, "seed {seed} {compose:?}");
                    if let Some(limit) = max_coalitions {
                        assert!(dp.partition.len() <= limit);
                    }
                }
            }
        }
    }
}
