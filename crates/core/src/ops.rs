//! The algebraic operators of the soft constraint system.
//!
//! This module implements, exactly as defined in Sec. 2 of the paper:
//!
//! | Paper | Here |
//! |---|---|
//! | combination `c1 ⊗ c2` | [`Constraint::combine`] |
//! | division `c1 ÷ c2` | [`Constraint::divide`] |
//! | projection `c ⇓ V` | [`Constraint::project`] |
//! | hiding `∃x c` | [`Constraint::hide`] |
//! | order `c1 ⊑ c2` | [`Constraint::leq`] |
//! | entailment `C ⊢ c` | [`entails`] |
//! | `c ⇓ ∅` (consistency level) | [`Constraint::consistency`] |
//!
//! Combination and division are *lazy*: they return an intensional
//! constraint over the union scope that evaluates both operands on
//! demand (call [`Constraint::materialize`] to pay the enumeration cost
//! once). Projection is necessarily *eager* — it sums over the
//! eliminated variables' domains — and therefore needs a [`Domains`]
//! map and can fail with [`MissingDomainError`].

use softsoa_semiring::{Residuated, Semiring};

use crate::{Constraint, Domains, MissingDomainError, Val, Var};

/// Positions of each `sub` variable inside `sup` (both sorted).
///
/// # Panics
///
/// Panics if `sub` is not a subset of `sup`.
fn embedding(sub: &[Var], sup: &[Var]) -> Vec<usize> {
    sub.iter()
        .map(|v| {
            sup.binary_search(v)
                .expect("operand scope must embed in the union scope")
        })
        .collect()
}

fn union_scope(a: &[Var], b: &[Var]) -> Vec<Var> {
    let mut scope: Vec<Var> = a.iter().chain(b.iter()).cloned().collect();
    scope.sort();
    scope.dedup();
    scope
}

/// Merges two sorted, deduplicated scopes in one linear pass, returning
/// the union scope together with both operands' embeddings into it.
///
/// This replaces the sort + dedup + per-variable binary search that the
/// lazy operators used to repeat on every nesting level: the embeddings
/// fall out of the merge for free, and nested combinations *compose*
/// them (index lookups) instead of recomputing them.
fn merge_scopes(a: &[Var], b: &[Var]) -> (Vec<Var>, Vec<usize>, Vec<usize>) {
    let mut scope = Vec::with_capacity(a.len() + b.len());
    let mut emb_a = Vec::with_capacity(a.len());
    let mut emb_b = Vec::with_capacity(b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        let pos = scope.len();
        if j >= b.len() || (i < a.len() && a[i] < b[j]) {
            scope.push(a[i].clone());
            emb_a.push(pos);
            i += 1;
        } else if i >= a.len() || b[j] < a[i] {
            scope.push(b[j].clone());
            emb_b.push(pos);
            j += 1;
        } else {
            scope.push(a[i].clone());
            emb_a.push(pos);
            emb_b.push(pos);
            i += 1;
            j += 1;
        }
    }
    (scope, emb_a, emb_b)
}

impl<S: Semiring> Constraint<S> {
    /// The combination `self ⊗ other`: `(c1 ⊗ c2)η = c1η × c2η`.
    ///
    /// The support of the result is the union of the supports. The
    /// result is lazy; each evaluation evaluates both operands.
    ///
    /// # Panics
    ///
    /// Panics if the two constraints are valued in different semirings
    /// (e.g. set-based semirings with different universes).
    pub fn combine(&self, other: &Constraint<S>) -> Constraint<S> {
        assert!(
            self.semiring() == other.semiring(),
            "cannot combine constraints over different semirings"
        );
        let semiring = self.semiring().clone();
        let (scope, left_idx, right_idx) = merge_scopes(self.scope(), other.scope());
        Constraint::combined_from(
            semiring,
            scope,
            vec![(self.clone(), left_idx), (other.clone(), right_idx)],
        )
    }

    /// The division `self ÷ other`: `(c1 ÷ c2)η = c1η ÷ c2η`.
    ///
    /// This is the constraint-level residuation used by the `retract`
    /// action of the `nmsccp` language to remove `other`'s contribution.
    ///
    /// # Panics
    ///
    /// Panics if the two constraints are valued in different semirings.
    pub fn divide(&self, other: &Constraint<S>) -> Constraint<S>
    where
        S: Residuated,
    {
        assert!(
            self.semiring() == other.semiring(),
            "cannot divide constraints over different semirings"
        );
        let semiring = self.semiring().clone();
        let (scope, left_idx, right_idx) = merge_scopes(self.scope(), other.scope());
        Constraint::divided_from(
            semiring,
            scope,
            (self.clone(), left_idx),
            (other.clone(), right_idx),
            <S as Residuated>::div,
        )
    }

    /// The projection `self ⇓ keep`, eliminating every support variable
    /// not in `keep` by summing over its domain.
    ///
    /// The result is an extensional constraint over `scope ∩ keep`.
    /// Projection is how the paper extracts the *interface* of a
    /// service from its implementation (Sec. 5).
    ///
    /// # Errors
    ///
    /// Returns [`MissingDomainError`] if an eliminated variable has no
    /// domain.
    pub fn project(
        &self,
        keep: &[Var],
        domains: &Domains,
    ) -> Result<Constraint<S>, MissingDomainError> {
        let kept: Vec<Var> = self
            .scope()
            .iter()
            .filter(|v| keep.contains(v))
            .cloned()
            .collect();
        let eliminated: Vec<Var> = self
            .scope()
            .iter()
            .filter(|v| !keep.contains(v))
            .cloned()
            .collect();
        if eliminated.is_empty() {
            // Nothing to eliminate; materialise for a stable result shape.
            return self.materialize(domains);
        }
        let semiring = self.semiring().clone();
        // Where each kept/eliminated variable sits in the sorted scope.
        let kept_idx = embedding(&kept, self.scope());
        let elim_idx = embedding(&eliminated, self.scope());
        let elim_tuples: Vec<Vec<Val>> = domains.tuples(&eliminated)?.collect();

        let mut entries = Vec::new();
        for kept_tuple in domains.tuples(&kept)? {
            let mut acc = semiring.zero();
            let mut full = vec![Val::Bool(false); self.scope().len()];
            for (slot, v) in kept_idx.iter().zip(&kept_tuple) {
                full[*slot] = v.clone();
            }
            for elim_tuple in &elim_tuples {
                for (slot, v) in elim_idx.iter().zip(elim_tuple) {
                    full[*slot] = v.clone();
                }
                acc = semiring.plus(&acc, &self.eval_tuple(&full));
            }
            entries.push((kept_tuple, acc));
        }
        let zero = semiring.zero();
        let mut projected = Constraint::table(semiring, &kept, entries, zero);
        if let Some(label) = self.label() {
            projected = projected.with_label(format!("{label}⇓"));
        }
        Ok(projected)
    }

    /// The hiding operator `∃x self`: `(∃x c)η = Σ_{d ∈ D} cη[x := d]`.
    ///
    /// Equivalent to projecting the support onto `scope \ {x}`.
    ///
    /// # Errors
    ///
    /// Returns [`MissingDomainError`] if `x` is in the support but has
    /// no domain.
    pub fn hide(&self, x: &Var, domains: &Domains) -> Result<Constraint<S>, MissingDomainError> {
        let keep: Vec<Var> = self.scope().iter().filter(|v| *v != x).cloned().collect();
        self.project(&keep, domains)
    }

    /// The consistency level `self ⇓ ∅`: the `+`-sum of the constraint
    /// over every assignment of its support.
    ///
    /// Applied to a problem's solution this is the paper's *best level
    /// of consistency* `blevel`.
    ///
    /// # Errors
    ///
    /// Returns [`MissingDomainError`] if a support variable has no
    /// domain.
    pub fn consistency(&self, domains: &Domains) -> Result<S::Value, MissingDomainError> {
        let semiring = self.semiring().clone();
        let mut acc = semiring.zero();
        for tuple in domains.tuples(self.scope())? {
            acc = semiring.plus(&acc, &self.eval_tuple(&tuple));
        }
        Ok(acc)
    }

    /// The constraint order `self ⊑ other`: `∀η. self η ≤S other η`.
    ///
    /// Quantifies over all assignments of the union scope drawn from
    /// `domains`.
    ///
    /// # Errors
    ///
    /// Returns [`MissingDomainError`] if a support variable has no
    /// domain.
    ///
    /// # Panics
    ///
    /// Panics if the two constraints are valued in different semirings.
    pub fn leq(
        &self,
        other: &Constraint<S>,
        domains: &Domains,
    ) -> Result<bool, MissingDomainError> {
        assert!(
            self.semiring() == other.semiring(),
            "cannot compare constraints over different semirings"
        );
        let semiring = self.semiring().clone();
        let scope = union_scope(self.scope(), other.scope());
        let self_idx = embedding(self.scope(), &scope);
        let other_idx = embedding(other.scope(), &scope);
        for tuple in domains.tuples(&scope)? {
            let st: Vec<Val> = self_idx.iter().map(|&i| tuple[i].clone()).collect();
            let ot: Vec<Val> = other_idx.iter().map(|&i| tuple[i].clone()).collect();
            if !semiring.leq(&self.eval_tuple(&st), &other.eval_tuple(&ot)) {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Extensional equality: `self ⊑ other ∧ other ⊑ self` over
    /// `domains`.
    ///
    /// # Errors
    ///
    /// Returns [`MissingDomainError`] if a support variable has no
    /// domain.
    pub fn equivalent(
        &self,
        other: &Constraint<S>,
        domains: &Domains,
    ) -> Result<bool, MissingDomainError> {
        Ok(self.leq(other, domains)? && other.leq(self, domains)?)
    }
}

/// Combines all constraints with `⊗`; the empty combination is `1̄`.
///
/// # Examples
///
/// ```
/// use softsoa_core::{combine_all, Constraint, Assignment};
/// use softsoa_semiring::WeightedInt;
///
/// let c1 = Constraint::unary(WeightedInt, "x", |v| v.as_int().unwrap() as u64 + 3);
/// let c3 = Constraint::unary(WeightedInt, "x", |v| 2 * v.as_int().unwrap() as u64);
/// let combined = combine_all(WeightedInt, [&c1, &c3]);
/// let eta = Assignment::new().bind("x", 2);
/// assert_eq!(combined.eval(&eta), 9); // (2+3) + (2*2)
/// ```
pub fn combine_all<'a, S, I>(semiring: S, constraints: I) -> Constraint<S>
where
    S: Semiring,
    I: IntoIterator<Item = &'a Constraint<S>>,
{
    let operands: Vec<&Constraint<S>> = constraints.into_iter().collect();
    match operands.len() {
        0 => Constraint::always(semiring),
        1 => operands[0].clone(),
        _ => {
            // The union scope is sorted and deduplicated once for the
            // whole combination, and each operand embedded once —
            // instead of once per fold step as the naive
            // `fold(always, combine)` would.
            let mut scope: Vec<Var> = operands
                .iter()
                .flat_map(|c| c.scope().iter().cloned())
                .collect();
            scope.sort();
            scope.dedup();
            let parts: Vec<(Constraint<S>, Vec<usize>)> = operands
                .into_iter()
                .map(|c| {
                    assert!(
                        c.semiring() == &semiring,
                        "cannot combine constraints over different semirings"
                    );
                    let emb = embedding(c.scope(), &scope);
                    (c.clone(), emb)
                })
                .collect();
            Constraint::combined_from(semiring, scope, parts)
        }
    }
}

/// The entailment relation `C ⊢ c ⇔ ⊗C ⊑ c` (Sec. 2).
///
/// # Errors
///
/// Returns [`MissingDomainError`] if a support variable has no domain.
pub fn entails<'a, S, I>(
    semiring: S,
    constraints: I,
    c: &Constraint<S>,
    domains: &Domains,
) -> Result<bool, MissingDomainError>
where
    S: Semiring,
    I: IntoIterator<Item = &'a Constraint<S>>,
{
    combine_all(semiring, constraints).leq(c, domains)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Assignment, Domain};
    use softsoa_semiring::{Fuzzy, Unit, WeightedInt};

    fn doms_xy() -> Domains {
        Domains::new()
            .with("x", Domain::syms(["a", "b"]))
            .with("y", Domain::syms(["a", "b"]))
    }

    /// The three constraints of Fig. 1 (weighted semiring).
    fn fig1() -> (
        Constraint<WeightedInt>,
        Constraint<WeightedInt>,
        Constraint<WeightedInt>,
    ) {
        let c1 = Constraint::table(
            WeightedInt,
            &[Var::new("x")],
            vec![(vec![Val::sym("a")], 1u64), (vec![Val::sym("b")], 9)],
            u64::MAX,
        );
        let c2 = Constraint::table(
            WeightedInt,
            &[Var::new("x"), Var::new("y")],
            vec![
                (vec![Val::sym("a"), Val::sym("a")], 5u64),
                (vec![Val::sym("a"), Val::sym("b")], 1),
                (vec![Val::sym("b"), Val::sym("a")], 2),
                (vec![Val::sym("b"), Val::sym("b")], 2),
            ],
            u64::MAX,
        );
        let c3 = Constraint::table(
            WeightedInt,
            &[Var::new("y")],
            vec![(vec![Val::sym("a")], 5u64), (vec![Val::sym("b")], 5)],
            u64::MAX,
        );
        (c1, c2, c3)
    }

    #[test]
    fn fig1_combination_values() {
        let (c1, c2, c3) = fig1();
        let all = c1.combine(&c2).combine(&c3);
        let eta = |x: &str, y: &str| Assignment::new().bind("x", x).bind("y", y);
        assert_eq!(all.eval(&eta("a", "a")), 11);
        assert_eq!(all.eval(&eta("a", "b")), 7);
        assert_eq!(all.eval(&eta("b", "a")), 16);
        assert_eq!(all.eval(&eta("b", "b")), 16);
    }

    #[test]
    fn fig1_projection_and_blevel() {
        let (c1, c2, c3) = fig1();
        let all = c1.combine(&c2).combine(&c3);
        let sol = all.project(&[Var::new("x")], &doms_xy()).unwrap();
        let eta = |x: &str| Assignment::new().bind("x", x);
        assert_eq!(sol.eval(&eta("a")), 7);
        assert_eq!(sol.eval(&eta("b")), 16);
        assert_eq!(all.consistency(&doms_xy()).unwrap(), 7);
    }

    #[test]
    fn combine_is_commutative_and_has_unit() {
        let (c1, _, c3) = fig1();
        let doms = doms_xy();
        let ab = c1.combine(&c3);
        let ba = c3.combine(&c1);
        assert!(ab.equivalent(&ba, &doms).unwrap());
        let with_one = c1.combine(&Constraint::always(WeightedInt));
        assert!(with_one.equivalent(&c1, &doms).unwrap());
    }

    #[test]
    fn divide_undoes_combine_pointwise() {
        let (c1, c2, _) = fig1();
        let doms = doms_xy();
        let combined = c1.combine(&c2);
        let back = combined.divide(&c1);
        assert!(back.equivalent(&c2, &doms).unwrap());
    }

    #[test]
    fn projection_of_projection_composes() {
        let (c1, c2, c3) = fig1();
        let doms = doms_xy();
        let all = c1.combine(&c2).combine(&c3);
        let direct = all.project(&[], &doms).unwrap();
        let via_x = all
            .project(&[Var::new("x")], &doms)
            .unwrap()
            .project(&[], &doms)
            .unwrap();
        assert!(direct.equivalent(&via_x, &doms).unwrap());
    }

    #[test]
    fn hide_removes_variable_from_support() {
        let (_, c2, _) = fig1();
        let doms = doms_xy();
        let hidden = c2.hide(&Var::new("y"), &doms).unwrap();
        assert_eq!(hidden.scope(), &[Var::new("x")]);
        // For x=a the best extension is y=b with level 1.
        assert_eq!(hidden.eval(&Assignment::new().bind("x", "a")), 1);
        // Hiding a variable not in the support is the identity.
        let same = c2.hide(&Var::new("z"), &doms).unwrap();
        assert!(same.equivalent(&c2, &doms).unwrap());
    }

    #[test]
    fn leq_and_entailment() {
        let (c1, c2, c3) = fig1();
        let doms = doms_xy();
        // ⊗C ⊑ each member (combination only worsens levels).
        let all = combine_all(WeightedInt, [&c1, &c2, &c3]);
        assert!(all.leq(&c1, &doms).unwrap());
        assert!(all.leq(&c2, &doms).unwrap());
        assert!(entails(WeightedInt, [&c1, &c2, &c3], &c3, &doms).unwrap());
        // c1 alone does not entail c2.
        assert!(!entails(WeightedInt, [&c1], &c2, &doms).unwrap());
    }

    #[test]
    fn fuzzy_combination_flattens_to_min() {
        let u = |v: f64| Unit::new(v).unwrap();
        let cp = Constraint::unary(Fuzzy, "x", move |v| u(1.0 / (v.as_int().unwrap() as f64)));
        let cc = Constraint::unary(Fuzzy, "x", move |v| {
            u((v.as_int().unwrap() as f64 - 1.0) / 9.0)
        });
        let both = cp.combine(&cc);
        let eta = Assignment::new().bind("x", 2);
        let expected = (1.0f64 / 2.0).min((2.0 - 1.0) / 9.0);
        assert!((both.eval(&eta).get() - expected).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "different semirings")]
    fn combine_rejects_mismatched_semirings() {
        use softsoa_semiring::SetSemiring;
        let s1 = SetSemiring::from_iter(0u8..2);
        let s2 = SetSemiring::from_iter(0u8..3);
        let a = Constraint::always(s1);
        let b = Constraint::always(s2);
        let _ = a.combine(&b);
    }
}
