//! Soft constraint systems, SCSPs and solvers over c-semirings.
//!
//! This crate is the core of the `softsoa` workspace — a Rust
//! implementation of *Bistarelli & Santini, "Soft Constraints for
//! Dependable Service Oriented Architectures"* (DSN 2008). It provides
//! the soft constraint system of Sec. 2 of the paper:
//!
//! - [`Constraint`] — functions `η → A` with finite support, over any
//!   [`Semiring`](softsoa_semiring::Semiring);
//! - the operators `⊗` ([`Constraint::combine`]), `÷`
//!   ([`Constraint::divide`]), `⇓` ([`Constraint::project`]), `∃x`
//!   ([`Constraint::hide`]), the order `⊑` ([`Constraint::leq`]) and
//!   entailment ([`entails`]);
//! - diagonal constraints and the cylindric system
//!   ([`CylindricSystem`]) used to define the `nmsccp` language;
//! - [`Scsp`] problems `⟨C, con⟩` with `blevel` / α-consistency, and
//!   three interchangeable solvers in [`solve`].
//!
//! # Quick start
//!
//! The weighted problem of Fig. 1 of the paper:
//!
//! ```
//! use softsoa_core::{Scsp, Constraint, Domain, Val, Var};
//! use softsoa_semiring::WeightedInt;
//!
//! let p = Scsp::new(WeightedInt)
//!     .with_domain("x", Domain::syms(["a", "b"]))
//!     .with_domain("y", Domain::syms(["a", "b"]))
//!     .with_constraint(Constraint::table(
//!         WeightedInt, &[Var::new("x")],
//!         [(vec![Val::sym("a")], 1), (vec![Val::sym("b")], 9)], u64::MAX))
//!     .with_constraint(Constraint::table(
//!         WeightedInt, &[Var::new("x"), Var::new("y")],
//!         [
//!             (vec![Val::sym("a"), Val::sym("a")], 5),
//!             (vec![Val::sym("a"), Val::sym("b")], 1),
//!             (vec![Val::sym("b"), Val::sym("a")], 2),
//!             (vec![Val::sym("b"), Val::sym("b")], 2),
//!         ], u64::MAX))
//!     .with_constraint(Constraint::table(
//!         WeightedInt, &[Var::new("y")],
//!         [(vec![Val::sym("a")], 5), (vec![Val::sym("b")], 5)], u64::MAX))
//!     .of_interest(["x"]);
//!
//! assert_eq!(p.blevel()?, 7); // the paper's best level of consistency
//! # Ok::<(), softsoa_core::SolveError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assignment;
pub mod compile;
mod constraint;
mod cylindric;
mod domain;
pub mod generate;
mod ops;
mod problem;
pub mod solve;
#[cfg(test)]
mod testutil;
mod value;
mod var;

pub use assignment::Assignment;
pub use constraint::{Constraint, UnboundVarError};
pub use cylindric::CylindricSystem;
pub use domain::{Domain, Domains, MissingDomainError, TupleIter};
pub use ops::{combine_all, entails};
pub use problem::Scsp;
pub use solve::{Solution, SolveError};
pub use value::Val;
pub use var::{vars, Var};
