//! Connected-component decomposition of the constraint graph.
//!
//! Two variables are connected when some constraint's scope contains
//! both. Constraints never span components, so the combination `⊗C`
//! factors as a product over components and
//! `blevel(P) = k × Π_i blevel(P_i)` where `k` is the product of the
//! empty-scope (constant) constraints — exact on **every** semiring,
//! totally or partially ordered. A witness for `P` is the disjoint
//! union of per-component witnesses; on strictly monotone `×`
//! (weighted, probabilistic) it is precisely the blind search's
//! lexicographically first witness, while idempotent `×` (fuzzy) may
//! admit other equally optimal witnesses and the merged one is only
//! guaranteed *valid* (it attains the `blevel`).
//!
//! Structured instances — the broker's per-provider binding problems
//! are naturally near-decomposable — drop from exponential in the
//! total variable count to exponential only in the largest component,
//! and the components solve in parallel on the existing
//! [`Parallelism`](crate::solve::Parallelism) fan-out.

use std::collections::BTreeMap;

use softsoa_semiring::Semiring;

use crate::{Scsp, SolveError, Var};

/// The connected components of `problem`'s constraint graph, each a
/// sorted variable list; components are ordered by their smallest
/// variable. Isolated variables (constrained by nothing, including
/// bare `con` variables) form singleton components.
pub fn constraint_components<S: Semiring>(problem: &Scsp<S>) -> Vec<Vec<Var>> {
    let vars = problem.problem_vars();
    let pos: BTreeMap<&Var, usize> = vars.iter().zip(0..).collect();
    let mut parent: Vec<usize> = (0..vars.len()).collect();
    fn find(parent: &mut [usize], i: usize) -> usize {
        let mut root = i;
        while parent[root] != root {
            root = parent[root];
        }
        let mut walk = i;
        while parent[walk] != root {
            let next = parent[walk];
            parent[walk] = root;
            walk = next;
        }
        root
    }
    for c in problem.constraints() {
        let mut scope = c.scope().iter();
        let Some(first) = scope.next() else { continue };
        let anchor = find(&mut parent, pos[first]);
        for v in scope {
            let root = find(&mut parent, pos[v]);
            parent[root] = anchor;
        }
    }
    let mut groups: BTreeMap<usize, Vec<Var>> = BTreeMap::new();
    for (i, v) in vars.iter().enumerate() {
        let root = find(&mut parent, i);
        groups.entry(root).or_default().push(v.clone());
    }
    // `vars` is sorted, so each group is sorted; order the groups by
    // their smallest member for a deterministic component order.
    let mut components: Vec<Vec<Var>> = groups.into_values().collect();
    components.sort();
    components
}

/// A problem split into independent sub-problems plus the constant
/// level contributed by empty-scope constraints.
pub(crate) struct Decomposition<S: Semiring> {
    pub parts: Vec<Scsp<S>>,
    pub constant: S::Value,
}

impl<S: Semiring> Decomposition<S> {
    /// Splits `problem` along its connected components, or returns
    /// `None` when there is nothing to split (zero or one component).
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::MissingDomain`] if a component variable
    /// has no declared domain.
    pub(crate) fn split(problem: &Scsp<S>) -> Result<Option<Decomposition<S>>, SolveError> {
        let components = constraint_components(problem);
        if components.len() <= 1 {
            return Ok(None);
        }
        let semiring = problem.semiring();
        let constant = semiring.product(
            &problem
                .constraints()
                .iter()
                .filter(|c| c.scope().is_empty())
                .map(|c| c.eval_tuple(&[]))
                .collect::<Vec<_>>(),
        );
        let mut parts = Vec::with_capacity(components.len());
        for comp in &components {
            let mut part = Scsp::new(semiring.clone());
            for v in comp {
                part.add_domain(v.clone(), problem.domains().get(v)?.clone());
            }
            for c in problem.constraints() {
                // A non-empty scope lies entirely inside one component.
                if c.scope().first().is_some_and(|v| comp.contains(v)) {
                    part.add_constraint(c.clone());
                }
            }
            parts
                .push(part.of_interest(problem.con().iter().filter(|v| comp.contains(v)).cloned()));
        }
        Ok(Some(Decomposition { parts, constant }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Constraint, Domain};
    use softsoa_semiring::WeightedInt;

    fn two_component_problem() -> Scsp<WeightedInt> {
        Scsp::new(WeightedInt)
            .with_domain("a", Domain::ints(0..=1))
            .with_domain("b", Domain::ints(0..=1))
            .with_domain("c", Domain::ints(0..=1))
            .with_domain("d", Domain::ints(0..=1))
            .with_constraint(Constraint::binary(WeightedInt, "a", "b", |x, y| {
                (x.as_int().unwrap() + y.as_int().unwrap()) as u64
            }))
            .with_constraint(Constraint::binary(WeightedInt, "c", "d", |x, y| {
                (2 * x.as_int().unwrap() + y.as_int().unwrap()) as u64
            }))
            .with_constraint(Constraint::constant(WeightedInt, 3))
            .of_interest(["a", "c"])
    }

    #[test]
    fn components_partition_the_variables() {
        let p = two_component_problem();
        let comps = constraint_components(&p);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0], crate::vars(["a", "b"]));
        assert_eq!(comps[1], crate::vars(["c", "d"]));
    }

    #[test]
    fn isolated_variables_are_singleton_components() {
        let p = Scsp::new(WeightedInt)
            .with_domain("x", Domain::ints(0..=1))
            .with_domain("y", Domain::ints(0..=1))
            .of_interest(["x", "y"]);
        let comps = constraint_components(&p);
        assert_eq!(comps.len(), 2);
    }

    #[test]
    fn split_carries_constants_and_interest() {
        let p = two_component_problem();
        let dec = Decomposition::split(&p).unwrap().unwrap();
        assert_eq!(dec.constant, 3);
        assert_eq!(dec.parts.len(), 2);
        assert_eq!(dec.parts[0].con(), crate::vars(["a"]).as_slice());
        assert_eq!(dec.parts[1].con(), crate::vars(["c"]).as_slice());
        // The constant constraint belongs to neither part.
        assert_eq!(dec.parts[0].constraints().len(), 1);
        assert_eq!(dec.parts[1].constraints().len(), 1);
    }

    #[test]
    fn connected_problems_do_not_split() {
        let p = crate::testutil::fig1_problem();
        assert!(Decomposition::split(&p).unwrap().is_none());
    }
}
