//! Instrumentation counters threaded through [`Solution`](crate::solve::Solution).

use std::fmt;
use std::time::Duration;

use softsoa_telemetry::Telemetry;

use crate::solve::propagate::PropagationStats;

/// Per-operand evaluation counters collected by the compiled engine.
///
/// One entry per `⊗`-operand of the compiled problem (combine DAGs are
/// flattened first, so an operand is always a leaf constraint).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ConstraintEvalStats {
    /// The operand's label, or `c{i}` when unlabeled.
    pub label: String,
    /// How many times the operand was evaluated during the search.
    ///
    /// Dense operands count slice lookups; lazy operands count calls
    /// into the underlying constraint.
    pub evals: u64,
    /// Number of cells in the operand's dense table (`0` when the
    /// operand stayed lazy because its table would exceed
    /// [`DENSE_TABLE_LIMIT`](crate::compile::DENSE_TABLE_LIMIT)).
    pub dense_cells: usize,
    /// Time spent materialising the dense table at compile time.
    pub materialize_time: Duration,
}

/// Counters from a bucket-tree elimination run
/// ([`treedec`](crate::solve::treedec)), attached to
/// [`SolverStats::tree`] whenever the configured
/// [`Engine`](crate::solve::Engine) considered the tree path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TreeStats {
    /// Buckets in the tree (one per problem variable).
    pub clusters: usize,
    /// Induced width of the chosen elimination order — the exponent in
    /// the `O(n · d^(w+1))` tree-solve cost.
    pub induced_width: usize,
    /// Largest separator along the order (equals the induced width for
    /// bucket trees; kept separately for display symmetry).
    pub max_separator: usize,
    /// Which ordering heuristic won: `"min-fill"` or `"min-degree"`.
    pub heuristic: &'static str,
    /// Total cluster-table cells enumerated (`0` on the fallback path,
    /// where no tables were materialised).
    pub table_cells: u64,
    /// Child context-cache reads beyond each entry's first use — the
    /// work the AND/OR context caching avoided re-solving.
    pub context_hits: u64,
    /// `true` when the width cap or memory guard pushed the solve back
    /// to branch-and-bound.
    pub fallback: bool,
}

/// Counters describing one solver run.
///
/// Attached to [`Solution`](crate::solve::Solution) by every solver;
/// the compiled engine additionally fills the per-operand
/// [`constraint_evals`](SolverStats::constraint_evals).
#[derive(Debug, Clone, Default)]
pub struct SolverStats {
    /// Search-tree nodes visited (for enumeration: prefixes explored).
    pub nodes: u64,
    /// Subtrees pruned (bound, domination or zero-absorption cuts).
    pub prunings: u64,
    /// The subset of [`prunings`](SolverStats::prunings) cut by the
    /// mini-bucket completion bound
    /// ([`MiniBucketBound`](crate::solve::MiniBucketBound)) rather
    /// than by the incumbent alone; zero when
    /// [`SolverConfig::ibound`](crate::solve::SolverConfig::ibound)
    /// is `None`.
    pub bound_prunes: u64,
    /// Worker threads used (`1` for sequential runs).
    pub threads: usize,
    /// Search-tree nodes visited per worker chunk, in chunk order
    /// (empty for sequential paths). Exposes partition balance.
    pub thread_nodes: Vec<u64>,
    /// Time spent compiling the problem (flattening, embeddings, dense
    /// tables); zero on lazy paths.
    pub compile_time: Duration,
    /// Wall-clock time of the whole solve, compilation included.
    pub solve_time: Duration,
    /// Per-operand evaluation counters (compiled paths only).
    pub constraint_evals: Vec<ConstraintEvalStats>,
    /// Soft arc-consistency counters, when the run propagated
    /// ([`SolverConfig::propagate`](crate::solve::SolverConfig::propagate)
    /// not `Off`, or [`VarOrder::Estimate`](crate::solve::VarOrder)).
    pub propagation: Option<PropagationStats>,
    /// Connected components solved independently; `0` when the run
    /// did not decompose (single component or
    /// [`SolverConfig::decompose`](crate::solve::SolverConfig::decompose)
    /// off).
    pub components: usize,
    /// Bucket-tree counters, when the run used (or fell back from) the
    /// tree engine ([`SolverConfig::engine`](crate::solve::SolverConfig::engine)
    /// not `BranchBound`).
    pub tree: Option<TreeStats>,
}

impl SolverStats {
    /// Emits the run's counters through `telemetry`, tagged with the
    /// solver's name.
    ///
    /// Deterministic families (safe for [`Snapshot::to_json`]
    /// comparison across fixed-seed runs): `solve.runs`,
    /// `solve.nodes`, `solve.prunings`, `solver.bound_prunes`, the
    /// per-operand
    /// `solve.constraint_evals{..}` counters, the `solve.threads`
    /// gauge, and the `solve.thread_nodes` balance observations. The
    /// compile/search time split is recorded as timings, which the
    /// JSON snapshot excludes.
    ///
    /// [`Snapshot::to_json`]: softsoa_telemetry::Snapshot::to_json
    pub fn emit(&self, telemetry: &Telemetry, solver: &str) {
        if !telemetry.enabled() {
            return;
        }
        telemetry.incr("solve.runs");
        telemetry.count_labeled("solve.runs", solver, 1);
        telemetry.count("solve.nodes", self.nodes);
        telemetry.count("solve.prunings", self.prunings);
        telemetry.count("solver.bound_prunes", self.bound_prunes);
        telemetry.gauge("solve.threads", self.threads as i64);
        for &nodes in &self.thread_nodes {
            telemetry.observe("solve.thread_nodes", nodes);
        }
        for c in &self.constraint_evals {
            telemetry.count_labeled("solve.constraint_evals", &c.label, c.evals);
        }
        if self.components > 1 {
            telemetry.gauge("solver.components", self.components as i64);
        }
        if let Some(p) = &self.propagation {
            telemetry.count("solver.propagation.revisions", p.revisions);
            telemetry.count("solver.propagation.root_prunes", p.root_prunes);
            telemetry.count("solver.propagation.node_prunes", p.node_prunes);
            telemetry.count("solver.propagation.wipeouts", p.wipeouts);
            for c in &p.per_constraint {
                telemetry.count_labeled("solver.propagation.revisions", &c.label, c.revisions);
                telemetry.count_labeled("solver.propagation.prunes", &c.label, c.prunes);
            }
            telemetry.timing("solver.propagation.time", p.time);
        }
        if let Some(t) = &self.tree {
            telemetry.gauge("solver.tree.clusters", t.clusters as i64);
            telemetry.gauge("solver.tree.width", t.induced_width as i64);
            telemetry.count("solver.tree.cells", t.table_cells);
            telemetry.count("solver.tree.context_hits", t.context_hits);
            if t.fallback {
                telemetry.incr("solver.tree.fallbacks");
            }
        }
        telemetry.timing("solve.compile_time", self.compile_time);
        telemetry.timing(
            "solve.search_time",
            self.solve_time.saturating_sub(self.compile_time),
        );
        telemetry.timing("solve.solve_time", self.solve_time);
    }
}

impl fmt::Display for SolverStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "nodes: {}, prunings: {} ({} bound), threads: {}, compile: {:?}, solve: {:?}",
            self.nodes,
            self.prunings,
            self.bound_prunes,
            self.threads,
            self.compile_time,
            self.solve_time
        )?;
        if self.components > 1 {
            write!(f, "\n  components: {}", self.components)?;
        }
        if let Some(t) = &self.tree {
            write!(
                f,
                "\n  tree: {} clusters, width {} ({}), {} cells, {} context hits{}",
                t.clusters,
                t.induced_width,
                t.heuristic,
                t.table_cells,
                t.context_hits,
                if t.fallback {
                    ", fell back to search"
                } else {
                    ""
                }
            )?;
        }
        if let Some(p) = &self.propagation {
            write!(
                f,
                "\n  propagation: {} revisions, {} root prunes, {} node prunes, {} wipeouts, {:?}",
                p.revisions, p.root_prunes, p.node_prunes, p.wipeouts, p.time
            )?;
            for c in &p.per_constraint {
                write!(
                    f,
                    "\n    {}: {} revisions, {} prunes",
                    c.label, c.revisions, c.prunes
                )?;
            }
        }
        for c in &self.constraint_evals {
            write!(f, "\n  {}: {} evals", c.label, c.evals)?;
            if c.dense_cells > 0 {
                write!(f, " (dense, {} cells)", c.dense_cells)?;
            } else {
                write!(f, " (lazy)")?;
            }
        }
        Ok(())
    }
}
