//! Branch-and-bound over *partially ordered* semirings.

use std::time::Instant;

use softsoa_semiring::Semiring;

use crate::compile::CompiledProblem;
use crate::solve::parallel::fan_out;
use crate::solve::{Solution, SolveError, Solver, SolverConfig, SolverStats};
use crate::{Assignment, Scsp, Val, Var};

/// A depth-first solver maintaining a *Pareto frontier* of incumbents,
/// for semirings whose order is partial (Cartesian products, the
/// set-based instance).
///
/// [`BranchAndBound`](crate::solve::BranchAndBound) refuses partial
/// orders because a single incumbent cannot bound the search; this
/// solver instead keeps the set of non-dominated complete assignment
/// values found so far and prunes a branch when its partial
/// combination is already dominated by (`≤` in the semiring order)
/// some incumbent — sound because combining can only worsen a level.
///
/// Returned data:
///
/// - `blevel` is exact: the `+`-sum of values over all assignments
///   equals the least upper bound of the frontier (dominated values
///   are absorbed by `+`);
/// - `best()` holds the non-dominated **complete assignments**
///   (restricted to `con`). Note the difference from
///   [`EnumerationSolver`](crate::solve::EnumerationSolver), whose
///   `best()` ranks con-tuples by their *aggregated* (`+`-summed over
///   hidden variables) level — an aggregate may strictly dominate
///   every single assignment achieving it. For Pareto-style
///   multi-criteria selection, per-assignment values are the useful
///   reading.
///
/// # Examples
///
/// ```
/// use softsoa_core::{Scsp, Constraint, Domain};
/// use softsoa_core::solve::{ParetoBranchAndBound, Solver};
/// use softsoa_semiring::{Product, Weighted, Probabilistic, Weight, Unit};
///
/// // Cost × reliability offers: find the non-dominated ones.
/// let s = Product::new(Weighted, Probabilistic);
/// let offers = [(10.0, 0.90), (25.0, 0.99), (40.0, 0.95)];
/// let sc = s.clone();
/// let p = Scsp::new(s)
///     .with_domain("provider", Domain::ints(0..3))
///     .with_constraint(Constraint::unary(sc, "provider", move |v| {
///         let (cost, rel) = offers[v.as_int().unwrap() as usize];
///         (Weight::saturating(cost), Unit::clamped(rel))
///     }))
///     .of_interest(["provider"]);
/// let solution = ParetoBranchAndBound::new().solve(&p)?;
/// // Provider 2 is dominated by provider 1.
/// assert_eq!(solution.best().len(), 2);
/// # Ok::<(), softsoa_core::SolveError>(())
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct ParetoBranchAndBound {
    config: SolverConfig,
}

impl ParetoBranchAndBound {
    /// Creates the solver with the default engine (compiled, automatic
    /// thread count).
    pub fn new() -> ParetoBranchAndBound {
        ParetoBranchAndBound::default()
    }

    /// Creates the solver with an explicit engine configuration.
    pub fn with_config(config: SolverConfig) -> ParetoBranchAndBound {
        ParetoBranchAndBound { config }
    }

    /// The compiled engine: each worker explores a slice of the
    /// outermost variable's domain with its own local frontier;
    /// frontiers are merged by replaying their entries in chunk order
    /// through the sequential insertion rule, which reproduces the
    /// sequential frontier (and its representatives) exactly.
    fn solve_compiled<S: Semiring>(&self, problem: &Scsp<S>) -> Result<Solution<S>, SolveError> {
        let start = Instant::now();
        let semiring = problem.semiring().clone();
        let compiled = CompiledProblem::from_problem(problem)?;
        let threads = self.config.parallelism.thread_count(compiled.outer_size());
        let workers = fan_out(threads, compiled.outer_size(), |range| {
            let mut worker = ParetoWorker {
                semiring: &semiring,
                compiled: &compiled,
                idx: vec![0; compiled.vars().len()],
                scratch: Vec::new(),
                frontier: Vec::new(),
                nodes: 0,
                prunings: 0,
                evals: vec![0; compiled.num_operands()],
            };
            worker.run(range);
            (worker.frontier, worker.nodes, worker.prunings, worker.evals)
        });

        let mut frontier: Vec<(Vec<usize>, S::Value)> = Vec::new();
        let mut stats = SolverStats {
            threads,
            compile_time: compiled.compile_time(),
            ..SolverStats::default()
        };
        let mut evals = vec![0u64; compiled.num_operands()];
        for (local, nodes, prunings, worker_evals) in workers {
            stats.nodes += nodes;
            stats.prunings += prunings;
            stats.thread_nodes.push(nodes);
            for (acc, e) in evals.iter_mut().zip(&worker_evals) {
                *acc += e;
            }
            for (idx, value) in local {
                let dominated = frontier
                    .iter()
                    .any(|(_, incumbent)| semiring.leq(&value, incumbent));
                if dominated {
                    continue;
                }
                frontier.retain(|(_, incumbent)| !semiring.lt(incumbent, &value));
                frontier.push((idx, value));
            }
        }
        stats.constraint_evals = compiled.eval_stats(&evals);
        stats.solve_time = start.elapsed();

        let blevel = semiring.sum(frontier.iter().map(|(_, v)| v));
        let best: Vec<(Assignment, S::Value)> = frontier
            .into_iter()
            .filter(|(_, v)| !semiring.is_zero(v))
            .map(|(idx, v)| (compiled.con_assignment(&idx), v))
            .collect();
        Ok(Solution::new(blevel, best, None).with_stats(stats))
    }

    fn solve_lazy<S: Semiring>(&self, problem: &Scsp<S>) -> Result<Solution<S>, SolveError> {
        let start = Instant::now();
        let semiring = problem.semiring().clone();
        let vars = problem.problem_vars();
        let domains: Vec<&crate::Domain> = vars
            .iter()
            .map(|v| problem.domains().get(v).map_err(SolveError::from))
            .collect::<Result<_, _>>()?;

        // Constraints complete at the depth where their last scope
        // variable is assigned.
        let mut completing: Vec<Vec<(usize, Vec<usize>)>> = vec![Vec::new(); vars.len() + 1];
        for (ci, c) in problem.constraints().iter().enumerate() {
            let positions: Vec<usize> = c
                .scope()
                .iter()
                .map(|v| vars.iter().position(|u| u == v).expect("scope var ordered"))
                .collect();
            let depth = positions.iter().copied().max().map_or(0, |d| d + 1);
            completing[depth].push((ci, positions));
        }

        let mut search = ParetoSearch {
            semiring: semiring.clone(),
            problem,
            vars: &vars,
            domains: &domains,
            completing: &completing,
            slots: vec![None; vars.len()],
            frontier: Vec::new(),
            nodes: 0,
            prunings: 0,
        };
        let root = search.apply_completed(0, semiring.one());
        search.dfs(0, root);

        let stats = SolverStats {
            nodes: search.nodes,
            prunings: search.prunings,
            threads: 1,
            solve_time: start.elapsed(),
            ..SolverStats::default()
        };
        let con: Vec<Var> = problem.con().to_vec();
        let blevel = semiring.sum(search.frontier.iter().map(|(_, v)| v));
        let best: Vec<(Assignment, S::Value)> = search
            .frontier
            .into_iter()
            .filter(|(_, v)| !semiring.is_zero(v))
            .map(|(full, v)| {
                let eta: Assignment = con
                    .iter()
                    .map(|var| (var.clone(), full.get(var).expect("assigned").clone()))
                    .collect();
                (eta, v)
            })
            .collect();
        Ok(Solution::new(blevel, best, None).with_stats(stats))
    }
}

impl<S: Semiring> Solver<S> for ParetoBranchAndBound {
    fn solve(&self, problem: &Scsp<S>) -> Result<Solution<S>, SolveError> {
        if self.config.compiled {
            self.solve_compiled(problem)
        } else {
            self.solve_lazy(problem)
        }
    }
}

struct ParetoWorker<'a, S: Semiring> {
    semiring: &'a S,
    compiled: &'a CompiledProblem<S>,
    idx: Vec<usize>,
    scratch: Vec<Val>,
    /// Non-dominated `(index tuple, value)` incumbents, in leaf order.
    frontier: Vec<(Vec<usize>, S::Value)>,
    nodes: u64,
    prunings: u64,
    evals: Vec<u64>,
}

impl<'a, S: Semiring> ParetoWorker<'a, S> {
    fn run(&mut self, range: std::ops::Range<usize>) {
        let n = self.compiled.vars().len();
        let root = self.compiled.apply_completed(
            0,
            self.semiring.one(),
            &self.idx,
            &mut self.scratch,
            &mut self.evals,
        );
        if n == 0 {
            if !range.is_empty() {
                self.dfs(0, root);
            }
            return;
        }
        for i in range {
            self.idx[0] = i;
            let value = self.compiled.apply_completed(
                1,
                root.clone(),
                &self.idx,
                &mut self.scratch,
                &mut self.evals,
            );
            self.dfs(1, value);
        }
    }

    fn dfs(&mut self, depth: usize, value: S::Value) {
        self.nodes += 1;
        let dominated = self.semiring.is_zero(&value)
            || self
                .frontier
                .iter()
                .any(|(_, incumbent)| self.semiring.leq(&value, incumbent));
        if dominated {
            self.prunings += 1;
            return;
        }
        if depth == self.compiled.vars().len() {
            let semiring = self.semiring;
            self.frontier
                .retain(|(_, incumbent)| !semiring.lt(incumbent, &value));
            self.frontier.push((self.idx.clone(), value));
            return;
        }
        for i in 0..self.compiled.sizes()[depth] {
            self.idx[depth] = i;
            let next = self.compiled.apply_completed(
                depth + 1,
                value.clone(),
                &self.idx,
                &mut self.scratch,
                &mut self.evals,
            );
            self.dfs(depth + 1, next);
        }
    }
}

struct ParetoSearch<'a, S: Semiring> {
    semiring: S,
    problem: &'a Scsp<S>,
    vars: &'a [Var],
    domains: &'a [&'a crate::Domain],
    completing: &'a [Vec<(usize, Vec<usize>)>],
    slots: Vec<Option<Val>>,
    /// Non-dominated `(complete assignment, value)` incumbents.
    frontier: Vec<(Assignment, S::Value)>,
    nodes: u64,
    prunings: u64,
}

impl<'a, S: Semiring> ParetoSearch<'a, S> {
    fn apply_completed(&self, depth: usize, value: S::Value) -> S::Value {
        let mut acc = value;
        for (ci, positions) in &self.completing[depth] {
            if self.semiring.is_zero(&acc) {
                break;
            }
            let tuple: Vec<Val> = positions
                .iter()
                .map(|&p| self.slots[p].clone().expect("assigned slot"))
                .collect();
            acc = self
                .semiring
                .times(&acc, &self.problem.constraints()[*ci].eval_tuple(&tuple));
        }
        acc
    }

    /// A branch is hopeless when its value is dominated by an
    /// incumbent (strictly below, or equal: equal complete values are
    /// recorded once).
    fn dominated(&self, value: &S::Value) -> bool {
        self.semiring.is_zero(value)
            || self
                .frontier
                .iter()
                .any(|(_, incumbent)| self.semiring.leq(value, incumbent))
    }

    fn dfs(&mut self, depth: usize, value: S::Value) {
        self.nodes += 1;
        if self.dominated(&value) {
            self.prunings += 1;
            return;
        }
        if depth == self.vars.len() {
            // Evict incumbents the new value strictly dominates.
            let semiring = &self.semiring;
            self.frontier
                .retain(|(_, incumbent)| !semiring.lt(incumbent, &value));
            let eta: Assignment = self
                .vars
                .iter()
                .zip(&self.slots)
                .map(|(v, s)| (v.clone(), s.clone().expect("complete")))
                .collect();
            self.frontier.push((eta, value));
            return;
        }
        for val in self.domains[depth].values().to_vec() {
            self.slots[depth] = Some(val);
            let next = self.apply_completed(depth + 1, value.clone());
            self.dfs(depth + 1, next);
        }
        self.slots[depth] = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve::EnumerationSolver;
    use crate::{Constraint, Domain};
    use softsoa_semiring::{Boolean, Probabilistic, Product, Unit, Weight, Weighted, WeightedInt};

    type CostRel = Product<Weighted, Probabilistic>;

    fn cost_rel() -> CostRel {
        Product::new(Weighted, Probabilistic)
    }

    fn offers_problem(offers: &'static [(f64, f64)]) -> Scsp<CostRel> {
        let s = cost_rel();
        Scsp::new(s)
            .with_domain("p", Domain::ints(0..offers.len() as i64))
            .with_constraint(Constraint::unary(s, "p", move |v| {
                let (cost, rel) = offers[v.as_int().unwrap() as usize];
                (Weight::saturating(cost), Unit::clamped(rel))
            }))
            .of_interest(["p"])
    }

    #[test]
    fn frontier_matches_enumeration_on_unary_problems() {
        // With con covering all variables, the aggregated and
        // per-assignment readings coincide.
        let p = offers_problem(&[(10.0, 0.90), (25.0, 0.99), (40.0, 0.95)]);
        let pareto = ParetoBranchAndBound::new().solve(&p).unwrap();
        let reference = EnumerationSolver::new().solve(&p).unwrap();
        assert_eq!(pareto.blevel(), reference.blevel());
        let mut a: Vec<String> = pareto.best().iter().map(|(e, _)| e.to_string()).collect();
        let mut b: Vec<String> = reference
            .best()
            .iter()
            .map(|(e, _)| e.to_string())
            .collect();
        a.sort();
        b.sort();
        assert_eq!(a, b);
        assert_eq!(pareto.best().len(), 2);
    }

    #[test]
    fn blevel_matches_enumeration_on_random_products() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..8 {
            let mut rng = StdRng::seed_from_u64(seed);
            let s = Product::new(Boolean, WeightedInt);
            let table: Vec<(bool, u64)> = (0..36)
                .map(|_| (rng.random(), rng.random_range(0..6)))
                .collect();
            let t1 = table.clone();
            let p = Scsp::new(s)
                .with_domain("x", Domain::ints(0..6))
                .with_domain("y", Domain::ints(0..6))
                .with_constraint(Constraint::binary(s, "x", "y", move |a, b| {
                    t1[(a.as_int().unwrap() * 6 + b.as_int().unwrap()) as usize]
                }))
                .of_interest(["x", "y"]);
            let pareto = ParetoBranchAndBound::new().solve(&p).unwrap();
            let reference = EnumerationSolver::new().solve(&p).unwrap();
            assert_eq!(pareto.blevel(), reference.blevel(), "seed {seed}");
            // The *distinct maximal values* coincide when con covers
            // every variable (Pareto keeps one representative per
            // value, enumeration keeps every witnessing tuple).
            let values = |sol: &crate::Solution<_>| {
                let mut v: Vec<String> = sol.best().iter().map(|(_, l)| format!("{l:?}")).collect();
                v.sort();
                v.dedup();
                v
            };
            assert_eq!(values(&pareto), values(&reference), "seed {seed}");
        }
    }

    #[test]
    fn works_on_total_orders_too() {
        let p = crate::generate::random_weighted(&crate::generate::RandomScsp {
            vars: 5,
            domain_size: 3,
            constraints: 6,
            arity: 2,
            seed: 3,
        });
        let pareto = ParetoBranchAndBound::new().solve(&p).unwrap();
        let reference = EnumerationSolver::new().solve(&p).unwrap();
        assert_eq!(pareto.blevel(), reference.blevel());
    }

    #[test]
    fn inconsistent_problems_yield_empty_frontier() {
        let s = cost_rel();
        let p = Scsp::new(s)
            .with_domain("p", Domain::ints(0..3))
            .with_constraint(Constraint::never(s))
            .of_interest(["p"]);
        let solution = ParetoBranchAndBound::new().solve(&p).unwrap();
        assert!(solution.best().is_empty());
        assert_eq!(*solution.blevel(), cost_rel().zero());
    }

    #[test]
    fn duplicate_values_are_not_duplicated_in_frontier() {
        // Two providers with identical offers: the first is recorded,
        // the second is dominated (≤, equal) and skipped.
        let p = offers_problem(&[(10.0, 0.9), (10.0, 0.9)]);
        let solution = ParetoBranchAndBound::new().solve(&p).unwrap();
        assert_eq!(solution.best().len(), 1);
    }

    #[test]
    fn compiled_and_parallel_reproduce_the_lazy_frontier() {
        use crate::solve::{Parallelism, SolverConfig};
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..6 {
            let mut rng = StdRng::seed_from_u64(seed);
            let s = Product::new(Boolean, WeightedInt);
            let table: Vec<(bool, u64)> = (0..16)
                .map(|_| (rng.random(), rng.random_range(0..5)))
                .collect();
            let t1 = table.clone();
            let p = Scsp::new(s)
                .with_domain("x", Domain::ints(0..4))
                .with_domain("y", Domain::ints(0..4))
                .with_constraint(Constraint::binary(s, "x", "y", move |a, b| {
                    t1[(a.as_int().unwrap() * 4 + b.as_int().unwrap()) as usize]
                }))
                .of_interest(["x", "y"]);
            let lazy = ParetoBranchAndBound::with_config(SolverConfig::reference())
                .solve(&p)
                .unwrap();
            for threads in [1, 2, 3] {
                let cfg = SolverConfig::default().with_parallelism(Parallelism::Threads(threads));
                let fast = ParetoBranchAndBound::with_config(cfg).solve(&p).unwrap();
                assert_eq!(fast.blevel(), lazy.blevel(), "seed {seed} x{threads}");
                // The merged frontier must list the *same
                // representatives in the same order* as the
                // sequential run.
                let render = |sol: &crate::Solution<_>| -> Vec<String> {
                    sol.best()
                        .iter()
                        .map(|(eta, v)| format!("{eta} -> {v:?}"))
                        .collect()
                };
                assert_eq!(render(&fast), render(&lazy), "seed {seed} x{threads}");
            }
        }
    }
}
