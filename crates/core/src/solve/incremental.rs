//! Incremental re-solve engine for churning constraint stores.
//!
//! A registry under churn mutates one constraint at a time; re-solving
//! the whole SCSP from scratch repeats work for every part of the
//! constraint graph the mutation cannot reach. [`IncrementalSolver`]
//! keeps the problem as a mutable set of identified constraints and,
//! on each [`solve`](IncrementalSolver::solve), re-uses PR 6's
//! connected-component decomposition as *dirty-scope invalidation*:
//!
//! - the constraint graph is split into connected components (the
//!   union-find of [`constraint_components`]);
//! - each component is keyed by its variable set plus the sorted
//!   `(constraint id, version)` signature of its constraints — a
//!   component whose signature is unchanged since the last solve is a
//!   **clean** component and its `(blevel, witness)` is replayed from
//!   the component cache without any search;
//! - dirty components are re-searched with [`BranchAndBound`],
//!   warm-started from the previous optimum where that is sound: the
//!   old witness restricted to the component is re-evaluated on the
//!   *current* constraints, which yields an achievable (hence
//!   admissible) incumbent for both tightenings and relaxations.
//!
//! Soundness notes. The global `blevel` factors exactly as
//! `k × Π_i blevel(P_i)` over components on every semiring (see
//! [`decompose`](super::decompose)); warm seeds are only used when
//! `Semiring::exact_times()` holds, because re-associating an inexact
//! (floating-point) product could make the seeded level unachievable
//! under the search's own evaluation order and turn the incumbent into
//! an over-tight bound. Inexact semirings still get the component
//! reuse — only the incumbent seeding is skipped.
//!
//! The component cache is shared across [`Clone`]d solvers and bounded
//! (least-recently-used eviction), so a long-lived broker holding one
//! solver per binding problem keeps flat memory under sustained churn.
//! Sharing is sound because every part of a [`ComponentKey`] is
//! globally unique across clones: constraint ids, `update` version
//! stamps and domain generations are all allocated from one shared
//! atomic counter, so two clones that diverge (updating the same id,
//! or re-declaring the same variable, with different content) can
//! never produce the same key.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use softsoa_semiring::Semiring;
use softsoa_telemetry::Telemetry;

use crate::solve::treedec::{self, TreeState};
use crate::solve::{
    BranchAndBound, Engine, EnumerationSolver, Solution, SolveError, Solver, SolverConfig, VarOrder,
};
use crate::{Assignment, Constraint, Domain, Domains, Scsp, Var};

/// A handle to a constraint registered with an [`IncrementalSolver`].
///
/// Ids are allocated from a counter shared across clones of the
/// solver, so handles never collide even when several solvers share
/// one component cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConstraintId(u64);

/// Counters describing how much work incrementality avoided.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct IncrementalStats {
    /// Deltas applied (`add` + `retract` + `update`).
    pub deltas: u64,
    /// Calls to [`IncrementalSolver::solve`].
    pub solves: u64,
    /// Components examined across all solves.
    pub components_seen: u64,
    /// Components replayed from the cache without search.
    pub components_reused: u64,
    /// Components re-searched because their signature changed.
    pub components_resolved: u64,
    /// Dirty components whose search was warm-started from the
    /// previous optimum.
    pub warm_seeds: u64,
    /// Bucket-tree clusters replayed unchanged inside dirty components
    /// (tree engines only: a content-only delta recomputes just the
    /// touched bucket and its ancestors, and this counts the buckets
    /// that kept their tables).
    pub clusters_reused: u64,
    /// Bucket-tree clusters whose tables were recomputed.
    pub clusters_recomputed: u64,
}

impl IncrementalStats {
    /// Fraction of examined components replayed from cache, in
    /// `[0, 1]`; `0` before the first solve.
    pub fn reuse_ratio(&self) -> f64 {
        if self.components_seen == 0 {
            0.0
        } else {
            self.components_reused as f64 / self.components_seen as f64
        }
    }

    /// Publishes the counters as `solver.incremental.*` gauges.
    ///
    /// Gauges (not counters) because the stats are cumulative for the
    /// solver's lifetime; emitting them repeatedly must not
    /// double-count.
    pub fn emit(&self, telemetry: &Telemetry) {
        telemetry.gauge("solver.incremental.deltas", self.deltas as i64);
        telemetry.gauge("solver.incremental.solves", self.solves as i64);
        telemetry.gauge(
            "solver.incremental.components_seen",
            self.components_seen as i64,
        );
        telemetry.gauge(
            "solver.incremental.components_reused",
            self.components_reused as i64,
        );
        telemetry.gauge(
            "solver.incremental.components_resolved",
            self.components_resolved as i64,
        );
        telemetry.gauge("solver.incremental.warm_seeds", self.warm_seeds as i64);
        telemetry.gauge(
            "solver.incremental.clusters_reused",
            self.clusters_reused as i64,
        );
        telemetry.gauge(
            "solver.incremental.clusters_recomputed",
            self.clusters_recomputed as i64,
        );
        telemetry.gauge(
            "solver.incremental.reuse_ratio_permille",
            (self.reuse_ratio() * 1000.0) as i64,
        );
    }
}

#[derive(Clone)]
struct Slot<S: Semiring> {
    version: u64,
    constraint: Constraint<S>,
}

/// Cache key for one connected component: its variable set, the
/// `(id, version)` signature of its constraints (sorted, since ids
/// come out of a `BTreeMap`), and the domain generation at which it
/// was solved. Versions and generations are globally unique stamps
/// (see the module docs), so keys built by different clones collide
/// only when their content is genuinely identical.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct ComponentKey {
    /// Shared with the memoised [`Structure`], so building a key per
    /// component per solve clones a pointer, not the variable vector.
    /// Hashing and equality go through to the contents, so keys built
    /// by different solvers still unify in the shared cache.
    vars: Arc<Vec<Var>>,
    parts: Vec<(u64, u64)>,
    domain_gen: u64,
}

struct Cached<S: Semiring> {
    blevel: S::Value,
    /// A full assignment of the component's variables attaining
    /// `blevel`, when one exists (`None` iff `blevel = 0`).
    witness: Option<Assignment>,
    stamp: u64,
}

struct CacheState<S: Semiring> {
    entries: HashMap<ComponentKey, Cached<S>>,
    stamp: u64,
    capacity: usize,
}

/// Fraction of the cache evicted per batch, as a divisor: at capacity,
/// the oldest `capacity / EVICTION_DIVISOR` entries (at least one) are
/// dropped in a single `O(n)` pass. The next batch-size-minus-one
/// inserts then evict nothing, so sustained-churn inserts cost
/// amortized `O(EVICTION_DIVISOR)` comparisons — constant in the
/// capacity — while the replay path (`touch`) stays a plain hash
/// lookup with no recency bookkeeping at all.
const EVICTION_DIVISOR: usize = 10;

impl<S: Semiring> CacheState<S> {
    fn touch(&mut self, key: &ComponentKey) -> Option<(S::Value, Option<Assignment>)> {
        self.stamp += 1;
        let stamp = self.stamp;
        let hit = self.entries.get_mut(key)?;
        hit.stamp = stamp;
        Some((hit.blevel.clone(), hit.witness.clone()))
    }

    fn insert(&mut self, key: ComponentKey, blevel: S::Value, witness: Option<Assignment>) {
        self.stamp += 1;
        if self.entries.len() >= self.capacity && !self.entries.contains_key(&key) {
            // Batch-evict the least-recently-used ~10% to stay
            // bounded. Stamps are unique, so selecting the k-th
            // oldest stamp and retaining strictly newer entries
            // removes exactly k.
            let k = (self.capacity / EVICTION_DIVISOR)
                .max(1)
                .min(self.entries.len());
            let mut stamps: Vec<u64> = self.entries.values().map(|c| c.stamp).collect();
            let (_, cutoff, _) = stamps.select_nth_unstable(k - 1);
            let cutoff = *cutoff;
            self.entries.retain(|_, c| c.stamp > cutoff);
        }
        self.entries.insert(
            key,
            Cached {
                blevel,
                witness,
                stamp: self.stamp,
            },
        );
    }
}

/// A persistent solver that accepts constraint deltas and re-solves
/// only the parts of the problem the deltas can reach.
///
/// # Examples
///
/// ```
/// use softsoa_core::solve::IncrementalSolver;
/// use softsoa_core::{Constraint, Domain};
/// use softsoa_semiring::WeightedInt;
///
/// let mut solver = IncrementalSolver::new(WeightedInt)
///     .with_domain("x", Domain::ints(0..=3))
///     .with_domain("y", Domain::ints(0..=3));
/// let cost = solver.add_constraint(Constraint::binary(WeightedInt, "x", "y", |x, y| {
///     (x.as_int().unwrap() + y.as_int().unwrap()) as u64
/// }));
/// assert_eq!(*solver.solve().unwrap().blevel(), 0);
///
/// // Tighten: x now costs at least 2 on its own.
/// solver.update_constraint(
///     cost,
///     Constraint::binary(WeightedInt, "x", "y", |x, y| {
///         (2 + x.as_int().unwrap() + y.as_int().unwrap()) as u64
///     }),
/// );
/// assert_eq!(*solver.solve().unwrap().blevel(), 2);
/// ```
pub struct IncrementalSolver<S: Semiring> {
    semiring: S,
    domains: Domains,
    con: Vec<Var>,
    constraints: BTreeMap<u64, Slot<S>>,
    order: VarOrder,
    config: SolverConfig,
    /// Shared allocator for constraint ids, `update` version stamps
    /// and domain generations. One counter for all three keeps every
    /// [`ComponentKey`] ingredient globally unique across clones — a
    /// per-clone counter would let two diverging clones both reach
    /// "version 1" / "generation 1" with different content and poison
    /// the shared cache.
    stamps: Arc<AtomicU64>,
    cache: Arc<Mutex<CacheState<S>>>,
    domain_gen: u64,
    /// Full witness (all problem variables) from the last solve, used
    /// to warm-start dirty components.
    last_witness: Option<Assignment>,
    /// Memoised constraint-graph decomposition, invalidated only by
    /// scope-changing deltas (add, retract, scope-altering update):
    /// version bumps and domain re-declarations leave the graph — and
    /// hence the memo — intact.
    structure: Option<Arc<Structure>>,
    /// Per-component bucket-tree state (tree engines only), keyed by
    /// the component's variable set and stamped with the domain
    /// generation it was filled under. Not shared across clones: the
    /// tables are bulky and cheap to rebuild, so a clone starts cold.
    tree_states: TreeStateMap<S>,
    stats: IncrementalStats,
}

/// Per-component tree state: the component's variable set maps to the
/// domain generation it was filled under plus the state itself.
type TreeStateMap<S> = HashMap<Arc<Vec<Var>>, (u64, Option<TreeState<S>>)>;

/// Bound on per-component tree states a solver keeps; scope churn that
/// outgrows it drops the oldest wholesale (they rebuild on demand).
const TREE_STATE_CAPACITY: usize = 64;

/// The constraint-graph decomposition of the current problem:
/// connected components with their member constraint ids, plus the
/// empty-scope constants.
struct Structure {
    /// `(component variables, member constraint ids)`, both sorted.
    components: Vec<(Arc<Vec<Var>>, Vec<u64>)>,
    /// Ids of empty-scope (constant) constraints, sorted.
    constants: Vec<u64>,
}

impl<S: Semiring> std::fmt::Debug for IncrementalSolver<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IncrementalSolver")
            .field("semiring", &self.semiring)
            .field("constraints", &self.constraints.len())
            .field("con", &self.con)
            .field("stats", &self.stats)
            .finish_non_exhaustive()
    }
}

impl<S: Semiring> Clone for IncrementalSolver<S> {
    fn clone(&self) -> Self {
        IncrementalSolver {
            semiring: self.semiring.clone(),
            domains: self.domains.clone(),
            con: self.con.clone(),
            constraints: self.constraints.clone(),
            order: self.order,
            config: self.config,
            stamps: Arc::clone(&self.stamps),
            cache: Arc::clone(&self.cache),
            domain_gen: self.domain_gen,
            last_witness: self.last_witness.clone(),
            structure: self.structure.clone(),
            tree_states: HashMap::new(),
            stats: self.stats.clone(),
        }
    }
}

/// Default bound on cached component results.
const DEFAULT_CACHE_CAPACITY: usize = 1024;

impl<S: Semiring> IncrementalSolver<S> {
    /// Creates an empty incremental solver.
    pub fn new(semiring: S) -> IncrementalSolver<S> {
        IncrementalSolver {
            semiring,
            domains: Domains::new(),
            con: Vec::new(),
            constraints: BTreeMap::new(),
            order: VarOrder::Input,
            config: SolverConfig::default(),
            stamps: Arc::new(AtomicU64::new(0)),
            cache: Arc::new(Mutex::new(CacheState {
                entries: HashMap::new(),
                stamp: 0,
                capacity: DEFAULT_CACHE_CAPACITY,
            })),
            domain_gen: 0,
            last_witness: None,
            structure: None,
            tree_states: HashMap::new(),
            stats: IncrementalStats::default(),
        }
    }

    /// Seeds the solver with an existing problem's domains,
    /// constraints and variables of interest.
    pub fn from_problem(problem: &Scsp<S>) -> (IncrementalSolver<S>, Vec<ConstraintId>) {
        let mut solver = IncrementalSolver::new(problem.semiring().clone());
        for (v, d) in problem.domains().iter() {
            solver.declare(v.clone(), d.clone());
        }
        solver.con = problem.con().to_vec();
        let ids = problem
            .constraints()
            .iter()
            .map(|c| solver.add_constraint(c.clone()))
            .collect();
        (solver, ids)
    }

    /// Builder-style domain declaration.
    pub fn with_domain(mut self, var: impl Into<Var>, domain: Domain) -> IncrementalSolver<S> {
        self.declare(var, domain);
        self
    }

    /// Builder-style variables of interest (sorted and de-duplicated,
    /// matching [`Scsp::of_interest`]).
    pub fn of_interest<V: Into<Var>>(
        mut self,
        vars: impl IntoIterator<Item = V>,
    ) -> IncrementalSolver<S> {
        self.con = vars.into_iter().map(Into::into).collect();
        self.con.sort();
        self.con.dedup();
        self.structure = None;
        self
    }

    /// Builder-style search configuration for dirty components.
    pub fn with_config(mut self, order: VarOrder, config: SolverConfig) -> IncrementalSolver<S> {
        self.order = order;
        self.config = config;
        self
    }

    /// Builder-style bound on the shared component cache.
    pub fn with_cache_capacity(self, capacity: usize) -> IncrementalSolver<S> {
        self.cache.lock().unwrap().capacity = capacity.max(1);
        self
    }

    /// Allocates a fresh globally unique stamp (id, version, or
    /// domain generation) from the counter shared across clones.
    fn next_stamp(&self) -> u64 {
        self.stamps.fetch_add(1, Ordering::Relaxed)
    }

    /// Declares (or re-declares) a variable's domain.
    ///
    /// Re-declaration moves the solver to a fresh domain generation,
    /// invalidating every cached component and the warm-start witness:
    /// cached results are only sound against the domains they were
    /// computed over. The generation is a globally unique stamp (`+ 1`
    /// keeps it distinct from the initial generation `0` every clone
    /// starts at), so clones re-declaring the same variable with
    /// different domains never alias each other's cache entries.
    pub fn declare(&mut self, var: impl Into<Var>, domain: Domain) {
        let var = var.into();
        if self.domains.contains(&var) {
            self.domain_gen = self.next_stamp() + 1;
            self.last_witness = None;
        }
        self.domains.insert(var, domain);
    }

    /// Adds a constraint, returning its handle.
    pub fn add_constraint(&mut self, constraint: Constraint<S>) -> ConstraintId {
        let id = self.next_stamp();
        self.constraints.insert(
            id,
            Slot {
                version: 0,
                constraint,
            },
        );
        self.stats.deltas += 1;
        self.structure = None;
        ConstraintId(id)
    }

    /// Removes a constraint, returning it; `None` for unknown or
    /// already-retracted handles.
    pub fn retract_constraint(&mut self, id: ConstraintId) -> Option<Constraint<S>> {
        let slot = self.constraints.remove(&id.0)?;
        self.stats.deltas += 1;
        self.structure = None;
        Some(slot.constraint)
    }

    /// Replaces the constraint behind `id`, returning the previous
    /// definition; `None` (and no change) for unknown handles.
    pub fn update_constraint(
        &mut self,
        id: ConstraintId,
        constraint: Constraint<S>,
    ) -> Option<Constraint<S>> {
        // The new content gets a globally unique version stamp, never
        // a per-clone increment: two clones updating the same id with
        // different constraints must key the shared cache differently.
        // `+ 1` keeps update stamps distinct from the original
        // content's version `0`.
        let version = self.next_stamp() + 1;
        let slot = self.constraints.get_mut(&id.0)?;
        slot.version = version;
        self.stats.deltas += 1;
        if slot.constraint.scope() != constraint.scope() {
            self.structure = None;
        }
        Some(std::mem::replace(&mut slot.constraint, constraint))
    }

    /// The constraint currently behind `id`, if any.
    pub fn constraint(&self, id: ConstraintId) -> Option<&Constraint<S>> {
        self.constraints.get(&id.0).map(|s| &s.constraint)
    }

    /// Iterates over the live constraints in id order.
    pub fn constraints(&self) -> impl Iterator<Item = (ConstraintId, &Constraint<S>)> {
        self.constraints
            .iter()
            .map(|(id, s)| (ConstraintId(*id), &s.constraint))
    }

    /// The number of live constraints.
    pub fn len(&self) -> usize {
        self.constraints.len()
    }

    /// Whether no constraints are registered.
    pub fn is_empty(&self) -> bool {
        self.constraints.is_empty()
    }

    /// Work-avoidance counters accumulated so far.
    pub fn stats(&self) -> &IncrementalStats {
        &self.stats
    }

    /// The current problem as a fresh [`Scsp`] — the from-scratch
    /// baseline the differential test harness solves alongside.
    pub fn problem(&self) -> Scsp<S> {
        let mut p = Scsp::new(self.semiring.clone());
        for (v, d) in self.domains.iter() {
            p.add_domain(v.clone(), d.clone());
        }
        for slot in self.constraints.values() {
            p.add_constraint(slot.constraint.clone());
        }
        p.of_interest(self.con.iter().cloned())
    }

    /// The problem variables: constraint scopes ∪ `con`, sorted
    /// (mirrors [`Scsp::problem_vars`]).
    fn problem_vars(&self) -> Vec<Var> {
        let mut vars: Vec<Var> = self
            .constraints
            .values()
            .flat_map(|s| s.constraint.scope().iter().cloned())
            .chain(self.con.iter().cloned())
            .collect();
        vars.sort();
        vars.dedup();
        vars
    }

    /// The memoised constraint-graph decomposition, rebuilt (with the
    /// union-find of [`constraint_components`](super::constraint_components),
    /// without materialising an [`Scsp`]) only after a scope-changing
    /// delta.
    fn structure(&mut self) -> Arc<Structure> {
        if let Some(structure) = &self.structure {
            return Arc::clone(structure);
        }
        let vars = self.problem_vars();
        let pos: BTreeMap<&Var, usize> = vars.iter().zip(0..).collect();
        let mut parent: Vec<usize> = (0..vars.len()).collect();
        fn find(parent: &mut [usize], i: usize) -> usize {
            let mut root = i;
            while parent[root] != root {
                root = parent[root];
            }
            let mut walk = i;
            while parent[walk] != root {
                let next = parent[walk];
                parent[walk] = root;
                walk = next;
            }
            root
        }
        let mut constants = Vec::new();
        for (id, slot) in &self.constraints {
            let mut scope = slot.constraint.scope().iter();
            let Some(first) = scope.next() else {
                constants.push(*id);
                continue;
            };
            let anchor = find(&mut parent, pos[first]);
            for v in scope {
                let root = find(&mut parent, pos[v]);
                parent[root] = anchor;
            }
        }
        let mut groups: BTreeMap<usize, (Vec<Var>, Vec<u64>)> = BTreeMap::new();
        for (i, v) in vars.iter().enumerate() {
            let root = find(&mut parent, i);
            groups.entry(root).or_default().0.push(v.clone());
        }
        // BTreeMap iteration yields ids in order, so member lists come
        // out sorted.
        for (id, slot) in &self.constraints {
            if let Some(first) = slot.constraint.scope().first() {
                let root = find(&mut parent, pos[first]);
                groups
                    .get_mut(&root)
                    .expect("scope var grouped")
                    .1
                    .push(*id);
            }
        }
        let mut components: Vec<(Vec<Var>, Vec<u64>)> = groups.into_values().collect();
        components.sort();
        let components = components
            .into_iter()
            .map(|(vars, members)| (Arc::new(vars), members))
            .collect();
        let structure = Arc::new(Structure {
            components,
            constants,
        });
        self.structure = Some(Arc::clone(&structure));
        structure
    }

    /// An achievable incumbent for a dirty component: the previous
    /// full witness restricted to the component, re-evaluated on the
    /// component's *current* constraints. Only offered on exact-`×`
    /// semirings — see the module docs.
    fn warm_seed(
        &self,
        comp: &[Var],
        comp_constraints: &[(u64, u64, &Constraint<S>)],
    ) -> Option<S::Value> {
        if !self.semiring.is_total() {
            return None;
        }
        // Re-associating an inexact (floating-point) product can make
        // the seed unachievable under the search's own fold order; a
        // single-constraint component has nothing to re-associate, so
        // its evaluation is the search's level verbatim.
        if !self.semiring.exact_times() && comp_constraints.len() != 1 {
            return None;
        }
        let witness = self.last_witness.as_ref()?;
        // Every component variable must still be bound to a value in
        // its (current) domain.
        for v in comp.iter() {
            let val = witness.get(v)?;
            if !self.domains.get(v).ok()?.contains(val) {
                return None;
            }
        }
        let levels: Option<Vec<S::Value>> = comp_constraints
            .iter()
            .map(|(_, _, c)| c.try_eval(witness).ok())
            .collect();
        let seed = self.semiring.product(levels.as_ref()?.iter());
        (!self.semiring.is_zero(&seed)).then_some(seed)
    }

    /// Solves the current problem, replaying clean components from the
    /// shared cache and re-searching only dirty ones.
    ///
    /// The returned [`Solution`] is equivalent to solving
    /// [`problem`](IncrementalSolver::problem) from scratch: identical
    /// `blevel`, and a best assignment (when one exists) that attains
    /// it.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::MissingDomain`] if a constraint scope or
    /// `con` variable has no declared domain.
    pub fn solve(&mut self) -> Result<Solution<S>, SolveError> {
        self.stats.solves += 1;
        let structure = self.structure();
        // Constants (empty-scope constraints) contribute a global
        // factor outside every component.
        let constant = self.semiring.product(
            structure
                .constants
                .iter()
                .map(|id| self.constraints[id].constraint.eval_tuple(&[]))
                .collect::<Vec<_>>()
                .iter(),
        );

        let mut blevel = constant;
        let mut witness = Assignment::new();
        let mut complete = true;
        for (comp, members) in &structure.components {
            self.stats.components_seen += 1;
            // Member lists are id-sorted, so the signature needs no
            // extra sort.
            let comp_constraints: Vec<(u64, u64, &Constraint<S>)> = members
                .iter()
                .map(|id| {
                    let slot = &self.constraints[id];
                    (*id, slot.version, &slot.constraint)
                })
                .collect();
            let key = ComponentKey {
                vars: Arc::clone(comp),
                parts: comp_constraints
                    .iter()
                    .map(|(id, v, _)| (*id, *v))
                    .collect(),
                domain_gen: self.domain_gen,
            };
            let cached = self.cache.lock().unwrap().touch(&key);
            let (comp_blevel, comp_witness) = if let Some(hit) = cached {
                self.stats.components_reused += 1;
                hit
            } else {
                self.stats.components_resolved += 1;
                let mut part = Scsp::new(self.semiring.clone());
                for v in comp.iter() {
                    part.add_domain(v.clone(), self.domains.get(v)?.clone());
                }
                for (_, _, c) in &comp_constraints {
                    part.add_constraint((*c).clone());
                }
                // con = all component variables, so the witness is a
                // full assignment reusable as a future warm seed.
                let part = part.of_interest(comp.iter().cloned());
                // Tree engines first: a persistent per-component
                // bucket tree lets a content-only delta recompute just
                // the touched cluster and its ancestors. `None` means
                // the component is too wide for the cap — fall through
                // to search (which re-plans and may seed itself from
                // the tree-guided greedy bound).
                let tree = if self.semiring.is_total() && self.config.engine != Engine::BranchBound
                {
                    if self.tree_states.len() >= TREE_STATE_CAPACITY
                        && !self.tree_states.contains_key(comp)
                    {
                        self.tree_states.clear();
                    }
                    let gen = self.domain_gen;
                    let entry = self
                        .tree_states
                        .entry(Arc::clone(comp))
                        .or_insert((gen, None));
                    if entry.0 != gen {
                        // Tables are only sound against the domains
                        // they were filled from.
                        *entry = (gen, None);
                    }
                    treedec::solve_incremental(&part, &key.parts, &mut entry.1, &self.config)?
                } else {
                    None
                };
                let solution = match tree {
                    Some((solution, reuse)) => {
                        self.stats.clusters_reused += reuse.reused;
                        self.stats.clusters_recomputed += reuse.recomputed;
                        solution
                    }
                    None if self.semiring.is_total() => {
                        let solver = BranchAndBound::with_config(self.order, self.config);
                        match self.warm_seed(comp, &comp_constraints) {
                            Some(seed) => {
                                self.stats.warm_seeds += 1;
                                solver.solve_seeded(&part, seed)?
                            }
                            None => solver.solve(&part)?,
                        }
                    }
                    None => EnumerationSolver::new().solve(&part)?,
                };
                let result = (
                    solution.blevel().clone(),
                    solution.best_assignment().cloned(),
                );
                self.cache
                    .lock()
                    .unwrap()
                    .insert(key, result.0.clone(), result.1.clone());
                result
            };
            blevel = self.semiring.times(&blevel, &comp_blevel);
            match comp_witness {
                Some(w) => witness = witness.merged(&w),
                None => complete = false,
            }
        }

        if complete && !self.semiring.is_zero(&blevel) {
            self.last_witness = Some(witness.clone());
            let best = witness
                .tuple(&self.con)
                .map(|tuple| vec![(Assignment::from_tuple(&self.con, &tuple), blevel.clone())])
                .unwrap_or_default();
            Ok(Solution::new(blevel, best, None))
        } else {
            self.last_witness = None;
            Ok(Solution::new(blevel, Vec::new(), None))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vars;
    use softsoa_semiring::{Fuzzy, Unit, WeightedInt};

    fn pair_cost(a: &str, b: &str, base: u64) -> Constraint<WeightedInt> {
        Constraint::binary(WeightedInt, a, b, move |x, y| {
            base + (x.as_int().unwrap() * 2 + y.as_int().unwrap()) as u64
        })
    }

    fn churn_solver() -> (IncrementalSolver<WeightedInt>, ConstraintId, ConstraintId) {
        let mut solver = IncrementalSolver::new(WeightedInt)
            .with_domain("a", Domain::ints(0..=2))
            .with_domain("b", Domain::ints(0..=2))
            .with_domain("c", Domain::ints(0..=2))
            .with_domain("d", Domain::ints(0..=2))
            .of_interest(["a", "c"]);
        let ab = solver.add_constraint(pair_cost("a", "b", 1));
        let cd = solver.add_constraint(pair_cost("c", "d", 4));
        (solver, ab, cd)
    }

    fn assert_matches_scratch(solver: &mut IncrementalSolver<WeightedInt>) {
        let scratch = solver.problem().solve().expect("scratch solve");
        let incremental = solver.solve().expect("incremental solve");
        assert_eq!(incremental.blevel(), scratch.blevel());
        if let Some(best) = incremental.best_assignment() {
            // Witness validity: the incremental witness must attain
            // the blevel on the *full* problem.
            let p = solver.problem();
            let full = solver
                .last_witness
                .clone()
                .expect("complete witness recorded");
            let level = p.semiring().product(
                p.constraints()
                    .iter()
                    .map(|c| c.eval(&full))
                    .collect::<Vec<_>>()
                    .iter(),
            );
            assert_eq!(&level, incremental.blevel());
            assert!(best.tuple(p.con()).is_some());
        }
    }

    #[test]
    fn matches_scratch_through_delta_sequence() {
        let (mut solver, ab, cd) = churn_solver();
        assert_matches_scratch(&mut solver);
        assert_eq!(*solver.solve().unwrap().blevel(), 5);

        // Tighten the cd cluster.
        solver.update_constraint(cd, pair_cost("c", "d", 9));
        assert_matches_scratch(&mut solver);
        assert_eq!(*solver.solve().unwrap().blevel(), 10);

        // Retract it entirely: only the ab cluster (and the bare con
        // var c) remain.
        solver.retract_constraint(cd);
        assert_matches_scratch(&mut solver);
        assert_eq!(*solver.solve().unwrap().blevel(), 1);

        // Re-add and also retract ab.
        solver.add_constraint(pair_cost("c", "d", 2));
        solver.retract_constraint(ab);
        assert_matches_scratch(&mut solver);
        assert_eq!(*solver.solve().unwrap().blevel(), 2);
    }

    #[test]
    fn clean_components_are_reused() {
        let (mut solver, _ab, cd) = churn_solver();
        solver.solve().unwrap();
        let resolved_cold = solver.stats().components_resolved;
        assert_eq!(solver.stats().components_reused, 0);

        // Touch only the cd cluster; ab must replay from cache.
        solver.update_constraint(cd, pair_cost("c", "d", 7));
        solver.solve().unwrap();
        let stats = solver.stats();
        assert_eq!(stats.components_reused, 1, "ab replayed");
        assert_eq!(
            stats.components_resolved,
            resolved_cold + 1,
            "only cd re-searched"
        );
        assert!(stats.reuse_ratio() > 0.0);

        // An identical re-solve reuses everything.
        solver.solve().unwrap();
        assert_eq!(solver.stats().components_resolved, resolved_cold + 1);
    }

    #[test]
    fn tightening_update_warm_starts_from_previous_optimum() {
        let (mut solver, _ab, cd) = churn_solver();
        solver.solve().unwrap();
        assert_eq!(solver.stats().warm_seeds, 0);
        solver.update_constraint(cd, pair_cost("c", "d", 11));
        let solution = solver.solve().unwrap();
        assert_eq!(*solution.blevel(), 12);
        assert_eq!(solver.stats().warm_seeds, 1);
    }

    #[test]
    fn zero_component_yields_empty_best() {
        let mut solver = IncrementalSolver::new(Fuzzy)
            .with_domain("x", Domain::ints(0..=1))
            .of_interest(["x"]);
        let id = solver.add_constraint(Constraint::unary(Fuzzy, "x", |_| Unit::MIN));
        let solution = solver.solve().unwrap();
        assert_eq!(*solution.blevel(), Unit::MIN);
        assert!(solution.best().is_empty());

        solver.update_constraint(id, Constraint::unary(Fuzzy, "x", |_| Unit::clamped(0.8)));
        let solution = solver.solve().unwrap();
        assert_eq!(*solution.blevel(), Unit::clamped(0.8));
        assert!(solution.best_assignment().is_some());
    }

    #[test]
    fn isolated_interest_variables_form_components() {
        let mut solver = IncrementalSolver::new(WeightedInt)
            .with_domain("x", Domain::ints(0..=1))
            .with_domain("y", Domain::ints(0..=1))
            .of_interest(["x", "y"]);
        let solution = solver.solve().unwrap();
        assert_eq!(*solution.blevel(), 0u64);
        let best = solution.best_assignment().expect("free best");
        assert!(best.tuple(&vars(["x", "y"])).is_some());
    }

    #[test]
    fn domain_redeclaration_invalidates_cache() {
        let (mut solver, _ab, _cd) = churn_solver();
        solver.solve().unwrap();
        let resolved = solver.stats().components_resolved;
        solver.declare("a", Domain::ints(1..=2));
        solver.solve().unwrap();
        // Both components re-searched: the generation bump invalidates
        // everything (conservative, but sound).
        assert_eq!(solver.stats().components_resolved, resolved + 2);
        assert_eq!(*solver.solve().unwrap().blevel(), 7);
    }

    #[test]
    fn cache_stays_bounded_under_churn() {
        let (solver, _ab, cd) = churn_solver();
        let mut solver = solver.with_cache_capacity(4);
        for round in 0..64u64 {
            solver.update_constraint(cd, pair_cost("c", "d", round));
            solver.solve().unwrap();
        }
        assert!(solver.cache.lock().unwrap().entries.len() <= 4);
    }

    #[test]
    fn diverging_clone_updates_never_alias_the_shared_cache() {
        // Regression: versions used to be per-slot counters, so two
        // clones that updated the same id with different constraints
        // both reached version 1 — identical ComponentKeys — and the
        // second clone replayed the first clone's cached result.
        // Version stamps now come from the shared allocator.
        let (solver, _ab, cd) = churn_solver();
        let mut left = solver.clone();
        let mut right = solver;
        left.update_constraint(cd, pair_cost("c", "d", 20));
        right.update_constraint(cd, pair_cost("c", "d", 40));
        assert_eq!(*left.solve().unwrap().blevel(), 21);
        assert_eq!(*right.solve().unwrap().blevel(), 41);
        assert_matches_scratch(&mut left);
        assert_matches_scratch(&mut right);
    }

    #[test]
    fn diverging_clone_redeclarations_never_alias_the_shared_cache() {
        // Same regression for domain generations: one re-declare used
        // to put every clone at generation 1 regardless of content.
        let (solver, _ab, _cd) = churn_solver();
        let mut left = solver.clone();
        let mut right = solver;
        left.declare("a", Domain::ints(1..=2));
        right.declare("a", Domain::ints(2..=2));
        assert_eq!(*left.solve().unwrap().blevel(), 7);
        assert_eq!(*right.solve().unwrap().blevel(), 9);
        assert_matches_scratch(&mut left);
        assert_matches_scratch(&mut right);
    }

    #[test]
    fn tree_engine_matches_search_and_reuses_clusters() {
        let mut solver = IncrementalSolver::new(WeightedInt).with_config(
            VarOrder::Input,
            SolverConfig::default().with_tree_decompose(8),
        );
        for i in 0..6 {
            solver.declare(format!("v{i}"), Domain::ints(0..=2));
        }
        solver = solver.of_interest((0..6).map(|i| format!("v{i}")));
        let mut ids = Vec::new();
        for i in 0..5 {
            ids.push(solver.add_constraint(pair_cost(&format!("v{i}"), &format!("v{}", i + 1), i)));
        }
        assert_matches_scratch(&mut solver);
        let cold = solver.stats().clusters_recomputed;
        assert_eq!(cold, 6, "one bucket per variable, all computed cold");

        // Content-only delta in the middle of the chain: only the
        // touched bucket and its ancestor path recompute.
        solver.update_constraint(ids[2], pair_cost("v2", "v3", 50));
        assert_matches_scratch(&mut solver);
        let stats = solver.stats();
        assert!(stats.clusters_reused > 0, "leaf clusters replayed");
        assert!(stats.clusters_recomputed < cold + 6, "not a full rebuild");

        // A clone starts with cold tree state but stays equivalent.
        let mut clone = solver.clone();
        clone.update_constraint(ids[0], pair_cost("v0", "v1", 9));
        assert_matches_scratch(&mut clone);
    }

    #[test]
    fn clones_share_ids_and_cache() {
        let (solver, _ab, _cd) = churn_solver();
        let mut left = solver.clone();
        let mut right = solver;
        left.solve().unwrap();
        // The clone's identical components replay from the shared
        // cache without any search of its own.
        right.solve().unwrap();
        assert_eq!(right.stats().components_resolved, 0);
        assert_eq!(right.stats().components_reused, 2);
        // Ids allocated after the split never collide.
        let l = left.add_constraint(Constraint::constant(WeightedInt, 1));
        let r = right.add_constraint(Constraint::constant(WeightedInt, 2));
        assert_ne!(l, r);
    }
}
