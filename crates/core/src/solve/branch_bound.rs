//! Depth-first branch-and-bound search.

use std::sync::Mutex;
use std::time::Instant;

use softsoa_semiring::Semiring;

use crate::compile::CompiledProblem;
use crate::solve::bucket::MiniBucketBound;
use crate::solve::decompose::Decomposition;
use crate::solve::parallel::fan_out;
use crate::solve::propagate::{PropagationStats, Propagator};
use crate::solve::treedec::{self, TreeAttempt};
use crate::solve::{
    Parallelism, PropagationMode, Solution, SolveError, Solver, SolverConfig, SolverStats,
};
use crate::{Assignment, Scsp, Val, Var};

/// Variable-ordering heuristics for [`BranchAndBound`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub enum VarOrder {
    /// The problem's natural (sorted) variable order.
    #[default]
    Input,
    /// Smallest domain first (fail-first).
    SmallestDomain,
    /// Variable appearing in the most constraints first.
    MostConstrained,
    /// Greedy combined ordering: repeatedly pick the unplaced variable
    /// with the smallest domain, breaking ties towards the one that
    /// *completes* the most constraint scopes given everything placed
    /// so far (so constraints start pruning at the shallowest possible
    /// depth), then towards the smallest variable name. Computed once
    /// per solve over the problem structure.
    Dynamic,
    /// Estimate-driven ordering (generalising [`VarOrder::Dynamic`]):
    /// a root soft arc-consistency pass first tightens per-variable
    /// candidate estimates, then variables are confirmed one at a
    /// time in a propose/confirm loop — every unplaced variable
    /// proposes its surviving candidate count, the smallest estimate
    /// wins, ties break towards completing the most constraint
    /// scopes, then towards the smallest name. Values are additionally
    /// visited best-supported-bound first. Preserves the exact
    /// `blevel`; the witness is guaranteed *valid* but — unlike the
    /// other orders — not bit-identical to [`VarOrder::Input`]'s,
    /// since value reordering changes which equally optimal
    /// assignment is found first. Requires the compiled engine; the
    /// lazy path falls back to the input order.
    Estimate,
}

/// A depth-first branch-and-bound solver for totally ordered semirings.
///
/// Exploits `×`-monotonicity — combining can only *worsen* a level
/// (`a × b ≤ a` in every c-semiring) — to prune any branch whose
/// partial combination already fails to beat the incumbent. Returns the
/// `blevel` and one witness assignment; it does **not** build the
/// solution table (see
/// [`Solution::solution_constraint`](crate::solve::Solution::solution_constraint)).
///
/// Behind the search sits a preprocessing-and-decomposition layer,
/// on by default (see [`SolverConfig`]): connected components of the
/// constraint graph solve independently in parallel
/// ([`SolverConfig::decompose`]), and a soft arc-consistency pass
/// prunes domain values that cannot appear in any optimal solution
/// ([`SolverConfig::propagate`]). Both preserve the exact `blevel`
/// and a valid witness on every semiring.
///
/// # Examples
///
/// ```
/// use softsoa_core::{Scsp, Constraint, Domain};
/// use softsoa_core::solve::{BranchAndBound, VarOrder, Solver};
/// use softsoa_semiring::WeightedInt;
///
/// let p = Scsp::new(WeightedInt)
///     .with_domain("x", Domain::ints(0..=99))
///     .with_constraint(Constraint::unary(WeightedInt, "x", |v| {
///         (v.as_int().unwrap() as u64).pow(2)
///     }))
///     .of_interest(["x"]);
/// let solution = BranchAndBound::new(VarOrder::SmallestDomain).solve(&p)?;
/// assert_eq!(*solution.blevel(), 0);
/// # Ok::<(), softsoa_core::SolveError>(())
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct BranchAndBound {
    order: VarOrder,
    config: SolverConfig,
}

impl BranchAndBound {
    /// Creates the solver with the given variable ordering and the
    /// default engine (compiled, automatic thread count, root
    /// propagation, component decomposition).
    pub fn new(order: VarOrder) -> BranchAndBound {
        BranchAndBound {
            order,
            config: SolverConfig::default(),
        }
    }

    /// Creates the solver with an explicit engine configuration.
    pub fn with_config(order: VarOrder, config: SolverConfig) -> BranchAndBound {
        BranchAndBound { order, config }
    }

    fn order_vars<S: Semiring>(&self, problem: &Scsp<S>) -> Result<Vec<Var>, SolveError> {
        let mut vars = problem.problem_vars();
        match self.order {
            // `Estimate` is resolved inside the compiled engine (it
            // needs a root propagation pass); elsewhere it degrades
            // to the input order.
            VarOrder::Input | VarOrder::Estimate => {}
            VarOrder::SmallestDomain => {
                let mut keyed: Vec<(usize, Var)> = vars
                    .into_iter()
                    .map(|v| Ok((problem.domains().get(&v)?.len(), v)))
                    .collect::<Result<_, SolveError>>()?;
                keyed.sort();
                vars = keyed.into_iter().map(|(_, v)| v).collect();
            }
            VarOrder::MostConstrained => {
                let mut keyed: Vec<(usize, Var)> = vars
                    .into_iter()
                    .map(|v| {
                        let degree = problem
                            .constraints()
                            .iter()
                            .filter(|c| c.scope().contains(&v))
                            .count();
                        (usize::MAX - degree, v)
                    })
                    .collect();
                keyed.sort();
                vars = keyed.into_iter().map(|(_, v)| v).collect();
            }
            VarOrder::Dynamic => {
                let mut remaining = vars;
                let mut placed: Vec<Var> = Vec::with_capacity(remaining.len());
                while !remaining.is_empty() {
                    let mut best = 0;
                    let mut best_key = (usize::MAX, usize::MAX);
                    for (i, v) in remaining.iter().enumerate() {
                        let domain = problem.domains().get(v)?.len();
                        // Scopes newly fully covered by placed ∪ {v}.
                        let completes = problem
                            .constraints()
                            .iter()
                            .filter(|c| {
                                c.scope().contains(v)
                                    && c.scope().iter().all(|u| u == v || placed.contains(u))
                            })
                            .count();
                        // `remaining` stays sorted, so strict `<` makes
                        // ties fall to the smallest variable name.
                        let key = (domain, usize::MAX - completes);
                        if key < best_key {
                            best_key = key;
                            best = i;
                        }
                    }
                    placed.push(remaining.remove(best));
                }
                vars = placed;
            }
        }
        Ok(vars)
    }
}

/// The propose/confirm ordering loop behind [`VarOrder::Estimate`]:
/// each unplaced variable proposes its post-propagation candidate
/// count, the smallest is confirmed, ties break towards the variable
/// completing the most operand scopes given the confirmed prefix,
/// then towards the smallest name (`vars` is visited in compiled
/// order, which here is sorted).
fn estimate_order<S: Semiring>(pre: &CompiledProblem<S>, prop: &Propagator<S>) -> Vec<Var> {
    let vars = pre.vars();
    let mut remaining: Vec<usize> = (0..vars.len()).collect();
    let mut placed = vec![false; vars.len()];
    let mut out = Vec::with_capacity(vars.len());
    while !remaining.is_empty() {
        let mut best = 0;
        let mut best_key = (usize::MAX, usize::MAX);
        for (slot, &pos) in remaining.iter().enumerate() {
            let completes = (0..pre.num_operands())
                .filter(|&oi| {
                    let emb = pre.operand_scope(oi);
                    !emb.is_empty()
                        && emb.contains(&pos)
                        && emb.iter().all(|&q| q == pos || placed[q])
                })
                .count();
            let key = (prop.live_count(pos), usize::MAX - completes);
            if key < best_key {
                best_key = key;
                best = slot;
            }
        }
        let pos = remaining.remove(best);
        placed[pos] = true;
        out.push(vars[pos].clone());
    }
    out
}

/// Per-depth value visit orders for [`VarOrder::Estimate`]: live
/// values sorted best root support-bound first, ties towards the
/// smaller domain index.
fn value_orders<S: Semiring>(
    compiled: &CompiledProblem<S>,
    prop: &Propagator<S>,
) -> Vec<Vec<usize>> {
    let semiring = compiled.semiring();
    (0..compiled.vars().len())
        .map(|pos| {
            let bounds: Vec<S::Value> = (0..compiled.sizes()[pos])
                .map(|d| prop.value_bound(pos, d))
                .collect();
            let mut order: Vec<usize> = (0..compiled.sizes()[pos]).collect();
            order.sort_by(|&a, &b| {
                semiring
                    .partial_cmp(&bounds[b], &bounds[a])
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(a.cmp(&b))
            });
            order
        })
        .collect()
}

/// Node-time pruning state of one search worker.
enum Pruner<'a, S: Semiring> {
    /// Blind search ([`PropagationMode::Off`]).
    Off,
    /// Shared read-only live masks from the root fixpoint
    /// ([`PropagationMode::Root`]).
    Masks(&'a Propagator<'a, S>),
    /// A private incremental propagator re-run at every node
    /// ([`PropagationMode::Full`]).
    Mac(Box<Propagator<'a, S>>),
}

impl BranchAndBound {
    /// The compiled engine: DFS over domain-index tuples with dense
    /// operand tables, the outermost variable's values split across
    /// worker threads. Workers share a best-bound; a branch is cut
    /// when it is *strictly* below the shared bound (safe for any
    /// foreign bound) or when the sequential prune condition holds
    /// against the worker's own incumbent — so the merged result,
    /// taken in chunk order, reproduces the sequential witness. The
    /// same strictness discipline governs the soft arc-consistency
    /// prunes: a domain value is removed only when its best bound is
    /// `0` or strictly below an achievable floor, which keeps the
    /// first optimal assignment intact.
    fn solve_compiled<S: Semiring>(
        &self,
        problem: &Scsp<S>,
        seed: Option<S::Value>,
    ) -> Result<Solution<S>, SolveError> {
        let start = Instant::now();
        let semiring = problem.semiring().clone();
        let floor = seed.unwrap_or_else(|| semiring.zero());
        // Propagation bounds are products re-associated away from the
        // search's own combination order; comparing them against an
        // achievable floor is only sound when `×` is exact. On
        // rounding semirings propagation keeps the zero-prune only.
        let prop_floor = if semiring.exact_times() {
            floor.clone()
        } else {
            semiring.zero()
        };

        // `Estimate` orders from a pre-pass: compile in sorted order,
        // propagate at the root, and run the propose/confirm loop on
        // the tightened candidate counts.
        let vars = if self.order == VarOrder::Estimate {
            let pre = CompiledProblem::with_order(problem, problem.problem_vars())?;
            let mut pre_prop = Propagator::new(&pre);
            if !pre_prop.root(&prop_floor) {
                let stats = SolverStats {
                    threads: 1,
                    compile_time: pre.compile_time(),
                    solve_time: start.elapsed(),
                    propagation: Some(pre_prop.take_stats()),
                    ..SolverStats::default()
                };
                return Ok(Solution::new(semiring.zero(), Vec::new(), None).with_stats(stats));
            }
            estimate_order(&pre, &pre_prop)
        } else {
            self.order_vars(problem)?
        };
        let compiled = CompiledProblem::with_order(problem, vars)?;

        // Root propagation: prune values that cannot reach the floor
        // (the warm seed when present, `0` otherwise). `Estimate`
        // needs the pass for its value orders even when the config
        // says `Off`.
        let propagate = match self.config.propagate {
            PropagationMode::Off if self.order == VarOrder::Estimate => PropagationMode::Root,
            mode => mode,
        };
        let mut root_prop = match propagate {
            PropagationMode::Off => None,
            _ => Some(Propagator::new(&compiled)),
        };
        let mut pstats: Option<PropagationStats> = None;
        if let Some(prop) = &mut root_prop {
            let alive = prop.root(&prop_floor);
            let snapshot = prop.take_stats();
            if !alive {
                // Some variable has no value that can reach the
                // floor: with a cold floor of `0` the problem is
                // inconsistent, and the blind engine would likewise
                // report `blevel = 0` with no witness.
                let stats = SolverStats {
                    threads: 1,
                    compile_time: compiled.compile_time(),
                    solve_time: start.elapsed(),
                    propagation: Some(snapshot),
                    ..SolverStats::default()
                };
                return Ok(Solution::new(semiring.zero(), Vec::new(), None).with_stats(stats));
            }
            pstats = Some(snapshot);
        }
        let val_order: Option<Vec<Vec<usize>>> = (self.order == VarOrder::Estimate)
            .then(|| value_orders(&compiled, root_prop.as_ref().expect("estimate propagated")));

        let bound = self
            .config
            .ibound
            .map(|ibound| MiniBucketBound::new(&compiled, ibound));
        let threads = self.config.parallelism.thread_count(compiled.outer_size());
        // An achievable seed enters the search as a pre-published
        // foreign bound: workers cut branches *strictly* below it, which
        // never touches the first assignment attaining the optimum.
        let shared: Mutex<S::Value> = Mutex::new(floor.clone());
        let full = propagate == PropagationMode::Full;
        let workers = fan_out(threads, compiled.outer_size(), |range| {
            let pruner = match &root_prop {
                None => Pruner::Off,
                Some(prop) if full => Pruner::Mac(Box::new(prop.clone())),
                Some(prop) => Pruner::Masks(prop),
            };
            let mut worker = BnbWorker {
                semiring: &semiring,
                compiled: &compiled,
                bounds: bound.as_ref().map(|b| b.bounds()),
                pruner,
                exact_times: semiring.exact_times(),
                val_order: val_order.as_deref(),
                shared: &shared,
                foreign: floor.clone(),
                since_refresh: 0,
                idx: vec![0; compiled.vars().len()],
                scratch: Vec::new(),
                best_value: semiring.zero(),
                witness: None,
                nodes: 0,
                budget: self.config.node_budget,
                exhausted: false,
                prunings: 0,
                bound_prunes: 0,
                evals: vec![0; compiled.num_operands()],
            };
            worker.run(range);
            let prop_stats = match worker.pruner {
                Pruner::Mac(mut prop) => Some(prop.take_stats()),
                _ => None,
            };
            (
                worker.best_value,
                worker.witness,
                worker.nodes,
                worker.prunings,
                worker.bound_prunes,
                worker.evals,
                prop_stats,
                worker.exhausted,
            )
        });

        // Merge in chunk order with strict improvement only — exactly
        // the sequential first-witness rule across chunk boundaries.
        let mut best_value = semiring.zero();
        let mut witness: Option<Vec<usize>> = None;
        let mut stats = SolverStats {
            threads,
            compile_time: compiled.compile_time(),
            constraint_evals: Vec::new(),
            ..SolverStats::default()
        };
        let mut evals = vec![0u64; compiled.num_operands()];
        let mut exhausted = false;
        for (
            value,
            wit,
            nodes,
            prunings,
            bound_prunes,
            worker_evals,
            prop_stats,
            worker_exhausted,
        ) in workers
        {
            exhausted |= worker_exhausted;
            stats.nodes += nodes;
            stats.prunings += prunings;
            stats.bound_prunes += bound_prunes;
            stats.thread_nodes.push(nodes);
            for (acc, e) in evals.iter_mut().zip(&worker_evals) {
                *acc += e;
            }
            if let Some(worker_pstats) = prop_stats {
                match &mut pstats {
                    Some(acc) => acc.absorb(&worker_pstats),
                    None => pstats = Some(worker_pstats),
                }
            }
            if wit.is_some() && semiring.lt(&best_value, &value) {
                best_value = value;
                witness = wit;
            }
        }
        stats.constraint_evals = compiled.eval_stats(&evals);
        stats.propagation = pstats;
        stats.solve_time = start.elapsed();
        if exhausted {
            return Err(SolveError::NodeBudgetExceeded {
                budget: self.config.node_budget.unwrap_or(0),
            });
        }

        let best = match witness {
            Some(idx) if !semiring.is_zero(&best_value) => {
                let con_eta = compiled.con_assignment(&idx);
                vec![(con_eta, best_value.clone())]
            }
            _ => Vec::new(),
        };
        Ok(Solution::new(best_value, best, None).with_stats(stats))
    }

    fn solve_lazy<S: Semiring>(
        &self,
        problem: &Scsp<S>,
        seed: Option<S::Value>,
    ) -> Result<Solution<S>, SolveError> {
        let start = Instant::now();
        let semiring = problem.semiring().clone();
        let vars = self.order_vars(problem)?;
        // Validate domains up front so the search cannot fail mid-way.
        let domains: Vec<&crate::Domain> = vars
            .iter()
            .map(|v| problem.domains().get(v).map_err(SolveError::from))
            .collect::<Result<_, _>>()?;

        // For each constraint: the depth at which its scope is fully
        // assigned, and the positions of its scope vars in `vars`.
        let mut completing: Vec<Vec<(usize, Vec<usize>)>> = vec![Vec::new(); vars.len() + 1];
        for (ci, c) in problem.constraints().iter().enumerate() {
            let positions: Vec<usize> = c
                .scope()
                .iter()
                .map(|v| vars.iter().position(|u| u == v).expect("scope var ordered"))
                .collect();
            let depth = positions.iter().copied().max().map_or(0, |d| d + 1);
            completing[depth].push((ci, positions));
        }

        let mut search = Search {
            semiring: semiring.clone(),
            problem,
            vars: &vars,
            domains: &domains,
            completing: &completing,
            slots: vec![None; vars.len()],
            floor: seed.unwrap_or_else(|| semiring.zero()),
            best_value: semiring.zero(),
            best_assignment: None,
            nodes: 0,
            budget: self.config.node_budget,
            exhausted: false,
            prunings: 0,
        };

        // Constraints with empty scope complete at depth 0.
        let root = search.apply_completed(0, semiring.one());
        search.dfs(0, root);
        if search.exhausted {
            return Err(SolveError::NodeBudgetExceeded {
                budget: self.config.node_budget.unwrap_or(0),
            });
        }

        let stats = SolverStats {
            nodes: search.nodes,
            prunings: search.prunings,
            threads: 1,
            solve_time: start.elapsed(),
            ..SolverStats::default()
        };
        let best_value = search.best_value;
        let best = match search.best_assignment {
            Some(full) if !semiring.is_zero(&best_value) => {
                let con_eta: Assignment = problem
                    .con()
                    .iter()
                    .map(|v| (v.clone(), full.get(v).expect("assigned").clone()))
                    .collect();
                vec![(con_eta, best_value.clone())]
            }
            _ => Vec::new(),
        };
        Ok(Solution::new(best_value, best, None).with_stats(stats))
    }

    /// Solves each connected component independently (in parallel
    /// under the configured [`Parallelism`]) and combines the results
    /// with the semiring product. Returns `Ok(None)` when the problem
    /// does not split.
    fn solve_decomposed<S: Semiring>(
        &self,
        problem: &Scsp<S>,
    ) -> Result<Option<Solution<S>>, SolveError> {
        let Some(dec) = Decomposition::split(problem)? else {
            return Ok(None);
        };
        let start = Instant::now();
        let semiring = problem.semiring().clone();
        // Components run on the fan-out, so each inner solve stays
        // sequential; decomposition itself must not recurse.
        let inner = BranchAndBound::with_config(
            self.order,
            self.config
                .with_decompose(false)
                .with_parallelism(Parallelism::Sequential),
        );
        let threads = self.config.parallelism.thread_count(dec.parts.len());
        let results = fan_out(threads, dec.parts.len(), |range| {
            range
                .map(|i| inner.solve(&dec.parts[i]))
                .collect::<Vec<_>>()
        });

        let mut stats = SolverStats {
            threads,
            components: dec.parts.len(),
            ..SolverStats::default()
        };
        let mut blevel = dec.constant.clone();
        let mut witness = Assignment::new();
        let mut complete = true;
        for result in results.into_iter().flatten() {
            let solution = result?;
            if let Some(part_stats) = solution.stats() {
                stats.nodes += part_stats.nodes;
                stats.prunings += part_stats.prunings;
                stats.bound_prunes += part_stats.bound_prunes;
                stats.thread_nodes.push(part_stats.nodes);
                stats.compile_time += part_stats.compile_time;
                stats
                    .constraint_evals
                    .extend(part_stats.constraint_evals.iter().cloned());
                if let Some(part_prop) = &part_stats.propagation {
                    match &mut stats.propagation {
                        Some(acc) => acc.absorb(part_prop),
                        None => stats.propagation = Some(part_prop.clone()),
                    }
                }
            }
            blevel = semiring.times(&blevel, solution.blevel());
            match solution.best().first() {
                Some((eta, _)) => witness = witness.merged(eta),
                None => complete = false,
            }
        }
        stats.solve_time = start.elapsed();
        let best = if complete && !semiring.is_zero(&blevel) {
            vec![(witness, blevel.clone())]
        } else {
            Vec::new()
        };
        Ok(Some(Solution::new(blevel, best, None).with_stats(stats)))
    }

    /// Solves one (non-decomposable) problem under the configured
    /// [`Engine`](crate::solve::Engine): offers it to the tree engine
    /// first, then falls through to the search paths. A tree fallback's
    /// greedy bound joins any caller seed via `+` (the lub keeps the
    /// stronger incumbent), and its planning stats ride on the search
    /// solution.
    fn solve_single<S: Semiring>(
        &self,
        problem: &Scsp<S>,
        mut seed: Option<S::Value>,
    ) -> Result<Solution<S>, SolveError> {
        let mut tree_stats = None;
        match treedec::attempt(problem, &self.config)? {
            TreeAttempt::Solved(solution) => return Ok(*solution),
            TreeAttempt::Fallback { seed: bound, stats } => {
                tree_stats = Some(stats);
                if let Some(bound) = bound {
                    seed = Some(match seed {
                        Some(s) => problem.semiring().plus(&s, &bound),
                        None => bound,
                    });
                }
            }
            TreeAttempt::Declined => {}
        }
        let mut solution = if self.config.compiled {
            self.solve_compiled(problem, seed)?
        } else {
            self.solve_lazy(problem, seed)?
        };
        if let Some(tree) = tree_stats {
            match &mut solution.stats {
                Some(stats) => stats.tree = Some(tree),
                None => {
                    solution = solution.with_stats(SolverStats {
                        tree: Some(tree),
                        ..SolverStats::default()
                    })
                }
            }
        }
        Ok(solution)
    }
}

impl BranchAndBound {
    /// Solves with the incumbent floor seeded at `seed` — a level that
    /// is **achievable** on `problem`, i.e. the combined level of some
    /// complete assignment (typically a previous round's witness
    /// re-evaluated on the current constraints).
    ///
    /// The seed is pre-published as a foreign bound, so the search cuts
    /// every branch strictly below it from the first node on instead of
    /// discovering the level itself; `blevel` and witness are identical
    /// to a cold [`solve`](Solver::solve) (property-tested). Seeding an
    /// *unachievable* level is unsound: it can prune every witness.
    /// A multi-component problem under [`SolverConfig::decompose`]
    /// ignores the seed (a scalar cannot be split across components)
    /// and solves cold — same result, the warm speed-up just does not
    /// apply.
    ///
    /// # Errors
    ///
    /// As [`solve`](Solver::solve).
    pub fn solve_seeded<S: Semiring>(
        &self,
        problem: &Scsp<S>,
        seed: S::Value,
    ) -> Result<Solution<S>, SolveError> {
        if !problem.semiring().is_total() {
            return Err(SolveError::RequiresTotalOrder);
        }
        if self.config.decompose {
            if let Some(solution) = self.solve_decomposed(problem)? {
                return Ok(solution);
            }
        }
        self.solve_single(problem, Some(seed))
    }
}

impl<S: Semiring> Solver<S> for BranchAndBound {
    fn solve(&self, problem: &Scsp<S>) -> Result<Solution<S>, SolveError> {
        if !problem.semiring().is_total() {
            return Err(SolveError::RequiresTotalOrder);
        }
        if self.config.decompose {
            if let Some(solution) = self.solve_decomposed(problem)? {
                return Ok(solution);
            }
        }
        self.solve_single(problem, None)
    }
}

/// How many nodes a worker expands between reloads of the shared
/// best-bound (locking per node would serialise the search).
const REFRESH_INTERVAL: u32 = 256;

struct BnbWorker<'a, S: Semiring> {
    semiring: &'a S,
    compiled: &'a CompiledProblem<S>,
    /// Per-depth admissible completion bounds (mini-bucket pass), when
    /// the engine was configured with an `ibound`.
    bounds: Option<&'a [S::Value]>,
    /// Soft arc-consistency state: root live masks or a private
    /// incremental propagator.
    pruner: Pruner<'a, S>,
    /// Whether `×` re-associates exactly; when it does not, the
    /// incremental propagator only uses its zero-prune (an inexact
    /// bound may land an ulp below an achievable floor).
    exact_times: bool,
    /// Per-depth value visit order ([`VarOrder::Estimate`] only).
    val_order: Option<&'a [Vec<usize>]>,
    shared: &'a Mutex<S::Value>,
    /// Local cache of the shared bound.
    foreign: S::Value,
    since_refresh: u32,
    idx: Vec<usize>,
    scratch: Vec<Val>,
    best_value: S::Value,
    witness: Option<Vec<usize>>,
    nodes: u64,
    /// Diagnostic node budget ([`SolverConfig::node_budget`]): once
    /// this worker's own expansions exceed it, the search unwinds and
    /// the solve reports `NodeBudgetExceeded`.
    budget: Option<u64>,
    exhausted: bool,
    prunings: u64,
    bound_prunes: u64,
    evals: Vec<u64>,
}

impl<'a, S: Semiring> BnbWorker<'a, S> {
    fn run(&mut self, range: std::ops::Range<usize>) {
        let n = self.compiled.vars().len();
        let root = self.compiled.apply_completed(
            0,
            self.semiring.one(),
            &self.idx,
            &mut self.scratch,
            &mut self.evals,
        );
        if n == 0 {
            if !range.is_empty() {
                self.dfs(0, root);
            }
            return;
        }
        for slot in range {
            self.descend(0, slot, &root);
        }
    }

    /// The domain index visited at `slot` for the variable at `depth`.
    fn value_at_slot(&self, depth: usize, slot: usize) -> usize {
        match self.val_order {
            Some(orders) => orders[depth][slot],
            None => slot,
        }
    }

    fn is_live(&self, depth: usize, val: usize) -> bool {
        match &self.pruner {
            Pruner::Off => true,
            Pruner::Masks(prop) => prop.is_live(depth, val),
            Pruner::Mac(prop) => prop.is_live(depth, val),
        }
    }

    /// Tries `slot`'s value for the variable at `depth`: skips dead
    /// values, narrows the incremental propagator (pruning the branch
    /// on wipeout), and recurses.
    fn descend(&mut self, depth: usize, slot: usize, value: &S::Value) {
        if self.exhausted {
            return;
        }
        let i = self.value_at_slot(depth, slot);
        if !self.is_live(depth, i) {
            return;
        }
        self.idx[depth] = i;
        let mut frame_open = false;
        if let Pruner::Mac(prop) = &mut self.pruner {
            prop.begin_frame();
            frame_open = true;
            let floor = if !self.exact_times {
                self.semiring.zero()
            } else if self.witness.is_some() {
                self.semiring.plus(&self.foreign, &self.best_value)
            } else {
                self.foreign.clone()
            };
            let Pruner::Mac(prop) = &mut self.pruner else {
                unreachable!()
            };
            if !prop.assign(depth, i, &floor) {
                self.prunings += 1;
                prop.undo_frame();
                return;
            }
        }
        let next = self.compiled.apply_completed(
            depth + 1,
            value.clone(),
            &self.idx,
            &mut self.scratch,
            &mut self.evals,
        );
        self.dfs(depth + 1, next);
        if frame_open {
            if let Pruner::Mac(prop) = &mut self.pruner {
                prop.undo_frame();
            }
        }
    }

    fn dfs(&mut self, depth: usize, value: S::Value) {
        self.nodes += 1;
        if self.budget.is_some_and(|b| self.nodes > b) {
            self.exhausted = true;
            return;
        }
        // The sequential prune: extensions cannot beat the local
        // incumbent (×-monotonicity).
        if self.semiring.leq(&value, &self.best_value)
            && (self.witness.is_some() || self.semiring.is_zero(&value))
        {
            self.prunings += 1;
            return;
        }
        // Foreign prune: strictly below a bound published by another
        // chunk. Strictness keeps the local first-witness choice
        // identical to the sequential run.
        self.since_refresh += 1;
        if self.since_refresh >= REFRESH_INTERVAL {
            self.since_refresh = 0;
            self.foreign = self
                .shared
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .clone();
        }
        if self.semiring.lt(&value, &self.foreign) {
            self.prunings += 1;
            return;
        }
        // Bound prune: even the *best possible* completion of this
        // prefix (mini-bucket estimate) cannot beat what is already
        // known. The same strictness discipline as above keeps the
        // witness identical to the blind sequential run.
        if let Some(bounds) = self.bounds {
            if depth < self.compiled.vars().len() {
                let reachable = self.semiring.times(&value, &bounds[depth]);
                if (self.semiring.leq(&reachable, &self.best_value)
                    && (self.witness.is_some() || self.semiring.is_zero(&reachable)))
                    || self.semiring.lt(&reachable, &self.foreign)
                {
                    self.prunings += 1;
                    self.bound_prunes += 1;
                    return;
                }
            }
        }
        if depth == self.compiled.vars().len() {
            self.best_value = value;
            self.witness = Some(self.idx.clone());
            let mut shared = self.shared.lock().unwrap_or_else(|e| e.into_inner());
            if self.semiring.lt(&shared, &self.best_value) {
                *shared = self.best_value.clone();
            }
            self.foreign = shared.clone();
            return;
        }
        for slot in 0..self.compiled.sizes()[depth] {
            self.descend(depth, slot, &value);
        }
    }
}

struct Search<'a, S: Semiring> {
    semiring: S,
    problem: &'a Scsp<S>,
    vars: &'a [Var],
    domains: &'a [&'a crate::Domain],
    completing: &'a [Vec<(usize, Vec<usize>)>],
    slots: Vec<Option<Val>>,
    /// Pre-published achievable level (warm seed); `0` when cold.
    floor: S::Value,
    best_value: S::Value,
    best_assignment: Option<Assignment>,
    nodes: u64,
    /// Diagnostic node budget; see [`SolverConfig::node_budget`].
    budget: Option<u64>,
    exhausted: bool,
    prunings: u64,
}

impl<'a, S: Semiring> Search<'a, S> {
    /// Multiplies in every constraint whose scope completes at `depth`.
    fn apply_completed(&self, depth: usize, value: S::Value) -> S::Value {
        let mut acc = value;
        for (ci, positions) in &self.completing[depth] {
            if self.semiring.is_zero(&acc) {
                break;
            }
            let tuple: Vec<Val> = positions
                .iter()
                .map(|&p| self.slots[p].clone().expect("assigned slot"))
                .collect();
            let level = self.problem.constraints()[*ci].eval_tuple(&tuple);
            acc = self.semiring.times(&acc, &level);
        }
        acc
    }

    fn dfs(&mut self, depth: usize, value: S::Value) {
        self.nodes += 1;
        if self.budget.is_some_and(|b| self.nodes > b) {
            self.exhausted = true;
            return;
        }
        // Prune: extensions cannot beat the incumbent (×-monotonicity).
        if self.semiring.leq(&value, &self.best_value)
            && (self.best_assignment.is_some() || self.semiring.is_zero(&value))
        {
            self.prunings += 1;
            return;
        }
        // Warm-seed prune: strictly below a level known achievable.
        if self.semiring.lt(&value, &self.floor) {
            self.prunings += 1;
            return;
        }
        if depth == self.vars.len() {
            self.best_value = value;
            self.best_assignment = Some(
                self.vars
                    .iter()
                    .zip(&self.slots)
                    .map(|(v, s)| (v.clone(), s.clone().expect("complete assignment")))
                    .collect(),
            );
            return;
        }
        for val in self.domains[depth].values().to_vec() {
            if self.exhausted {
                break;
            }
            self.slots[depth] = Some(val);
            let next = self.apply_completed(depth + 1, value.clone());
            self.dfs(depth + 1, next);
        }
        self.slots[depth] = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve::EnumerationSolver;
    use crate::testutil::fig1_problem;
    use crate::{Constraint, Domain};
    use softsoa_semiring::{Boolean, Product, WeightedInt};

    #[test]
    fn agrees_with_enumeration_on_fig1() {
        let p = fig1_problem();
        let reference = EnumerationSolver::new().solve(&p).unwrap();
        for order in [
            VarOrder::Input,
            VarOrder::SmallestDomain,
            VarOrder::MostConstrained,
            VarOrder::Dynamic,
            VarOrder::Estimate,
        ] {
            let bnb = BranchAndBound::new(order).solve(&p).unwrap();
            assert_eq!(bnb.blevel(), reference.blevel());
            assert_eq!(
                bnb.best_assignment().unwrap().get(&Var::new("x")),
                reference.best_assignment().unwrap().get(&Var::new("x"))
            );
        }
    }

    #[test]
    fn rejects_partial_orders() {
        let s = Product::new(Boolean, Boolean);
        let p = crate::Scsp::new(s);
        assert!(matches!(
            BranchAndBound::default().solve(&p),
            Err(SolveError::RequiresTotalOrder)
        ));
    }

    #[test]
    fn node_budget_aborts_with_a_typed_error() {
        let p = fig1_problem();
        for compiled in [true, false] {
            let config = SolverConfig::default()
                .with_compiled(compiled)
                .with_parallelism(Parallelism::Sequential)
                .with_node_budget(Some(1));
            let result = BranchAndBound::with_config(VarOrder::Input, config).solve(&p);
            assert!(
                matches!(result, Err(SolveError::NodeBudgetExceeded { budget: 1 })),
                "compiled={compiled}: {result:?}"
            );
            // A generous budget solves normally with the usual answer.
            let config = SolverConfig::default()
                .with_compiled(compiled)
                .with_parallelism(Parallelism::Sequential)
                .with_node_budget(Some(1 << 20));
            let sol = BranchAndBound::with_config(VarOrder::Input, config)
                .solve(&p)
                .unwrap();
            assert_eq!(*sol.blevel(), 7);
        }
    }

    #[test]
    fn inconsistent_problem_has_no_witness() {
        let p = crate::Scsp::new(WeightedInt)
            .with_domain("x", Domain::ints(0..=3))
            .with_constraint(Constraint::never(WeightedInt))
            .of_interest(["x"]);
        let sol = BranchAndBound::default().solve(&p).unwrap();
        assert_eq!(*sol.blevel(), u64::MAX);
        assert!(sol.best_assignment().is_none());
    }

    #[test]
    fn no_solution_table_is_materialised() {
        let sol = BranchAndBound::default().solve(&fig1_problem()).unwrap();
        assert!(sol.solution_constraint().is_none());
    }

    #[test]
    fn compiled_and_parallel_reproduce_the_lazy_witness() {
        use crate::solve::{Parallelism, SolverConfig};
        for seed in 0..6 {
            let p = crate::generate::random_weighted(&crate::generate::RandomScsp {
                vars: 5,
                domain_size: 3,
                constraints: 7,
                arity: 2,
                seed,
            });
            let lazy = BranchAndBound::with_config(VarOrder::Input, SolverConfig::reference())
                .solve(&p)
                .unwrap();
            for threads in [1, 2, 3] {
                let cfg = SolverConfig::default().with_parallelism(Parallelism::Threads(threads));
                let fast = BranchAndBound::with_config(VarOrder::Input, cfg)
                    .solve(&p)
                    .unwrap();
                assert_eq!(fast.blevel(), lazy.blevel(), "seed {seed} x{threads}");
                assert_eq!(
                    fast.best_assignment(),
                    lazy.best_assignment(),
                    "witness must match the sequential run (seed {seed}, {threads} threads)"
                );
            }
        }
    }

    #[test]
    fn stats_are_recorded() {
        let sol = BranchAndBound::default().solve(&fig1_problem()).unwrap();
        let stats = sol.stats().unwrap();
        assert!(stats.nodes > 0);
        assert_eq!(stats.constraint_evals.len(), 3);
        // The default engine runs root propagation and records it.
        assert!(stats.propagation.is_some());
    }

    #[test]
    fn mini_bucket_pruning_matches_blind_search() {
        use crate::solve::{Parallelism, SolverConfig};
        for seed in 0..6 {
            let p = crate::generate::random_weighted(&crate::generate::RandomScsp {
                vars: 6,
                domain_size: 3,
                constraints: 9,
                arity: 2,
                seed,
            });
            let blind = BranchAndBound::default().solve(&p).unwrap();
            for ibound in [1, 2, 3] {
                let cfg = SolverConfig::default()
                    .with_parallelism(Parallelism::Sequential)
                    .with_ibound(Some(ibound));
                let bounded = BranchAndBound::with_config(VarOrder::Input, cfg)
                    .solve(&p)
                    .unwrap();
                assert_eq!(bounded.blevel(), blind.blevel(), "seed {seed} i{ibound}");
                assert_eq!(
                    bounded.best_assignment(),
                    blind.best_assignment(),
                    "bounded search must keep the blind witness (seed {seed}, ibound {ibound})"
                );
            }
        }
    }

    #[test]
    fn mini_bucket_bound_reduces_explored_nodes() {
        use crate::solve::{Parallelism, SolverConfig};
        let p = crate::generate::random_weighted(&crate::generate::RandomScsp {
            vars: 8,
            domain_size: 3,
            constraints: 12,
            arity: 2,
            seed: 1,
        });
        let seq = SolverConfig::default().with_parallelism(Parallelism::Sequential);
        let blind = BranchAndBound::with_config(VarOrder::Input, seq)
            .solve(&p)
            .unwrap();
        let bounded = BranchAndBound::with_config(VarOrder::Input, seq.with_ibound(Some(2)))
            .solve(&p)
            .unwrap();
        let (blind_stats, bounded_stats) = (blind.stats().unwrap(), bounded.stats().unwrap());
        assert!(bounded_stats.bound_prunes > 0);
        assert!(
            bounded_stats.nodes < blind_stats.nodes,
            "bound must cut nodes: {} vs {}",
            bounded_stats.nodes,
            blind_stats.nodes
        );
        assert_eq!(blind_stats.bound_prunes, 0);
    }

    #[test]
    fn warm_seed_preserves_blevel_and_witness() {
        use crate::solve::{Parallelism, SolverConfig};
        for seed in 0..6 {
            let p = crate::generate::random_weighted(&crate::generate::RandomScsp {
                vars: 5,
                domain_size: 3,
                constraints: 7,
                arity: 2,
                seed,
            });
            let cold = BranchAndBound::default().solve(&p).unwrap();
            // The hardest valid seed: the optimum itself.
            for threads in [1, 3] {
                let cfg = SolverConfig::default().with_parallelism(Parallelism::Threads(threads));
                let warm = BranchAndBound::with_config(VarOrder::Input, cfg)
                    .solve_seeded(&p, *cold.blevel())
                    .unwrap();
                assert_eq!(warm.blevel(), cold.blevel(), "seed {seed} x{threads}");
                assert_eq!(
                    warm.best_assignment(),
                    cold.best_assignment(),
                    "warm start must keep the cold witness (seed {seed}, {threads} threads)"
                );
            }
            // Lazy path takes the same seed.
            let warm_lazy = BranchAndBound::with_config(VarOrder::Input, SolverConfig::reference())
                .solve_seeded(&p, *cold.blevel())
                .unwrap();
            assert_eq!(warm_lazy.blevel(), cold.blevel());
            assert_eq!(warm_lazy.best_assignment(), cold.best_assignment());
        }
    }

    #[test]
    fn propagation_modes_agree_with_blind_search() {
        use crate::solve::{Parallelism, SolverConfig};
        for seed in 0..6 {
            let p = crate::generate::random_weighted(&crate::generate::RandomScsp {
                vars: 6,
                domain_size: 3,
                constraints: 9,
                arity: 2,
                seed,
            });
            let seq = SolverConfig::default().with_parallelism(Parallelism::Sequential);
            let blind = BranchAndBound::with_config(
                VarOrder::Input,
                seq.with_propagation(PropagationMode::Off),
            )
            .solve(&p)
            .unwrap();
            for mode in [PropagationMode::Root, PropagationMode::Full] {
                let propagated =
                    BranchAndBound::with_config(VarOrder::Input, seq.with_propagation(mode))
                        .solve(&p)
                        .unwrap();
                assert_eq!(propagated.blevel(), blind.blevel(), "seed {seed} {mode:?}");
                assert_eq!(
                    propagated.best_assignment(),
                    blind.best_assignment(),
                    "propagation must keep the blind witness (seed {seed}, {mode:?})"
                );
                assert!(
                    propagated.stats().unwrap().nodes <= blind.stats().unwrap().nodes,
                    "propagation must not expand the tree (seed {seed}, {mode:?})"
                );
            }
        }
    }

    #[test]
    fn decomposed_solve_matches_joint_solve() {
        use crate::solve::{Parallelism, SolverConfig};
        // Two independent chains plus a constant constraint.
        let mut p = crate::generate::chain_weighted(4, 3, 7);
        let q = crate::generate::chain_weighted(4, 3, 9);
        for v in q.problem_vars() {
            let renamed = Var::new(format!("y{}", v.name()));
            p.add_domain(renamed, q.domains().get(&v).unwrap().clone());
        }
        for c in q.constraints() {
            let scope: Vec<Var> = c
                .scope()
                .iter()
                .map(|v| Var::new(format!("y{}", v.name())))
                .collect();
            let inner = c.clone();
            let orig_scope = c.scope().to_vec();
            p.add_constraint(Constraint::from_fn(WeightedInt, &scope, move |vals| {
                let _ = &orig_scope;
                inner.eval_tuple(vals)
            }));
        }
        p.add_constraint(Constraint::constant(WeightedInt, 2));
        let p = p.of_interest(["x0", "yx0"]);

        let seq = SolverConfig::default().with_parallelism(Parallelism::Sequential);
        let joint = BranchAndBound::with_config(VarOrder::Input, seq.with_decompose(false))
            .solve(&p)
            .unwrap();
        for parallelism in [Parallelism::Sequential, Parallelism::Threads(2)] {
            let split = BranchAndBound::with_config(
                VarOrder::Input,
                seq.with_decompose(true).with_parallelism(parallelism),
            )
            .solve(&p)
            .unwrap();
            assert_eq!(split.blevel(), joint.blevel());
            assert_eq!(
                split.best_assignment(),
                joint.best_assignment(),
                "weighted components merge to the joint witness"
            );
            assert_eq!(split.stats().unwrap().components, 2);
        }
    }
}
