//! Depth-first branch-and-bound search.

use softsoa_semiring::Semiring;

use crate::solve::{Solution, SolveError, Solver};
use crate::{Assignment, Scsp, Val, Var};

/// Variable-ordering heuristics for [`BranchAndBound`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub enum VarOrder {
    /// The problem's natural (sorted) variable order.
    #[default]
    Input,
    /// Smallest domain first (fail-first).
    SmallestDomain,
    /// Variable appearing in the most constraints first.
    MostConstrained,
}

/// A depth-first branch-and-bound solver for totally ordered semirings.
///
/// Exploits `×`-monotonicity — combining can only *worsen* a level
/// (`a × b ≤ a` in every c-semiring) — to prune any branch whose
/// partial combination already fails to beat the incumbent. Returns the
/// `blevel` and one witness assignment; it does **not** build the
/// solution table (see
/// [`Solution::solution_constraint`](crate::solve::Solution::solution_constraint)).
///
/// # Examples
///
/// ```
/// use softsoa_core::{Scsp, Constraint, Domain};
/// use softsoa_core::solve::{BranchAndBound, VarOrder, Solver};
/// use softsoa_semiring::WeightedInt;
///
/// let p = Scsp::new(WeightedInt)
///     .with_domain("x", Domain::ints(0..=99))
///     .with_constraint(Constraint::unary(WeightedInt, "x", |v| {
///         (v.as_int().unwrap() as u64).pow(2)
///     }))
///     .of_interest(["x"]);
/// let solution = BranchAndBound::new(VarOrder::SmallestDomain).solve(&p)?;
/// assert_eq!(*solution.blevel(), 0);
/// # Ok::<(), softsoa_core::SolveError>(())
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct BranchAndBound {
    order: VarOrder,
}

impl BranchAndBound {
    /// Creates the solver with the given variable ordering.
    pub fn new(order: VarOrder) -> BranchAndBound {
        BranchAndBound { order }
    }

    fn order_vars<S: Semiring>(&self, problem: &Scsp<S>) -> Result<Vec<Var>, SolveError> {
        let mut vars = problem.problem_vars();
        match self.order {
            VarOrder::Input => {}
            VarOrder::SmallestDomain => {
                let mut keyed: Vec<(usize, Var)> = vars
                    .into_iter()
                    .map(|v| Ok((problem.domains().get(&v)?.len(), v)))
                    .collect::<Result<_, SolveError>>()?;
                keyed.sort();
                vars = keyed.into_iter().map(|(_, v)| v).collect();
            }
            VarOrder::MostConstrained => {
                let mut keyed: Vec<(usize, Var)> = vars
                    .into_iter()
                    .map(|v| {
                        let degree = problem
                            .constraints()
                            .iter()
                            .filter(|c| c.scope().contains(&v))
                            .count();
                        (usize::MAX - degree, v)
                    })
                    .collect();
                keyed.sort();
                vars = keyed.into_iter().map(|(_, v)| v).collect();
            }
        }
        Ok(vars)
    }
}

impl<S: Semiring> Solver<S> for BranchAndBound {
    fn solve(&self, problem: &Scsp<S>) -> Result<Solution<S>, SolveError> {
        let semiring = problem.semiring().clone();
        if !semiring.is_total() {
            return Err(SolveError::RequiresTotalOrder);
        }
        let vars = self.order_vars(problem)?;
        // Validate domains up front so the search cannot fail mid-way.
        let domains: Vec<&crate::Domain> = vars
            .iter()
            .map(|v| problem.domains().get(v).map_err(SolveError::from))
            .collect::<Result<_, _>>()?;

        // For each constraint: the depth at which its scope is fully
        // assigned, and the positions of its scope vars in `vars`.
        let mut completing: Vec<Vec<(usize, Vec<usize>)>> = vec![Vec::new(); vars.len() + 1];
        for (ci, c) in problem.constraints().iter().enumerate() {
            let positions: Vec<usize> = c
                .scope()
                .iter()
                .map(|v| vars.iter().position(|u| u == v).expect("scope var ordered"))
                .collect();
            let depth = positions.iter().copied().max().map_or(0, |d| d + 1);
            completing[depth].push((ci, positions));
        }

        let mut search = Search {
            semiring: semiring.clone(),
            problem,
            vars: &vars,
            domains: &domains,
            completing: &completing,
            slots: vec![None; vars.len()],
            best_value: semiring.zero(),
            best_assignment: None,
        };

        // Constraints with empty scope complete at depth 0.
        let root = search.apply_completed(0, semiring.one());
        search.dfs(0, root);

        let best_value = search.best_value;
        let best = match search.best_assignment {
            Some(full) if !semiring.is_zero(&best_value) => {
                let con_eta: Assignment = problem
                    .con()
                    .iter()
                    .map(|v| (v.clone(), full.get(v).expect("assigned").clone()))
                    .collect();
                vec![(con_eta, best_value.clone())]
            }
            _ => Vec::new(),
        };
        Ok(Solution::new(best_value, best, None))
    }
}

struct Search<'a, S: Semiring> {
    semiring: S,
    problem: &'a Scsp<S>,
    vars: &'a [Var],
    domains: &'a [&'a crate::Domain],
    completing: &'a [Vec<(usize, Vec<usize>)>],
    slots: Vec<Option<Val>>,
    best_value: S::Value,
    best_assignment: Option<Assignment>,
}

impl<'a, S: Semiring> Search<'a, S> {
    /// Multiplies in every constraint whose scope completes at `depth`.
    fn apply_completed(&self, depth: usize, value: S::Value) -> S::Value {
        let mut acc = value;
        for (ci, positions) in &self.completing[depth] {
            if self.semiring.is_zero(&acc) {
                break;
            }
            let tuple: Vec<Val> = positions
                .iter()
                .map(|&p| self.slots[p].clone().expect("assigned slot"))
                .collect();
            let level = self.problem.constraints()[*ci].eval_tuple(&tuple);
            acc = self.semiring.times(&acc, &level);
        }
        acc
    }

    fn dfs(&mut self, depth: usize, value: S::Value) {
        // Prune: extensions cannot beat the incumbent (×-monotonicity).
        if self.semiring.leq(&value, &self.best_value)
            && (self.best_assignment.is_some() || self.semiring.is_zero(&value))
        {
            return;
        }
        if depth == self.vars.len() {
            self.best_value = value;
            self.best_assignment = Some(
                self.vars
                    .iter()
                    .zip(&self.slots)
                    .map(|(v, s)| (v.clone(), s.clone().expect("complete assignment")))
                    .collect(),
            );
            return;
        }
        for val in self.domains[depth].values().to_vec() {
            self.slots[depth] = Some(val);
            let next = self.apply_completed(depth + 1, value.clone());
            self.dfs(depth + 1, next);
        }
        self.slots[depth] = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve::EnumerationSolver;
    use crate::testutil::fig1_problem;
    use crate::{Constraint, Domain};
    use softsoa_semiring::{Boolean, Product, WeightedInt};

    #[test]
    fn agrees_with_enumeration_on_fig1() {
        let p = fig1_problem();
        let reference = EnumerationSolver::new().solve(&p).unwrap();
        for order in [VarOrder::Input, VarOrder::SmallestDomain, VarOrder::MostConstrained] {
            let bnb = BranchAndBound::new(order).solve(&p).unwrap();
            assert_eq!(bnb.blevel(), reference.blevel());
            assert_eq!(
                bnb.best_assignment().unwrap().get(&Var::new("x")),
                reference.best_assignment().unwrap().get(&Var::new("x"))
            );
        }
    }

    #[test]
    fn rejects_partial_orders() {
        let s = Product::new(Boolean, Boolean);
        let p = crate::Scsp::new(s);
        assert!(matches!(
            BranchAndBound::default().solve(&p),
            Err(SolveError::RequiresTotalOrder)
        ));
    }

    #[test]
    fn inconsistent_problem_has_no_witness() {
        let p = crate::Scsp::new(WeightedInt)
            .with_domain("x", Domain::ints(0..=3))
            .with_constraint(Constraint::never(WeightedInt))
            .of_interest(["x"]);
        let sol = BranchAndBound::default().solve(&p).unwrap();
        assert_eq!(*sol.blevel(), u64::MAX);
        assert!(sol.best_assignment().is_none());
    }

    #[test]
    fn no_solution_table_is_materialised() {
        let sol = BranchAndBound::default().solve(&fig1_problem()).unwrap();
        assert!(sol.solution_constraint().is_none());
    }
}
