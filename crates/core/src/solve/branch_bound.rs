//! Depth-first branch-and-bound search.

use std::sync::Mutex;
use std::time::Instant;

use softsoa_semiring::Semiring;

use crate::compile::CompiledProblem;
use crate::solve::bucket::MiniBucketBound;
use crate::solve::parallel::fan_out;
use crate::solve::{Solution, SolveError, Solver, SolverConfig, SolverStats};
use crate::{Assignment, Scsp, Val, Var};

/// Variable-ordering heuristics for [`BranchAndBound`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub enum VarOrder {
    /// The problem's natural (sorted) variable order.
    #[default]
    Input,
    /// Smallest domain first (fail-first).
    SmallestDomain,
    /// Variable appearing in the most constraints first.
    MostConstrained,
    /// Greedy combined ordering: repeatedly pick the unplaced variable
    /// with the smallest domain, breaking ties towards the one that
    /// *completes* the most constraint scopes given everything placed
    /// so far (so constraints start pruning at the shallowest possible
    /// depth), then towards the smallest variable name. Computed once
    /// per solve over the problem structure.
    Dynamic,
}

/// A depth-first branch-and-bound solver for totally ordered semirings.
///
/// Exploits `×`-monotonicity — combining can only *worsen* a level
/// (`a × b ≤ a` in every c-semiring) — to prune any branch whose
/// partial combination already fails to beat the incumbent. Returns the
/// `blevel` and one witness assignment; it does **not** build the
/// solution table (see
/// [`Solution::solution_constraint`](crate::solve::Solution::solution_constraint)).
///
/// # Examples
///
/// ```
/// use softsoa_core::{Scsp, Constraint, Domain};
/// use softsoa_core::solve::{BranchAndBound, VarOrder, Solver};
/// use softsoa_semiring::WeightedInt;
///
/// let p = Scsp::new(WeightedInt)
///     .with_domain("x", Domain::ints(0..=99))
///     .with_constraint(Constraint::unary(WeightedInt, "x", |v| {
///         (v.as_int().unwrap() as u64).pow(2)
///     }))
///     .of_interest(["x"]);
/// let solution = BranchAndBound::new(VarOrder::SmallestDomain).solve(&p)?;
/// assert_eq!(*solution.blevel(), 0);
/// # Ok::<(), softsoa_core::SolveError>(())
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct BranchAndBound {
    order: VarOrder,
    config: SolverConfig,
}

impl BranchAndBound {
    /// Creates the solver with the given variable ordering and the
    /// default engine (compiled, automatic thread count).
    pub fn new(order: VarOrder) -> BranchAndBound {
        BranchAndBound {
            order,
            config: SolverConfig::default(),
        }
    }

    /// Creates the solver with an explicit engine configuration.
    pub fn with_config(order: VarOrder, config: SolverConfig) -> BranchAndBound {
        BranchAndBound { order, config }
    }

    fn order_vars<S: Semiring>(&self, problem: &Scsp<S>) -> Result<Vec<Var>, SolveError> {
        let mut vars = problem.problem_vars();
        match self.order {
            VarOrder::Input => {}
            VarOrder::SmallestDomain => {
                let mut keyed: Vec<(usize, Var)> = vars
                    .into_iter()
                    .map(|v| Ok((problem.domains().get(&v)?.len(), v)))
                    .collect::<Result<_, SolveError>>()?;
                keyed.sort();
                vars = keyed.into_iter().map(|(_, v)| v).collect();
            }
            VarOrder::MostConstrained => {
                let mut keyed: Vec<(usize, Var)> = vars
                    .into_iter()
                    .map(|v| {
                        let degree = problem
                            .constraints()
                            .iter()
                            .filter(|c| c.scope().contains(&v))
                            .count();
                        (usize::MAX - degree, v)
                    })
                    .collect();
                keyed.sort();
                vars = keyed.into_iter().map(|(_, v)| v).collect();
            }
            VarOrder::Dynamic => {
                let mut remaining = vars;
                let mut placed: Vec<Var> = Vec::with_capacity(remaining.len());
                while !remaining.is_empty() {
                    let mut best = 0;
                    let mut best_key = (usize::MAX, usize::MAX);
                    for (i, v) in remaining.iter().enumerate() {
                        let domain = problem.domains().get(v)?.len();
                        // Scopes newly fully covered by placed ∪ {v}.
                        let completes = problem
                            .constraints()
                            .iter()
                            .filter(|c| {
                                c.scope().contains(v)
                                    && c.scope().iter().all(|u| u == v || placed.contains(u))
                            })
                            .count();
                        // `remaining` stays sorted, so strict `<` makes
                        // ties fall to the smallest variable name.
                        let key = (domain, usize::MAX - completes);
                        if key < best_key {
                            best_key = key;
                            best = i;
                        }
                    }
                    placed.push(remaining.remove(best));
                }
                vars = placed;
            }
        }
        Ok(vars)
    }
}

impl BranchAndBound {
    /// The compiled engine: DFS over domain-index tuples with dense
    /// operand tables, the outermost variable's values split across
    /// worker threads. Workers share a best-bound; a branch is cut
    /// when it is *strictly* below the shared bound (safe for any
    /// foreign bound) or when the sequential prune condition holds
    /// against the worker's own incumbent — so the merged result,
    /// taken in chunk order, reproduces the sequential witness.
    fn solve_compiled<S: Semiring>(
        &self,
        problem: &Scsp<S>,
        seed: Option<S::Value>,
    ) -> Result<Solution<S>, SolveError> {
        let start = Instant::now();
        let semiring = problem.semiring().clone();
        let vars = self.order_vars(problem)?;
        let compiled = CompiledProblem::with_order(problem, vars)?;
        let bound = self
            .config
            .ibound
            .map(|ibound| MiniBucketBound::new(&compiled, ibound));
        let threads = self.config.parallelism.thread_count(compiled.outer_size());
        // An achievable seed enters the search as a pre-published
        // foreign bound: workers cut branches *strictly* below it, which
        // never touches the first assignment attaining the optimum.
        let floor = seed.unwrap_or_else(|| semiring.zero());
        let shared: Mutex<S::Value> = Mutex::new(floor.clone());
        let workers = fan_out(threads, compiled.outer_size(), |range| {
            let mut worker = BnbWorker {
                semiring: &semiring,
                compiled: &compiled,
                bounds: bound.as_ref().map(|b| b.bounds()),
                shared: &shared,
                foreign: floor.clone(),
                since_refresh: 0,
                idx: vec![0; compiled.vars().len()],
                scratch: Vec::new(),
                best_value: semiring.zero(),
                witness: None,
                nodes: 0,
                prunings: 0,
                bound_prunes: 0,
                evals: vec![0; compiled.num_operands()],
            };
            worker.run(range);
            (
                worker.best_value,
                worker.witness,
                worker.nodes,
                worker.prunings,
                worker.bound_prunes,
                worker.evals,
            )
        });

        // Merge in chunk order with strict improvement only — exactly
        // the sequential first-witness rule across chunk boundaries.
        let mut best_value = semiring.zero();
        let mut witness: Option<Vec<usize>> = None;
        let mut stats = SolverStats {
            threads,
            compile_time: compiled.compile_time(),
            constraint_evals: Vec::new(),
            ..SolverStats::default()
        };
        let mut evals = vec![0u64; compiled.num_operands()];
        for (value, wit, nodes, prunings, bound_prunes, worker_evals) in workers {
            stats.nodes += nodes;
            stats.prunings += prunings;
            stats.bound_prunes += bound_prunes;
            stats.thread_nodes.push(nodes);
            for (acc, e) in evals.iter_mut().zip(&worker_evals) {
                *acc += e;
            }
            if wit.is_some() && semiring.lt(&best_value, &value) {
                best_value = value;
                witness = wit;
            }
        }
        stats.constraint_evals = compiled.eval_stats(&evals);
        stats.solve_time = start.elapsed();

        let best = match witness {
            Some(idx) if !semiring.is_zero(&best_value) => {
                let con_eta = compiled.con_assignment(&idx);
                vec![(con_eta, best_value.clone())]
            }
            _ => Vec::new(),
        };
        Ok(Solution::new(best_value, best, None).with_stats(stats))
    }

    fn solve_lazy<S: Semiring>(
        &self,
        problem: &Scsp<S>,
        seed: Option<S::Value>,
    ) -> Result<Solution<S>, SolveError> {
        let start = Instant::now();
        let semiring = problem.semiring().clone();
        let vars = self.order_vars(problem)?;
        // Validate domains up front so the search cannot fail mid-way.
        let domains: Vec<&crate::Domain> = vars
            .iter()
            .map(|v| problem.domains().get(v).map_err(SolveError::from))
            .collect::<Result<_, _>>()?;

        // For each constraint: the depth at which its scope is fully
        // assigned, and the positions of its scope vars in `vars`.
        let mut completing: Vec<Vec<(usize, Vec<usize>)>> = vec![Vec::new(); vars.len() + 1];
        for (ci, c) in problem.constraints().iter().enumerate() {
            let positions: Vec<usize> = c
                .scope()
                .iter()
                .map(|v| vars.iter().position(|u| u == v).expect("scope var ordered"))
                .collect();
            let depth = positions.iter().copied().max().map_or(0, |d| d + 1);
            completing[depth].push((ci, positions));
        }

        let mut search = Search {
            semiring: semiring.clone(),
            problem,
            vars: &vars,
            domains: &domains,
            completing: &completing,
            slots: vec![None; vars.len()],
            floor: seed.unwrap_or_else(|| semiring.zero()),
            best_value: semiring.zero(),
            best_assignment: None,
            nodes: 0,
            prunings: 0,
        };

        // Constraints with empty scope complete at depth 0.
        let root = search.apply_completed(0, semiring.one());
        search.dfs(0, root);

        let stats = SolverStats {
            nodes: search.nodes,
            prunings: search.prunings,
            threads: 1,
            solve_time: start.elapsed(),
            ..SolverStats::default()
        };
        let best_value = search.best_value;
        let best = match search.best_assignment {
            Some(full) if !semiring.is_zero(&best_value) => {
                let con_eta: Assignment = problem
                    .con()
                    .iter()
                    .map(|v| (v.clone(), full.get(v).expect("assigned").clone()))
                    .collect();
                vec![(con_eta, best_value.clone())]
            }
            _ => Vec::new(),
        };
        Ok(Solution::new(best_value, best, None).with_stats(stats))
    }
}

impl BranchAndBound {
    /// Solves with the incumbent floor seeded at `seed` — a level that
    /// is **achievable** on `problem`, i.e. the combined level of some
    /// complete assignment (typically a previous round's witness
    /// re-evaluated on the current constraints).
    ///
    /// The seed is pre-published as a foreign bound, so the search cuts
    /// every branch strictly below it from the first node on instead of
    /// discovering the level itself; `blevel` and witness are identical
    /// to a cold [`solve`](Solver::solve) (property-tested). Seeding an
    /// *unachievable* level is unsound: it can prune every witness.
    ///
    /// # Errors
    ///
    /// As [`solve`](Solver::solve).
    pub fn solve_seeded<S: Semiring>(
        &self,
        problem: &Scsp<S>,
        seed: S::Value,
    ) -> Result<Solution<S>, SolveError> {
        if !problem.semiring().is_total() {
            return Err(SolveError::RequiresTotalOrder);
        }
        if self.config.compiled {
            self.solve_compiled(problem, Some(seed))
        } else {
            self.solve_lazy(problem, Some(seed))
        }
    }
}

impl<S: Semiring> Solver<S> for BranchAndBound {
    fn solve(&self, problem: &Scsp<S>) -> Result<Solution<S>, SolveError> {
        if !problem.semiring().is_total() {
            return Err(SolveError::RequiresTotalOrder);
        }
        if self.config.compiled {
            self.solve_compiled(problem, None)
        } else {
            self.solve_lazy(problem, None)
        }
    }
}

/// How many nodes a worker expands between reloads of the shared
/// best-bound (locking per node would serialise the search).
const REFRESH_INTERVAL: u32 = 256;

struct BnbWorker<'a, S: Semiring> {
    semiring: &'a S,
    compiled: &'a CompiledProblem<S>,
    /// Per-depth admissible completion bounds (mini-bucket pass), when
    /// the engine was configured with an `ibound`.
    bounds: Option<&'a [S::Value]>,
    shared: &'a Mutex<S::Value>,
    /// Local cache of the shared bound.
    foreign: S::Value,
    since_refresh: u32,
    idx: Vec<usize>,
    scratch: Vec<Val>,
    best_value: S::Value,
    witness: Option<Vec<usize>>,
    nodes: u64,
    prunings: u64,
    bound_prunes: u64,
    evals: Vec<u64>,
}

impl<'a, S: Semiring> BnbWorker<'a, S> {
    fn run(&mut self, range: std::ops::Range<usize>) {
        let n = self.compiled.vars().len();
        let root = self.compiled.apply_completed(
            0,
            self.semiring.one(),
            &self.idx,
            &mut self.scratch,
            &mut self.evals,
        );
        if n == 0 {
            if !range.is_empty() {
                self.dfs(0, root);
            }
            return;
        }
        for i in range {
            self.idx[0] = i;
            let value = self.compiled.apply_completed(
                1,
                root.clone(),
                &self.idx,
                &mut self.scratch,
                &mut self.evals,
            );
            self.dfs(1, value);
        }
    }

    fn dfs(&mut self, depth: usize, value: S::Value) {
        self.nodes += 1;
        // The sequential prune: extensions cannot beat the local
        // incumbent (×-monotonicity).
        if self.semiring.leq(&value, &self.best_value)
            && (self.witness.is_some() || self.semiring.is_zero(&value))
        {
            self.prunings += 1;
            return;
        }
        // Foreign prune: strictly below a bound published by another
        // chunk. Strictness keeps the local first-witness choice
        // identical to the sequential run.
        self.since_refresh += 1;
        if self.since_refresh >= REFRESH_INTERVAL {
            self.since_refresh = 0;
            self.foreign = self
                .shared
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .clone();
        }
        if self.semiring.lt(&value, &self.foreign) {
            self.prunings += 1;
            return;
        }
        // Bound prune: even the *best possible* completion of this
        // prefix (mini-bucket estimate) cannot beat what is already
        // known. The same strictness discipline as above keeps the
        // witness identical to the blind sequential run.
        if let Some(bounds) = self.bounds {
            if depth < self.compiled.vars().len() {
                let reachable = self.semiring.times(&value, &bounds[depth]);
                if (self.semiring.leq(&reachable, &self.best_value)
                    && (self.witness.is_some() || self.semiring.is_zero(&reachable)))
                    || self.semiring.lt(&reachable, &self.foreign)
                {
                    self.prunings += 1;
                    self.bound_prunes += 1;
                    return;
                }
            }
        }
        if depth == self.compiled.vars().len() {
            self.best_value = value;
            self.witness = Some(self.idx.clone());
            let mut shared = self.shared.lock().unwrap_or_else(|e| e.into_inner());
            if self.semiring.lt(&shared, &self.best_value) {
                *shared = self.best_value.clone();
            }
            self.foreign = shared.clone();
            return;
        }
        for i in 0..self.compiled.sizes()[depth] {
            self.idx[depth] = i;
            let next = self.compiled.apply_completed(
                depth + 1,
                value.clone(),
                &self.idx,
                &mut self.scratch,
                &mut self.evals,
            );
            self.dfs(depth + 1, next);
        }
    }
}

struct Search<'a, S: Semiring> {
    semiring: S,
    problem: &'a Scsp<S>,
    vars: &'a [Var],
    domains: &'a [&'a crate::Domain],
    completing: &'a [Vec<(usize, Vec<usize>)>],
    slots: Vec<Option<Val>>,
    /// Pre-published achievable level (warm seed); `0` when cold.
    floor: S::Value,
    best_value: S::Value,
    best_assignment: Option<Assignment>,
    nodes: u64,
    prunings: u64,
}

impl<'a, S: Semiring> Search<'a, S> {
    /// Multiplies in every constraint whose scope completes at `depth`.
    fn apply_completed(&self, depth: usize, value: S::Value) -> S::Value {
        let mut acc = value;
        for (ci, positions) in &self.completing[depth] {
            if self.semiring.is_zero(&acc) {
                break;
            }
            let tuple: Vec<Val> = positions
                .iter()
                .map(|&p| self.slots[p].clone().expect("assigned slot"))
                .collect();
            let level = self.problem.constraints()[*ci].eval_tuple(&tuple);
            acc = self.semiring.times(&acc, &level);
        }
        acc
    }

    fn dfs(&mut self, depth: usize, value: S::Value) {
        self.nodes += 1;
        // Prune: extensions cannot beat the incumbent (×-monotonicity).
        if self.semiring.leq(&value, &self.best_value)
            && (self.best_assignment.is_some() || self.semiring.is_zero(&value))
        {
            self.prunings += 1;
            return;
        }
        // Warm-seed prune: strictly below a level known achievable.
        if self.semiring.lt(&value, &self.floor) {
            self.prunings += 1;
            return;
        }
        if depth == self.vars.len() {
            self.best_value = value;
            self.best_assignment = Some(
                self.vars
                    .iter()
                    .zip(&self.slots)
                    .map(|(v, s)| (v.clone(), s.clone().expect("complete assignment")))
                    .collect(),
            );
            return;
        }
        for val in self.domains[depth].values().to_vec() {
            self.slots[depth] = Some(val);
            let next = self.apply_completed(depth + 1, value.clone());
            self.dfs(depth + 1, next);
        }
        self.slots[depth] = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve::EnumerationSolver;
    use crate::testutil::fig1_problem;
    use crate::{Constraint, Domain};
    use softsoa_semiring::{Boolean, Product, WeightedInt};

    #[test]
    fn agrees_with_enumeration_on_fig1() {
        let p = fig1_problem();
        let reference = EnumerationSolver::new().solve(&p).unwrap();
        for order in [
            VarOrder::Input,
            VarOrder::SmallestDomain,
            VarOrder::MostConstrained,
            VarOrder::Dynamic,
        ] {
            let bnb = BranchAndBound::new(order).solve(&p).unwrap();
            assert_eq!(bnb.blevel(), reference.blevel());
            assert_eq!(
                bnb.best_assignment().unwrap().get(&Var::new("x")),
                reference.best_assignment().unwrap().get(&Var::new("x"))
            );
        }
    }

    #[test]
    fn rejects_partial_orders() {
        let s = Product::new(Boolean, Boolean);
        let p = crate::Scsp::new(s);
        assert!(matches!(
            BranchAndBound::default().solve(&p),
            Err(SolveError::RequiresTotalOrder)
        ));
    }

    #[test]
    fn inconsistent_problem_has_no_witness() {
        let p = crate::Scsp::new(WeightedInt)
            .with_domain("x", Domain::ints(0..=3))
            .with_constraint(Constraint::never(WeightedInt))
            .of_interest(["x"]);
        let sol = BranchAndBound::default().solve(&p).unwrap();
        assert_eq!(*sol.blevel(), u64::MAX);
        assert!(sol.best_assignment().is_none());
    }

    #[test]
    fn no_solution_table_is_materialised() {
        let sol = BranchAndBound::default().solve(&fig1_problem()).unwrap();
        assert!(sol.solution_constraint().is_none());
    }

    #[test]
    fn compiled_and_parallel_reproduce_the_lazy_witness() {
        use crate::solve::{Parallelism, SolverConfig};
        for seed in 0..6 {
            let p = crate::generate::random_weighted(&crate::generate::RandomScsp {
                vars: 5,
                domain_size: 3,
                constraints: 7,
                arity: 2,
                seed,
            });
            let lazy = BranchAndBound::with_config(VarOrder::Input, SolverConfig::reference())
                .solve(&p)
                .unwrap();
            for threads in [1, 2, 3] {
                let cfg = SolverConfig::default().with_parallelism(Parallelism::Threads(threads));
                let fast = BranchAndBound::with_config(VarOrder::Input, cfg)
                    .solve(&p)
                    .unwrap();
                assert_eq!(fast.blevel(), lazy.blevel(), "seed {seed} x{threads}");
                assert_eq!(
                    fast.best_assignment(),
                    lazy.best_assignment(),
                    "witness must match the sequential run (seed {seed}, {threads} threads)"
                );
            }
        }
    }

    #[test]
    fn stats_are_recorded() {
        let sol = BranchAndBound::default().solve(&fig1_problem()).unwrap();
        let stats = sol.stats().unwrap();
        assert!(stats.nodes > 0);
        assert_eq!(stats.constraint_evals.len(), 3);
    }

    #[test]
    fn mini_bucket_pruning_matches_blind_search() {
        use crate::solve::{Parallelism, SolverConfig};
        for seed in 0..6 {
            let p = crate::generate::random_weighted(&crate::generate::RandomScsp {
                vars: 6,
                domain_size: 3,
                constraints: 9,
                arity: 2,
                seed,
            });
            let blind = BranchAndBound::default().solve(&p).unwrap();
            for ibound in [1, 2, 3] {
                let cfg = SolverConfig::default()
                    .with_parallelism(Parallelism::Sequential)
                    .with_ibound(Some(ibound));
                let bounded = BranchAndBound::with_config(VarOrder::Input, cfg)
                    .solve(&p)
                    .unwrap();
                assert_eq!(bounded.blevel(), blind.blevel(), "seed {seed} i{ibound}");
                assert_eq!(
                    bounded.best_assignment(),
                    blind.best_assignment(),
                    "bounded search must keep the blind witness (seed {seed}, ibound {ibound})"
                );
            }
        }
    }

    #[test]
    fn mini_bucket_bound_reduces_explored_nodes() {
        use crate::solve::{Parallelism, SolverConfig};
        let p = crate::generate::random_weighted(&crate::generate::RandomScsp {
            vars: 8,
            domain_size: 3,
            constraints: 12,
            arity: 2,
            seed: 1,
        });
        let seq = SolverConfig::default().with_parallelism(Parallelism::Sequential);
        let blind = BranchAndBound::with_config(VarOrder::Input, seq)
            .solve(&p)
            .unwrap();
        let bounded = BranchAndBound::with_config(VarOrder::Input, seq.with_ibound(Some(2)))
            .solve(&p)
            .unwrap();
        let (blind_stats, bounded_stats) = (blind.stats().unwrap(), bounded.stats().unwrap());
        assert!(bounded_stats.bound_prunes > 0);
        assert!(
            bounded_stats.nodes < blind_stats.nodes,
            "bound must cut nodes: {} vs {}",
            bounded_stats.nodes,
            blind_stats.nodes
        );
        assert_eq!(blind_stats.bound_prunes, 0);
    }

    #[test]
    fn warm_seed_preserves_blevel_and_witness() {
        use crate::solve::{Parallelism, SolverConfig};
        for seed in 0..6 {
            let p = crate::generate::random_weighted(&crate::generate::RandomScsp {
                vars: 5,
                domain_size: 3,
                constraints: 7,
                arity: 2,
                seed,
            });
            let cold = BranchAndBound::default().solve(&p).unwrap();
            // The hardest valid seed: the optimum itself.
            for threads in [1, 3] {
                let cfg = SolverConfig::default().with_parallelism(Parallelism::Threads(threads));
                let warm = BranchAndBound::with_config(VarOrder::Input, cfg)
                    .solve_seeded(&p, *cold.blevel())
                    .unwrap();
                assert_eq!(warm.blevel(), cold.blevel(), "seed {seed} x{threads}");
                assert_eq!(
                    warm.best_assignment(),
                    cold.best_assignment(),
                    "warm start must keep the cold witness (seed {seed}, {threads} threads)"
                );
            }
            // Lazy path takes the same seed.
            let warm_lazy = BranchAndBound::with_config(VarOrder::Input, SolverConfig::reference())
                .solve_seeded(&p, *cold.blevel())
                .unwrap();
            assert_eq!(warm_lazy.blevel(), cold.blevel());
            assert_eq!(warm_lazy.best_assignment(), cold.best_assignment());
        }
    }
}
