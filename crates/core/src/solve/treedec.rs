//! Bucket-tree elimination: exact solving polynomial in the induced
//! width.
//!
//! Branch-and-bound explores assignments; this engine eliminates
//! *variables*. An elimination order `v₁ … vₙ` assigns every
//! constraint to the **bucket** of its earliest scope variable;
//! processing buckets in order, eliminating `vᵢ` projects the combined
//! bucket functions down to a **message** over the bucket's
//! *separator* (the cluster minus `vᵢ`), which is routed to the bucket
//! of the separator's earliest variable. The buckets and separator
//! edges form the bucket tree; one upward pass of messages computes
//! `blevel` exactly on **any** c-semiring, because `×` distributes
//! over `+`:
//!
//! ```text
//!   Σ_{v} (f × g) = f × (Σ_{v} g)        when v ∉ scope(f)
//! ```
//!
//! A downward pass reconstructs one witness: visiting buckets in
//! *reverse* order, every separator variable is already assigned, so
//! the bucket's cached per-context argmax (`choice`) pins `vᵢ` in
//! `O(1)`. The per-separator-assignment message tables are exactly
//! AND/OR **context caches**: a subtree's solution is computed once
//! per separator assignment and re-read every time the parent's
//! enumeration revisits that context.
//!
//! Cost is `O(n · d^(w+1))` where `w` is the induced width of the
//! order — polynomial on bounded-treewidth families (the banded
//! generators of [`generate`](crate::generate)) where search is
//! exponential. Memory is the flip side: cluster tables hold
//! `d^(w+1)` semiring values, so the engine is gated by
//! [`SolverConfig::width_cap`] plus an absolute cell guard and falls
//! back to branch-and-bound — seeded with the achievable level of a
//! tree-guided greedy assignment when `×` is exact — whenever a
//! component is too wide.
//!
//! Exactness caveat: the elimination order re-associates the big `×`
//! product. On exact-`×` semirings (weighted, fuzzy) the result is
//! bit-identical to search; on rounding semirings (probabilistic,
//! Łukasiewicz) the reported `blevel` is the tree association of the
//! optimal product and can drift from a search engine's association by
//! final-ulp rounding (the same caveat
//! [`Semiring::exact_times`](softsoa_semiring::Semiring::exact_times)
//! gates everywhere else in this module tree). The witness is a valid
//! optimal assignment in every case.

use std::collections::BTreeSet;
use std::time::Instant;

use softsoa_semiring::Semiring;

use crate::solve::parallel::fan_out;
use crate::solve::{Engine, Solution, SolveError, SolverConfig, SolverStats, TreeStats};
use crate::{Assignment, Scsp, Val, Var};

/// Hard guard on the cells of a single cluster table, independent of
/// the configured width cap (domain sizes can blow a small width up).
pub const TREE_CELL_LIMIT: u64 = 1 << 22;

/// Elimination-ordering heuristics over the primal constraint graph.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeHeuristic {
    /// Eliminate the variable adding the fewest fill edges (connecting
    /// the fewest non-adjacent neighbour pairs). Usually the smaller
    /// induced width; quadratic per step.
    MinFill,
    /// Eliminate the variable of smallest current degree. Cheaper,
    /// sometimes wider.
    MinDegree,
}

/// An elimination order over a problem's variables with its measured
/// induced width (the maximum separator size along the order — the
/// exponent that governs tree-solve cost).
#[derive(Debug, Clone)]
pub struct EliminationPlan {
    /// Problem variables in elimination order (first is eliminated
    /// first).
    pub order: Vec<Var>,
    /// Maximum number of neighbours any variable had at its
    /// elimination, after fill — equals the largest separator.
    pub induced_width: usize,
    /// Which heuristic produced the order.
    pub heuristic: TreeHeuristic,
}

/// Plans an elimination order for `problem`: runs min-fill *and*
/// min-degree over the primal graph and keeps the narrower result
/// (ties go to min-fill).
///
/// # Errors
///
/// [`SolveError::MissingDomain`] if a problem variable has no domain
/// (mirroring the solvers, so planning can double as validation).
pub fn plan_elimination<S: Semiring>(problem: &Scsp<S>) -> Result<EliminationPlan, SolveError> {
    let vars = problem.problem_vars();
    for v in &vars {
        problem.domains().get(v)?;
    }
    let adjacency = primal_graph(problem, &vars);
    let (order, width, heuristic) = best_order(&adjacency);
    Ok(EliminationPlan {
        order: order.into_iter().map(|p| vars[p].clone()).collect(),
        induced_width: width,
        heuristic,
    })
}

/// The primal graph: one vertex per problem variable, scopes as
/// cliques.
fn primal_graph<S: Semiring>(problem: &Scsp<S>, vars: &[Var]) -> Vec<BTreeSet<usize>> {
    let pos = |v: &Var| vars.binary_search(v).expect("scope var is a problem var");
    let mut adj: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); vars.len()];
    for c in problem.constraints() {
        let scope: Vec<usize> = c.scope().iter().map(pos).collect();
        for (i, &a) in scope.iter().enumerate() {
            for &b in &scope[i + 1..] {
                if a != b {
                    adj[a].insert(b);
                    adj[b].insert(a);
                }
            }
        }
    }
    adj
}

/// Runs one heuristic to completion, returning `(order, width)`.
fn eliminate(mut adj: Vec<BTreeSet<usize>>, heuristic: TreeHeuristic) -> (Vec<usize>, usize) {
    let n = adj.len();
    let mut alive: BTreeSet<usize> = (0..n).collect();
    let mut order = Vec::with_capacity(n);
    let mut width = 0;
    while let Some(&first) = alive.iter().next() {
        let mut best = first;
        let mut best_cost = usize::MAX;
        for &v in &alive {
            let cost = match heuristic {
                TreeHeuristic::MinDegree => adj[v].len(),
                TreeHeuristic::MinFill => {
                    let neigh: Vec<usize> = adj[v].iter().copied().collect();
                    let mut fill = 0;
                    for (i, &a) in neigh.iter().enumerate() {
                        for &b in &neigh[i + 1..] {
                            if !adj[a].contains(&b) {
                                fill += 1;
                            }
                        }
                    }
                    fill
                }
            };
            // Strict `<` over ascending vertex ids: ties break to the
            // smallest variable, keeping plans deterministic.
            if cost < best_cost {
                best_cost = cost;
                best = v;
            }
        }
        let neigh: Vec<usize> = adj[best].iter().copied().collect();
        width = width.max(neigh.len());
        for (i, &a) in neigh.iter().enumerate() {
            for &b in &neigh[i + 1..] {
                adj[a].insert(b);
                adj[b].insert(a);
            }
        }
        for &a in &neigh {
            adj[a].remove(&best);
        }
        adj[best].clear();
        alive.remove(&best);
        order.push(best);
    }
    (order, width)
}

fn best_order(adjacency: &[BTreeSet<usize>]) -> (Vec<usize>, usize, TreeHeuristic) {
    let (fill_order, fill_width) = eliminate(adjacency.to_vec(), TreeHeuristic::MinFill);
    let (deg_order, deg_width) = eliminate(adjacency.to_vec(), TreeHeuristic::MinDegree);
    if deg_width < fill_width {
        (deg_order, deg_width, TreeHeuristic::MinDegree)
    } else {
        (fill_order, fill_width, TreeHeuristic::MinFill)
    }
}

/// One bucket of the tree: the variable it eliminates, its member
/// constraints, and the separator edge to its parent.
struct Bucket {
    /// Eliminated variable (position into `TreeStructure::vars`).
    var: usize,
    /// Constraint indices (into `problem.constraints()`) whose
    /// earliest scope variable this is.
    constraints: Vec<usize>,
    /// Separator: cluster minus `var`, sorted by variable position.
    /// Every separator variable has a *later* elimination rank.
    separator: Vec<usize>,
    /// Parent bucket rank (the separator's earliest variable), `None`
    /// for roots.
    parent: Option<usize>,
    /// Child bucket ranks whose messages feed this bucket.
    children: Vec<usize>,
    /// `∏ sizes(separator)` — the message table length.
    sep_cells: u64,
    /// `sep_cells × sizes(var)` — entries enumerated to fill it.
    cluster_cells: u64,
}

/// The scope-level shape of a tree solve: elimination order, buckets,
/// separators and the bottom-up parallel schedule. Depends only on
/// variables, domains and constraint *scopes* — never on levels — so
/// the incremental path can keep it across content-only deltas.
pub(crate) struct TreeStructure {
    vars: Vec<Var>,
    sizes: Vec<usize>,
    values: Vec<Vec<Val>>,
    /// Positions of the variables of interest.
    con_pos: Vec<usize>,
    induced_width: usize,
    heuristic: TreeHeuristic,
    buckets: Vec<Bucket>,
    /// Bottom-up waves: every bucket in a wave has all its children in
    /// earlier waves, so a wave's tables can be computed in parallel.
    levels: Vec<Vec<usize>>,
    /// Indices of empty-scope (constant) constraints.
    constants: Vec<usize>,
    max_separator: usize,
    max_cluster_cells: u64,
    total_cells: u64,
}

impl TreeStructure {
    pub(crate) fn build<S: Semiring>(problem: &Scsp<S>) -> Result<TreeStructure, SolveError> {
        let vars = problem.problem_vars();
        let mut sizes = Vec::with_capacity(vars.len());
        let mut values = Vec::with_capacity(vars.len());
        for v in &vars {
            let d = problem.domains().get(v)?;
            sizes.push(d.len());
            values.push(d.values().to_vec());
        }
        let con_pos = problem
            .con()
            .iter()
            .map(|v| vars.binary_search(v).expect("con var is a problem var"))
            .collect();
        let adjacency = primal_graph(problem, &vars);
        let (order, induced_width, heuristic) = best_order(&adjacency);
        let mut rank = vec![0; vars.len()];
        for (r, &p) in order.iter().enumerate() {
            rank[p] = r;
        }

        let pos = |v: &Var| vars.binary_search(v).expect("scope var is a problem var");
        let mut constants = Vec::new();
        let mut members: Vec<Vec<usize>> = vec![Vec::new(); vars.len()];
        for (ci, c) in problem.constraints().iter().enumerate() {
            match c.scope().iter().map(|v| rank[pos(v)]).min() {
                Some(earliest) => members[earliest].push(ci),
                None => constants.push(ci),
            }
        }

        let mut buckets: Vec<Bucket> = Vec::with_capacity(vars.len());
        let mut incoming: Vec<Vec<usize>> = vec![Vec::new(); vars.len()];
        let (mut max_separator, mut max_cluster_cells, mut total_cells) = (0, 0u64, 0u64);
        for (r, &var) in order.iter().enumerate() {
            let mut cluster: BTreeSet<usize> = BTreeSet::new();
            cluster.insert(var);
            for &ci in &members[r] {
                cluster.extend(problem.constraints()[ci].scope().iter().map(pos));
            }
            for &child in &incoming[r] {
                cluster.extend(buckets[child].separator.iter().copied());
            }
            let separator: Vec<usize> = cluster.iter().copied().filter(|&p| p != var).collect();
            let parent = separator.iter().map(|&p| rank[p]).min();
            if let Some(parent) = parent {
                debug_assert!(parent > r, "separator ranks are later than the bucket's");
                incoming[parent].push(r);
            }
            let sep_cells = separator
                .iter()
                .fold(1u64, |acc, &p| acc.saturating_mul(sizes[p] as u64));
            let cluster_cells = sep_cells.saturating_mul(sizes[var] as u64);
            max_separator = max_separator.max(separator.len());
            max_cluster_cells = max_cluster_cells.max(cluster_cells);
            total_cells = total_cells.saturating_add(cluster_cells);
            buckets.push(Bucket {
                var,
                constraints: std::mem::take(&mut members[r]),
                separator,
                parent,
                children: Vec::new(),
                sep_cells,
                cluster_cells,
            });
        }
        for r in 0..buckets.len() {
            buckets[r].children = std::mem::take(&mut incoming[r]);
        }

        // Bottom-up waves by subtree height: children always sit in
        // strictly earlier waves.
        let mut height = vec![0usize; buckets.len()];
        let mut levels: Vec<Vec<usize>> = Vec::new();
        for r in 0..buckets.len() {
            // Children have smaller rank, so their heights are final.
            let h = buckets[r]
                .children
                .iter()
                .map(|&c| height[c] + 1)
                .max()
                .unwrap_or(0);
            height[r] = h;
            if levels.len() <= h {
                levels.resize(h + 1, Vec::new());
            }
            levels[h].push(r);
        }

        Ok(TreeStructure {
            vars,
            sizes,
            values,
            con_pos,
            induced_width,
            heuristic,
            buckets,
            levels,
            constants,
            max_separator,
            max_cluster_cells,
            total_cells,
        })
    }

    /// Whether every cluster table fits the configured width cap and
    /// the absolute memory guard.
    pub(crate) fn fits(&self, config: &SolverConfig) -> bool {
        self.max_separator <= config.width_cap && self.max_cluster_cells <= TREE_CELL_LIMIT
    }

    fn tree_stats(&self, fallback: bool, context_hits: u64) -> TreeStats {
        TreeStats {
            clusters: self.buckets.len(),
            induced_width: self.induced_width,
            max_separator: self.max_separator,
            heuristic: match self.heuristic {
                TreeHeuristic::MinFill => "min-fill",
                TreeHeuristic::MinDegree => "min-degree",
            },
            table_cells: if fallback { 0 } else { self.total_cells },
            context_hits,
            fallback,
        }
    }
}

/// Flat mixed-radix index of `idx` restricted to `positions`.
fn flat_index(positions: &[usize], sizes: &[usize], idx: &[usize]) -> usize {
    positions.iter().fold(0, |acc, &p| acc * sizes[p] + idx[p])
}

/// Decodes `flat` back into `idx` at `positions` (inverse of
/// [`flat_index`]).
fn unflatten(positions: &[usize], sizes: &[usize], mut flat: usize, idx: &mut [usize]) {
    for &p in positions.iter().rev() {
        idx[p] = flat % sizes[p];
        flat /= sizes[p];
    }
}

/// A constraint materialised as a flat table over its (sorted,
/// de-duplicated) scope positions, for `O(1)` lookups in the bucket
/// enumeration inner loop.
struct FlatConstraint<S: Semiring> {
    positions: Vec<usize>,
    table: Vec<S::Value>,
}

impl<S: Semiring> FlatConstraint<S> {
    fn materialize(
        constraint: &crate::Constraint<S>,
        vars: &[Var],
        sizes: &[usize],
        values: &[Vec<Val>],
    ) -> FlatConstraint<S> {
        let scope_pos: Vec<usize> = constraint
            .scope()
            .iter()
            .map(|v| vars.binary_search(v).expect("scope var is a problem var"))
            .collect();
        let mut positions = scope_pos.clone();
        positions.sort_unstable();
        positions.dedup();
        let cells: usize = positions.iter().map(|&p| sizes[p]).product();
        let mut idx = vec![0usize; vars.len()];
        let mut tuple: Vec<Val> = Vec::with_capacity(scope_pos.len());
        let mut table = Vec::with_capacity(cells);
        for flat in 0..cells {
            unflatten(&positions, sizes, flat, &mut idx);
            tuple.clear();
            tuple.extend(scope_pos.iter().map(|&p| values[p][idx[p]].clone()));
            table.push(constraint.eval_tuple(&tuple));
        }
        FlatConstraint { positions, table }
    }

    fn lookup(&self, sizes: &[usize], idx: &[usize]) -> &S::Value {
        &self.table[flat_index(&self.positions, sizes, idx)]
    }
}

/// One bucket's upward message — the AND/OR context cache for the
/// subtree it roots: per separator assignment, the eliminated value of
/// the subtree (`message`) and the argmax value index of the bucket's
/// variable (`choice`, consumed by the downward witness pass).
#[derive(Clone)]
struct BucketTable<S: Semiring> {
    message: Vec<S::Value>,
    choice: Vec<usize>,
}

/// Computes bucket `r`'s table from its member constraints and its
/// children's messages. Returns the table plus the number of child
/// context-cache reads beyond each entry's first use.
fn compute_bucket<S: Semiring>(
    semiring: &S,
    structure: &TreeStructure,
    flats: &[Option<FlatConstraint<S>>],
    tables: &[Option<BucketTable<S>>],
    r: usize,
) -> (BucketTable<S>, u64) {
    let bucket = &structure.buckets[r];
    let sizes = &structure.sizes;
    let sep_cells = bucket.sep_cells as usize;
    let d = sizes[bucket.var];
    let mut idx = vec![0usize; structure.vars.len()];
    let mut message = Vec::with_capacity(sep_cells);
    let mut choice = Vec::with_capacity(sep_cells);
    for s in 0..sep_cells {
        unflatten(&bucket.separator, sizes, s, &mut idx);
        let mut sum = semiring.zero();
        let mut best = 0usize;
        for v in 0..d {
            idx[bucket.var] = v;
            let mut acc = semiring.one();
            for &ci in &bucket.constraints {
                let flat = flats[ci].as_ref().expect("bucket constraint materialised");
                acc = semiring.times(&acc, flat.lookup(sizes, &idx));
                if semiring.is_zero(&acc) {
                    break;
                }
            }
            if !semiring.is_zero(&acc) {
                for &child in &bucket.children {
                    let table = tables[child].as_ref().expect("child computed first");
                    let cs = flat_index(&structure.buckets[child].separator, sizes, &idx);
                    acc = semiring.times(&acc, &table.message[cs]);
                    if semiring.is_zero(&acc) {
                        break;
                    }
                }
            }
            // `+` is the lub, so the running Σ *is* the max; `lt`
            // keeps the first value attaining it (deterministic
            // witness, matching the search engines' first-witness
            // discipline).
            if semiring.lt(&sum, &acc) {
                best = v;
            }
            sum = semiring.plus(&sum, &acc);
        }
        message.push(sum);
        choice.push(best);
    }
    // Each child entry is read once per parent-side cluster cell;
    // reads beyond the child's own cell count are cache hits (the
    // repeated-context reuse AND/OR caching buys).
    let hits = bucket
        .children
        .iter()
        .map(|&c| {
            bucket
                .cluster_cells
                .saturating_sub(structure.buckets[c].sep_cells)
        })
        .sum();
    (BucketTable { message, choice }, hits)
}

/// Runs the upward pass: wave-parallel bucket tables, bottom-up.
/// `dirty` selects which buckets to (re)compute — `None` means all.
fn upward_pass<S: Semiring>(
    semiring: &S,
    structure: &TreeStructure,
    flats: &[Option<FlatConstraint<S>>],
    tables: &mut [Option<BucketTable<S>>],
    dirty: Option<&[bool]>,
    config: &SolverConfig,
) -> u64 {
    let mut context_hits = 0;
    for level in &structure.levels {
        let todo: Vec<usize> = level
            .iter()
            .copied()
            .filter(|&r| dirty.map_or(true, |d| d[r]))
            .collect();
        if todo.is_empty() {
            continue;
        }
        let threads = config.parallelism.thread_count(todo.len());
        let computed = fan_out(threads, todo.len(), |range| {
            range
                .map(|k| {
                    (
                        todo[k],
                        compute_bucket(semiring, structure, flats, tables, todo[k]),
                    )
                })
                .collect::<Vec<_>>()
        });
        for (r, (table, hits)) in computed.into_iter().flatten() {
            context_hits += hits;
            tables[r] = Some(table);
        }
    }
    context_hits
}

/// Combines root messages and constant constraints into `blevel`, then
/// reconstructs the witness downward and assembles the [`Solution`].
fn conclude<S: Semiring>(
    problem: &Scsp<S>,
    structure: &TreeStructure,
    tables: &[Option<BucketTable<S>>],
    stats: SolverStats,
) -> Solution<S> {
    let semiring = problem.semiring();
    let mut blevel = semiring.one();
    for &ci in &structure.constants {
        blevel = semiring.times(&blevel, &problem.constraints()[ci].eval_tuple(&[]));
    }
    for (r, bucket) in structure.buckets.iter().enumerate() {
        if bucket.parent.is_none() {
            let table = tables[r].as_ref().expect("root computed");
            blevel = semiring.times(&blevel, &table.message[0]);
        }
    }

    let best = if semiring.is_zero(&blevel) {
        Vec::new()
    } else {
        // Downward pass: reverse elimination order. Bucket r's
        // separator variables all have later ranks, hence are already
        // pinned; its cached argmax extends the context optimally.
        let mut idx = vec![0usize; structure.vars.len()];
        for r in (0..structure.buckets.len()).rev() {
            let bucket = &structure.buckets[r];
            let table = tables[r].as_ref().expect("bucket computed");
            let s = flat_index(&bucket.separator, &structure.sizes, &idx);
            idx[bucket.var] = table.choice[s];
        }
        let con_eta: Assignment = structure
            .con_pos
            .iter()
            .map(|&p| {
                (
                    structure.vars[p].clone(),
                    structure.values[p][idx[p]].clone(),
                )
            })
            .collect();
        vec![(con_eta, blevel.clone())]
    };
    Solution::new(blevel, best, None).with_stats(stats)
}

fn materialize_all<S: Semiring>(
    problem: &Scsp<S>,
    structure: &TreeStructure,
) -> Vec<Option<FlatConstraint<S>>> {
    problem
        .constraints()
        .iter()
        .enumerate()
        .map(|(ci, c)| {
            (!structure.constants.contains(&ci)).then(|| {
                FlatConstraint::materialize(c, &structure.vars, &structure.sizes, &structure.values)
            })
        })
        .collect()
}

/// Solves `problem` with a full (non-incremental) tree pass. The
/// caller has already checked [`TreeStructure::fits`].
fn solve_tree<S: Semiring>(
    problem: &Scsp<S>,
    structure: &TreeStructure,
    config: &SolverConfig,
) -> Solution<S> {
    let start = Instant::now();
    let semiring = problem.semiring().clone();
    let flats = materialize_all(problem, structure);
    let mut tables: Vec<Option<BucketTable<S>>> = vec![None; structure.buckets.len()];
    let context_hits = upward_pass(&semiring, structure, &flats, &mut tables, None, config);
    let stats = SolverStats {
        nodes: structure.total_cells,
        threads: config
            .parallelism
            .thread_count(structure.levels.first().map_or(1, |l| l.len())),
        tree: Some(structure.tree_stats(false, context_hits)),
        solve_time: start.elapsed(),
        ..SolverStats::default()
    };
    conclude(problem, structure, &tables, stats)
}

/// The tree-guided greedy fallback seed: a complete assignment built
/// in reverse elimination order, each variable taking the value
/// maximising its *own bucket's* constraints against the already-fixed
/// suffix (the tree DP with messages dropped). Its canonically
/// evaluated level is achievable by construction, hence a sound
/// incumbent — offered only on exact-`×` semirings, where the seed's
/// association matches the search's own fold (the same gate as
/// incremental warm seeds).
fn greedy_seed<S: Semiring>(problem: &Scsp<S>, structure: &TreeStructure) -> Option<S::Value> {
    let semiring = problem.semiring();
    if !semiring.exact_times() {
        return None;
    }
    let mut idx = vec![0usize; structure.vars.len()];
    let mut tuple: Vec<Val> = Vec::new();
    for r in (0..structure.buckets.len()).rev() {
        let bucket = &structure.buckets[r];
        let mut best = semiring.zero();
        let mut best_v = 0usize;
        for v in 0..structure.sizes[bucket.var] {
            idx[bucket.var] = v;
            let mut acc = semiring.one();
            for &ci in &bucket.constraints {
                let c = &problem.constraints()[ci];
                tuple.clear();
                tuple.extend(c.scope().iter().map(|sv| {
                    let p = structure
                        .vars
                        .binary_search(sv)
                        .expect("scope var is a problem var");
                    structure.values[p][idx[p]].clone()
                }));
                acc = semiring.times(&acc, &c.eval_tuple(&tuple));
                if semiring.is_zero(&acc) {
                    break;
                }
            }
            if v == 0 || semiring.lt(&best, &acc) {
                best = acc;
                best_v = v;
            }
        }
        idx[bucket.var] = best_v;
    }
    // Canonical (constraint-order) evaluation of the greedy assignment:
    // exactly the level any engine would report for it.
    let full: Assignment = structure
        .vars
        .iter()
        .enumerate()
        .map(|(p, v)| (v.clone(), structure.values[p][idx[p]].clone()))
        .collect();
    let levels: Vec<S::Value> = problem
        .constraints()
        .iter()
        .map(|c| c.eval(&full))
        .collect();
    let seed = semiring.product(levels.iter());
    (!semiring.is_zero(&seed)).then_some(seed)
}

/// What the tree engine decided for one problem.
pub(crate) enum TreeAttempt<S: Semiring> {
    /// Tree-solved exactly.
    Solved(Box<Solution<S>>),
    /// Width cap or memory guard exceeded under
    /// [`Engine::TreeDecompose`]: the caller must run branch-and-bound,
    /// seeded when a greedy tree bound was achievable, and attach
    /// `stats` to the result.
    Fallback {
        seed: Option<S::Value>,
        stats: TreeStats,
    },
    /// Branch-and-bound chosen outright ([`Engine::BranchBound`], or
    /// [`Engine::Auto`] on a component wider than the cap).
    Declined,
}

/// Engine selection for one (component) problem: plans the elimination
/// order, checks it against the cap, and either tree-solves or hands
/// back to branch-and-bound.
pub(crate) fn attempt<S: Semiring>(
    problem: &Scsp<S>,
    config: &SolverConfig,
) -> Result<TreeAttempt<S>, SolveError> {
    if config.engine == Engine::BranchBound {
        return Ok(TreeAttempt::Declined);
    }
    let structure = TreeStructure::build(problem)?;
    if structure.fits(config) {
        return Ok(TreeAttempt::Solved(Box::new(solve_tree(
            problem, &structure, config,
        ))));
    }
    match config.engine {
        Engine::Auto => Ok(TreeAttempt::Declined),
        Engine::TreeDecompose => Ok(TreeAttempt::Fallback {
            seed: greedy_seed(problem, &structure),
            stats: structure.tree_stats(true, 0),
        }),
        Engine::BranchBound => unreachable!("returned Declined above"),
    }
}

/// Per-cluster reuse counters from one incremental tree solve.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct TreeReuse {
    pub reused: u64,
    pub recomputed: u64,
}

/// Persistent tree state for one connected component inside
/// [`IncrementalSolver`](crate::solve::IncrementalSolver): the
/// scope-level structure plus the materialised constraint tables and
/// bucket messages of the last solve, keyed by per-bucket content
/// signatures so a content-only delta invalidates exactly the touched
/// bucket and its ancestors toward the root.
pub(crate) struct TreeState<S: Semiring> {
    structure: TreeStructure,
    flats: Vec<Option<FlatConstraint<S>>>,
    tables: Vec<Option<BucketTable<S>>>,
    /// `(id, version)` per constraint, aligned with
    /// `problem.constraints()`.
    con_sigs: Vec<(u64, u64)>,
    /// Scope-shape fingerprint: constraint scopes + domain sizes.
    scope_sig: u64,
}

fn fnv(acc: u64, word: u64) -> u64 {
    (acc ^ word).wrapping_mul(0x100000001b3)
}

fn scope_signature<S: Semiring>(problem: &Scsp<S>, structure: &TreeStructure) -> u64 {
    let mut sig = 0xcbf29ce484222325u64;
    sig = fnv(sig, structure.vars.len() as u64);
    for &s in &structure.sizes {
        sig = fnv(sig, s as u64);
    }
    for c in problem.constraints() {
        sig = fnv(sig, u64::MAX); // scope delimiter
        for v in c.scope() {
            let p = structure
                .vars
                .binary_search(v)
                .expect("scope var is a problem var");
            sig = fnv(sig, p as u64);
        }
    }
    sig
}

/// Incremental tree solve for one component. `sigs` carries the
/// `(constraint id, version)` pairs aligned with
/// `problem.constraints()`. Returns `None` when the component is too
/// wide for the cap (caller falls back to search); otherwise the
/// solution plus how many cluster tables were reused versus
/// recomputed. The caller owns dropping `state` on domain
/// re-declarations (tables are only sound against the domains they
/// were filled from).
pub(crate) fn solve_incremental<S: Semiring>(
    problem: &Scsp<S>,
    sigs: &[(u64, u64)],
    state: &mut Option<TreeState<S>>,
    config: &SolverConfig,
) -> Result<Option<(Solution<S>, TreeReuse)>, SolveError> {
    let start = Instant::now();
    let semiring = problem.semiring().clone();

    // Validate or rebuild the scope-level structure.
    let rebuild = match state {
        Some(st) => {
            let structure = TreeStructure::build(problem)?;
            if scope_signature(problem, &structure) != st.scope_sig {
                Some(structure)
            } else {
                None
            }
        }
        None => Some(TreeStructure::build(problem)?),
    };
    if let Some(structure) = rebuild {
        if !structure.fits(config) {
            *state = None;
            return Ok(None);
        }
        let scope_sig = scope_signature(problem, &structure);
        let flats = materialize_all(problem, &structure);
        let mut tables = vec![None; structure.buckets.len()];
        let context_hits = upward_pass(&semiring, &structure, &flats, &mut tables, None, config);
        let reuse = TreeReuse {
            reused: 0,
            recomputed: structure.buckets.len() as u64,
        };
        let stats = SolverStats {
            nodes: structure.total_cells,
            threads: 1,
            tree: Some(structure.tree_stats(false, context_hits)),
            solve_time: start.elapsed(),
            ..SolverStats::default()
        };
        let solution = conclude(problem, &structure, &tables, stats);
        *state = Some(TreeState {
            structure,
            flats,
            tables,
            con_sigs: sigs.to_vec(),
            scope_sig,
        });
        return Ok(Some((solution, reuse)));
    }

    let st = state.as_mut().expect("validated above");
    // Content-only deltas: re-materialise changed constraints, mark
    // their buckets dirty, and propagate dirtiness to ancestors (a
    // bucket's message feeds its parent's table).
    let mut dirty = vec![false; st.structure.buckets.len()];
    for (ci, (old, new)) in st.con_sigs.iter().zip(sigs).enumerate() {
        if old != new {
            if !st.structure.constants.contains(&ci) {
                st.flats[ci] = Some(FlatConstraint::materialize(
                    &problem.constraints()[ci],
                    &st.structure.vars,
                    &st.structure.sizes,
                    &st.structure.values,
                ));
            }
            for (r, bucket) in st.structure.buckets.iter().enumerate() {
                if bucket.constraints.contains(&ci) {
                    dirty[r] = true;
                }
            }
        }
    }
    for r in 0..st.structure.buckets.len() {
        if dirty[r] {
            if let Some(parent) = st.structure.buckets[r].parent {
                dirty[parent] = true;
            }
        }
    }
    st.con_sigs = sigs.to_vec();
    let recomputed = dirty.iter().filter(|&&d| d).count() as u64;
    let context_hits = upward_pass(
        &semiring,
        &st.structure,
        &st.flats,
        &mut st.tables,
        Some(&dirty),
        config,
    );
    let reuse = TreeReuse {
        reused: st.structure.buckets.len() as u64 - recomputed,
        recomputed,
    };
    let stats = SolverStats {
        nodes: st
            .structure
            .buckets
            .iter()
            .enumerate()
            .filter(|(r, _)| dirty[*r])
            .map(|(_, b)| b.cluster_cells)
            .sum(),
        threads: 1,
        tree: Some(st.structure.tree_stats(false, context_hits)),
        solve_time: start.elapsed(),
        ..SolverStats::default()
    };
    Ok(Some((
        conclude(problem, &st.structure, &st.tables, stats),
        reuse,
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate::{banded_weighted, chain_weighted, random_weighted, RandomScsp};
    use crate::solve::{BranchAndBound, Solver, VarOrder};
    use crate::{Constraint, Domain};
    use softsoa_semiring::WeightedInt;

    fn tree_config() -> SolverConfig {
        SolverConfig::default()
            .with_tree_decompose(8)
            .with_parallelism(crate::solve::Parallelism::Sequential)
    }

    #[test]
    fn chain_plans_width_one() {
        let p = chain_weighted(10, 3, 7);
        let plan = plan_elimination(&p).unwrap();
        assert_eq!(plan.induced_width, 1);
        assert_eq!(plan.order.len(), 10);
    }

    #[test]
    fn banded_plan_width_is_at_most_the_band() {
        for band in 1..=3 {
            let p = banded_weighted(12, 3, band, 5);
            let plan = plan_elimination(&p).unwrap();
            assert!(
                plan.induced_width <= band,
                "band {band} planned at width {}",
                plan.induced_width
            );
        }
    }

    #[test]
    fn tree_solve_matches_search_on_random_problems() {
        for seed in 0..12 {
            let p = random_weighted(&RandomScsp {
                vars: 6,
                domain_size: 3,
                constraints: 8,
                arity: 2,
                seed,
            });
            let search = BranchAndBound::default().solve(&p).unwrap();
            let tree = BranchAndBound::with_config(VarOrder::Input, tree_config())
                .solve(&p)
                .unwrap();
            assert_eq!(tree.blevel(), search.blevel(), "seed {seed}");
            assert_eq!(
                tree.best_assignment().is_some(),
                search.best_assignment().is_some(),
                "seed {seed}"
            );
        }
    }

    #[test]
    fn tree_witness_attains_the_blevel() {
        for seed in 0..8 {
            let p = banded_weighted(10, 3, 2, seed).of_interest(p_vars(10));
            let tree = BranchAndBound::with_config(VarOrder::Input, tree_config())
                .solve(&p)
                .unwrap();
            if let Some(best) = tree.best_assignment() {
                let level = p.semiring().product(
                    p.constraints()
                        .iter()
                        .map(|c| c.eval(best))
                        .collect::<Vec<_>>()
                        .iter(),
                );
                assert_eq!(&level, tree.blevel(), "seed {seed}");
            }
        }
    }

    fn p_vars(n: usize) -> Vec<Var> {
        (0..n).map(|i| Var::new(format!("x{i}"))).collect()
    }

    #[test]
    fn width_cap_falls_back_to_seeded_search() {
        // Width cap 1 on a band-2 problem: must fall back yet stay
        // exact.
        let p = banded_weighted(8, 3, 2, 3);
        let search = BranchAndBound::default().solve(&p).unwrap();
        let capped = BranchAndBound::with_config(VarOrder::Input, tree_config().with_width_cap(1))
            .solve(&p)
            .unwrap();
        assert_eq!(capped.blevel(), search.blevel());
        let stats = capped.stats().unwrap();
        let tree = stats.tree.as_ref().expect("fallback records tree stats");
        assert!(tree.fallback);
        assert!(tree.induced_width > 1);
    }

    #[test]
    fn auto_engine_declines_wide_components() {
        let p = random_weighted(&RandomScsp {
            vars: 6,
            domain_size: 2,
            constraints: 12,
            arity: 3,
            seed: 2,
        });
        let cfg = SolverConfig::default()
            .with_engine(Engine::Auto)
            .with_width_cap(1);
        // Too wide for the cap: Auto silently searches, same result.
        let auto = BranchAndBound::with_config(VarOrder::Input, cfg)
            .solve(&p)
            .unwrap();
        let search = BranchAndBound::default().solve(&p).unwrap();
        assert_eq!(auto.blevel(), search.blevel());
    }

    #[test]
    fn empty_and_inconsistent_problems() {
        let empty = Scsp::new(WeightedInt);
        let sol = BranchAndBound::with_config(VarOrder::Input, tree_config())
            .solve(&empty)
            .unwrap();
        assert_eq!(*sol.blevel(), 0);

        let dead = Scsp::new(WeightedInt)
            .with_domain("x", Domain::ints(0..=2))
            .with_constraint(Constraint::never(WeightedInt))
            .of_interest(["x"]);
        let sol = BranchAndBound::with_config(VarOrder::Input, tree_config())
            .solve(&dead)
            .unwrap();
        assert_eq!(*sol.blevel(), u64::MAX);
        assert!(sol.best_assignment().is_none());
    }

    #[test]
    fn parallel_waves_match_sequential() {
        let p = banded_weighted(14, 3, 2, 11);
        let seq = BranchAndBound::with_config(VarOrder::Input, tree_config())
            .solve(&p)
            .unwrap();
        let par = BranchAndBound::with_config(
            VarOrder::Input,
            tree_config().with_parallelism(crate::solve::Parallelism::Threads(3)),
        )
        .solve(&p)
        .unwrap();
        assert_eq!(par.blevel(), seq.blevel());
        assert_eq!(par.best_assignment(), seq.best_assignment());
    }

    #[test]
    fn incremental_state_reuses_clean_clusters() {
        let p = chain_weighted(8, 3, 4);
        let sigs: Vec<(u64, u64)> = (0..p.constraints().len() as u64).map(|i| (i, 0)).collect();
        let cfg = tree_config();
        let mut state = None;
        let (cold, reuse) = solve_incremental(&p, &sigs, &mut state, &cfg)
            .unwrap()
            .expect("fits");
        assert_eq!(reuse.reused, 0);

        // Content-only change to one constraint: only its bucket and
        // the ancestor path recompute.
        let mut sigs2 = sigs.clone();
        sigs2[3] = (3, 99);
        let mut q = Scsp::new(WeightedInt);
        for (v, d) in p.domains().iter() {
            q.add_domain(v.clone(), d.clone());
        }
        for (ci, c) in p.constraints().iter().enumerate() {
            if ci == 3 {
                let inner = c.clone();
                let scope = c.scope().to_vec();
                q.add_constraint(Constraint::from_fn(WeightedInt, &scope, move |vals| {
                    inner.eval_tuple(vals).saturating_add(5)
                }));
            } else {
                q.add_constraint(c.clone());
            }
        }
        let q = q.of_interest(p.con().iter().cloned());
        let (warm, reuse) = solve_incremental(&q, &sigs2, &mut state, &cfg)
            .unwrap()
            .expect("fits");
        assert!(reuse.reused > 0, "clean clusters reused");
        assert!(reuse.recomputed < sigs.len() as u64);
        let scratch = BranchAndBound::default().solve(&q).unwrap();
        assert_eq!(warm.blevel(), scratch.blevel());
        assert_eq!(*warm.blevel(), cold.blevel().saturating_add(5));
    }
}
