//! Scoped-thread fan-out used by the parallel solver paths.
//!
//! The workspace builds without external thread-pool crates, so the
//! solvers split their outermost loop into contiguous index ranges and
//! run each range on a scoped `std` thread. Results come back in chunk
//! order, which is what lets the solvers reproduce their sequential
//! answers (first-witness and frontier-representative choices) exactly.

use std::ops::Range;

/// Splits `0..total` into `threads` contiguous chunks and runs `f` on
/// each chunk, returning the results **in chunk order**.
///
/// With one thread (or at most one item) `f` runs inline on the caller
/// thread. A panicking worker propagates its panic to the caller.
pub(crate) fn fan_out<R, F>(threads: usize, total: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(Range<usize>) -> R + Sync,
{
    let threads = threads.clamp(1, total.max(1));
    if threads == 1 {
        return vec![f(0..total)];
    }
    let base = total / threads;
    let rem = total % threads;
    let mut ranges = Vec::with_capacity(threads);
    let mut start = 0;
    for t in 0..threads {
        let len = base + usize::from(t < rem);
        ranges.push(start..start + len);
        start += len;
    }
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|range| scope.spawn(move || f(range)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_every_index_exactly_once_in_order() {
        for threads in 1..=5 {
            for total in 0..=17 {
                let parts = fan_out(threads, total, |r| r.collect::<Vec<_>>());
                let flat: Vec<usize> = parts.into_iter().flatten().collect();
                assert_eq!(flat, (0..total).collect::<Vec<_>>(), "{threads} x {total}");
            }
        }
    }

    #[test]
    fn single_thread_runs_inline() {
        let parts = fan_out(1, 10, |r| r.len());
        assert_eq!(parts, vec![10]);
    }

    #[test]
    #[should_panic(expected = "worker boom")]
    fn worker_panics_propagate() {
        let _ = fan_out(2, 4, |r| {
            if r.contains(&3) {
                panic!("worker boom");
            }
            r.len()
        });
    }
}
