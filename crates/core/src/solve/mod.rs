//! SCSP solvers.
//!
//! Three algorithms, all computing the same semantics (they are
//! property-tested against each other):
//!
//! - [`EnumerationSolver`] — the reference implementation: combine all
//!   constraints and project on `con` by exhaustive enumeration.
//! - [`BranchAndBound`] — depth-first search with `×`-monotonicity
//!   pruning; finds a best assignment and `blevel` for *totally
//!   ordered* semirings without building the solution table.
//!   Optionally bound-driven: a [`MiniBucketBound`] pass
//!   ([`SolverConfig::ibound`]) precomputes admissible per-depth
//!   completion estimates, and
//!   [`solve_seeded`](BranchAndBound::solve_seeded) warm-starts the
//!   incumbent from a known-achievable level — both preserve the blind
//!   search's `blevel` and witness exactly.
//! - [`BucketElimination`] — variable elimination; cost is exponential
//!   only in the induced width of the chosen elimination order, not in
//!   the total number of variables.
//! - [`ParetoBranchAndBound`] — frontier-bounded search for *partially
//!   ordered* semirings (multi-criteria Pareto optimisation).
//! - [`IncrementalSolver`] — a persistent solver accepting
//!   add/retract/update constraint deltas that re-searches only the
//!   connected components a delta touched, replaying clean components
//!   from a shared cache.
//! - [`treedec`] — bucket-tree elimination with AND/OR context caching
//!   and witness reconstruction, selected per component via
//!   [`SolverConfig::engine`]; polynomial in the induced width on
//!   bounded-treewidth problems.
//!
//! Plus two equivalence-preserving preprocessing passes:
//! [`prune_zero_supports`] (semiring arc consistency, any semiring)
//! and [`add_unary_projections`] (idempotent-`×` semirings only).

mod branch_bound;
mod bucket;
mod config;
mod decompose;
mod enumeration;
mod incremental;
pub(crate) mod parallel;
mod pareto;
mod preprocess;
mod propagate;
mod stats;
pub mod treedec;

pub use branch_bound::{BranchAndBound, VarOrder};
pub use bucket::{BucketElimination, EliminationOrder, MiniBucketBound};
pub use config::{Engine, Parallelism, PropagationMode, SolverConfig, DEFAULT_WIDTH_CAP};
pub use decompose::constraint_components;
pub use enumeration::EnumerationSolver;
pub use incremental::{ConstraintId, IncrementalSolver, IncrementalStats};
pub use pareto::ParetoBranchAndBound;
pub use preprocess::{add_unary_projections, prune_zero_supports, PruneReport};
pub use propagate::{PerConstraintStats, PropagationStats};
pub use stats::{ConstraintEvalStats, SolverStats, TreeStats};
pub use treedec::{plan_elimination, EliminationPlan, TreeHeuristic};

use std::fmt;

use softsoa_semiring::Semiring;

use crate::{Assignment, Constraint, MissingDomainError, Scsp, Val, Var};

/// An error produced while solving an SCSP.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SolveError {
    /// A problem variable has no declared domain.
    MissingDomain(MissingDomainError),
    /// The chosen algorithm requires a totally ordered semiring.
    RequiresTotalOrder,
    /// A branch-and-bound run expanded more nodes than the configured
    /// diagnostic [`node_budget`](SolverConfig::node_budget).
    NodeBudgetExceeded {
        /// The budget that was exhausted.
        budget: u64,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::MissingDomain(e) => write!(f, "{e}"),
            SolveError::RequiresTotalOrder => {
                write!(f, "this solver requires a totally ordered semiring")
            }
            SolveError::NodeBudgetExceeded { budget } => {
                write!(f, "branch-and-bound exceeded its node budget of {budget}")
            }
        }
    }
}

impl std::error::Error for SolveError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SolveError::MissingDomain(e) => Some(e),
            SolveError::RequiresTotalOrder | SolveError::NodeBudgetExceeded { .. } => None,
        }
    }
}

impl From<MissingDomainError> for SolveError {
    fn from(e: MissingDomainError) -> SolveError {
        SolveError::MissingDomain(e)
    }
}

/// The result of solving an SCSP.
///
/// Always carries the best level of consistency `blevel(P)` and the set
/// of *maximal* solutions over `con` (for totally ordered semirings:
/// the assignments achieving `blevel`; for partial orders: the
/// non-dominated frontier). Solvers that materialise `Sol(P)` also
/// expose it as a constraint table.
#[derive(Debug, Clone)]
pub struct Solution<S: Semiring> {
    blevel: S::Value,
    best: Vec<(Assignment, S::Value)>,
    table: Option<Constraint<S>>,
    stats: Option<SolverStats>,
}

impl<S: Semiring> Solution<S> {
    pub(crate) fn new(
        blevel: S::Value,
        best: Vec<(Assignment, S::Value)>,
        table: Option<Constraint<S>>,
    ) -> Solution<S> {
        Solution {
            blevel,
            best,
            table,
            stats: None,
        }
    }

    pub(crate) fn with_stats(mut self, stats: SolverStats) -> Solution<S> {
        self.stats = Some(stats);
        self
    }

    /// The best level of consistency `blevel(P) = Sol(P) ⇓ ∅`.
    pub fn blevel(&self) -> &S::Value {
        &self.blevel
    }

    /// The maximal solutions: assignments over `con` whose level is not
    /// dominated by any other, with their levels.
    pub fn best(&self) -> &[(Assignment, S::Value)] {
        &self.best
    }

    /// A single best assignment, if any solution is better than `0`.
    pub fn best_assignment(&self) -> Option<&Assignment> {
        self.best.first().map(|(eta, _)| eta)
    }

    /// The solution constraint `Sol(P) = (⊗C) ⇓ con`, if the solver
    /// materialised it ([`BranchAndBound`] does not).
    pub fn solution_constraint(&self) -> Option<&Constraint<S>> {
        self.table.as_ref()
    }

    /// Instrumentation counters from the solver run, if it recorded
    /// them (all solvers in this module do).
    pub fn stats(&self) -> Option<&SolverStats> {
        self.stats.as_ref()
    }
}

/// A strategy for solving SCSPs.
pub trait Solver<S: Semiring> {
    /// Solves the problem.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError::MissingDomain`] if a problem variable has
    /// no domain, or algorithm-specific errors such as
    /// [`SolveError::RequiresTotalOrder`].
    fn solve(&self, problem: &Scsp<S>) -> Result<Solution<S>, SolveError>;
}

/// Extracts the non-dominated `(tuple, value)` entries.
///
/// For totally ordered semirings this is "all entries achieving the
/// maximum"; for partial orders, the Pareto frontier.
pub(crate) fn non_dominated<S: Semiring>(
    semiring: &S,
    entries: &[(Vec<Val>, S::Value)],
) -> Vec<(Vec<Val>, S::Value)> {
    if entries.is_empty() {
        return Vec::new();
    }
    if semiring.is_total() {
        let max = entries
            .iter()
            .fold(semiring.zero(), |acc, (_, v)| semiring.plus(&acc, v));
        entries.iter().filter(|(_, v)| *v == max).cloned().collect()
    } else {
        entries
            .iter()
            .filter(|(_, v)| !entries.iter().any(|(_, w)| semiring.lt(v, w)))
            .cloned()
            .collect()
    }
}

/// Turns non-dominated tuples over `con` into `(Assignment, value)`
/// pairs, dropping entries at level `0` (they satisfy nothing).
pub(crate) fn best_from_entries<S: Semiring>(
    semiring: &S,
    con: &[Var],
    entries: &[(Vec<Val>, S::Value)],
) -> Vec<(Assignment, S::Value)> {
    non_dominated(semiring, entries)
        .into_iter()
        .filter(|(_, v)| !semiring.is_zero(v))
        .map(|(tuple, v)| (Assignment::from_tuple(con, &tuple), v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use softsoa_semiring::{Boolean, Product, WeightedInt};

    #[test]
    fn non_dominated_total_order() {
        let entries = vec![
            (vec![Val::Int(0)], 7u64),
            (vec![Val::Int(1)], 16),
            (vec![Val::Int(2)], 7),
        ];
        let best = non_dominated(&WeightedInt, &entries);
        // Weighted: smaller is better, so both 7s are maximal.
        assert_eq!(best.len(), 2);
        assert!(best.iter().all(|(_, v)| *v == 7));
    }

    #[test]
    fn non_dominated_partial_order_keeps_frontier() {
        let s = Product::new(Boolean, WeightedInt);
        let entries = vec![
            (vec![Val::Int(0)], (true, 5u64)),
            (vec![Val::Int(1)], (false, 1)),
            (vec![Val::Int(2)], (false, 9)), // dominated by both others? (false,9) vs (true,5): 9≥5 and false≤true → dominated
        ];
        let best = non_dominated(&s, &entries);
        assert_eq!(best.len(), 2);
        assert!(best.iter().any(|(_, v)| *v == (true, 5)));
        assert!(best.iter().any(|(_, v)| *v == (false, 1)));
    }

    #[test]
    fn best_from_entries_drops_zero() {
        let entries = vec![(vec![Val::Int(0)], u64::MAX)];
        let best = best_from_entries(&WeightedInt, &crate::vars(["x"]), &entries);
        assert!(best.is_empty());
    }
}
