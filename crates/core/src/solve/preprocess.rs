//! Soft local-consistency preprocessing.
//!
//! Two equivalence-preserving transformations applied before search:
//!
//! - [`prune_zero_supports`] — a semiring generalisation of arc
//!   consistency that is sound for **every** c-semiring: a domain
//!   value whose every extension through some constraint is `0` can
//!   never contribute to `blevel` and is removed from the domain.
//! - [`add_unary_projections`] — for semirings with **idempotent `×`**
//!   (fuzzy, crisp, set-based, capacity), combining a constraint with
//!   its own unary projections changes nothing (`c ⊗ (c ⇓ x) ≡ c`),
//!   but gives branch-and-bound unary information it can prune with at
//!   depth 1 instead of at the constraint's full depth.
//!
//! Both return a *new* problem; `Sol`, `blevel` and maximal solutions
//! with non-`0` level are preserved exactly (property-tested against
//! the unpreprocessed problem).
//!
//! These passes rewrite the *problem* before any solver runs; they
//! compose with the in-search bound machinery
//! ([`MiniBucketBound`](crate::solve::MiniBucketBound) via
//! [`SolverConfig::ibound`](crate::solve::SolverConfig::ibound)),
//! which leaves the problem untouched and instead over-estimates best
//! completions per depth. [`add_unary_projections`] in particular
//! tightens those mini-bucket estimates, since the injected unary
//! tables complete at their variable's own depth.

use softsoa_semiring::{IdempotentTimes, Semiring};

use crate::solve::SolveError;
use crate::{Domain, Scsp, Val, Var};

/// Statistics from a [`prune_zero_supports`] run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PruneReport {
    /// Domain values removed in total.
    pub removed_values: usize,
    /// Fixpoint iterations performed.
    pub iterations: usize,
    /// Whether some domain was wiped out entirely — the problem is
    /// inconsistent (`blevel = 0`).
    pub wiped_out: bool,
}

/// Removes every domain value `d` of a variable `x` such that some
/// constraint maps **all** assignments with `x := d` to `0`, iterating
/// to fixpoint.
///
/// Because `0` absorbs `×`, every complete assignment through such a
/// value has combined level `0`; and since `Σ` of `0`s is `0`, the
/// solution table, `blevel` and the non-zero maximal solutions are
/// unchanged. Cost per pass is the same as materialising every
/// constraint over the *current* (already pruned) domains.
///
/// # Errors
///
/// Returns [`SolveError::MissingDomain`] if a constraint mentions a
/// variable without a domain.
///
/// # Examples
///
/// ```
/// use softsoa_core::{Scsp, Constraint, Domain};
/// use softsoa_core::solve::prune_zero_supports;
/// use softsoa_semiring::WeightedInt;
///
/// // x < y over {0..3}: x = 3 and y = 0 have no support.
/// let p = Scsp::new(WeightedInt)
///     .with_domain("x", Domain::ints(0..=3))
///     .with_domain("y", Domain::ints(0..=3))
///     .with_constraint(Constraint::binary(WeightedInt, "x", "y", |a, b| {
///         if a.as_int() < b.as_int() { 0 } else { u64::MAX }
///     }))
///     .of_interest(["x"]);
/// let (pruned, report) = prune_zero_supports(&p)?;
/// assert_eq!(report.removed_values, 2);
/// assert_eq!(pruned.domains().get(&"x".into())?.len(), 3);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn prune_zero_supports<S: Semiring>(
    problem: &Scsp<S>,
) -> Result<(Scsp<S>, PruneReport), SolveError> {
    let semiring = problem.semiring().clone();
    let mut pruned = problem.clone();
    let mut report = PruneReport::default();

    loop {
        report.iterations += 1;
        let mut changed = false;

        for constraint in problem.constraints() {
            let scope = constraint.scope().to_vec();
            for var in &scope {
                let domain = pruned.domains().get(var)?.clone();
                let others: Vec<Var> = scope.iter().filter(|v| *v != var).cloned().collect();
                // Note: for a unary constraint `others` is empty and
                // `tuples` yields exactly one empty tuple.
                let other_tuples: Vec<Vec<Val>> = pruned.domains().tuples(&others)?.collect();
                let mut kept: Vec<Val> = Vec::with_capacity(domain.len());
                for value in domain.iter() {
                    // Σ over extensions of x := value through this
                    // constraint is non-zero iff some extension is.
                    let mut full = vec![Val::Bool(false); scope.len()];
                    let mut supported = false;
                    for ot in &other_tuples {
                        let mut oi = 0;
                        for (slot, v) in scope.iter().enumerate() {
                            if v == var {
                                full[slot] = value.clone();
                            } else {
                                full[slot] = ot[oi].clone();
                                oi += 1;
                            }
                        }
                        if !semiring.is_zero(&constraint.eval_tuple(&full)) {
                            supported = true;
                            break;
                        }
                    }
                    if supported {
                        kept.push(value.clone());
                    } else {
                        report.removed_values += 1;
                        changed = true;
                    }
                }
                if kept.is_empty() {
                    report.wiped_out = true;
                    pruned.add_domain(var.clone(), Domain::new(kept));
                    return Ok((pruned, report));
                }
                if kept.len() != pruned.domains().get(var)?.len() {
                    pruned.add_domain(var.clone(), Domain::new(kept));
                }
            }
        }

        if !changed {
            return Ok((pruned, report));
        }
    }
}

/// Adds, for every constraint `c` and every variable `x` in its scope,
/// the unary projection `c ⇓ {x}` as an extra constraint.
///
/// Sound only for semirings with idempotent `×` (enforced by the
/// [`IdempotentTimes`] bound): there `c ⊗ (c ⇓ x) ≡ c`, because
/// `cη ≤ (c ⇓ x)η` pointwise and `a × b = glb(a, b)`. The added unary
/// constraints complete at depth 1 of a branch-and-bound search, so
/// hopeless values are pruned immediately.
///
/// # Errors
///
/// Returns [`SolveError::MissingDomain`] if a constraint mentions a
/// variable without a domain.
pub fn add_unary_projections<S: IdempotentTimes>(problem: &Scsp<S>) -> Result<Scsp<S>, SolveError> {
    let mut extended = problem.clone();
    for constraint in problem.constraints() {
        if constraint.scope().len() < 2 {
            continue;
        }
        for var in constraint.scope().to_vec() {
            let unary = constraint.project(std::slice::from_ref(&var), problem.domains())?;
            extended.add_constraint(unary);
        }
    }
    Ok(extended)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve::{BranchAndBound, EnumerationSolver, Solver};
    use crate::Constraint;
    use softsoa_semiring::{Fuzzy, Unit, WeightedInt};

    fn lt_constraint() -> Constraint<WeightedInt> {
        Constraint::binary(WeightedInt, "x", "y", |a, b| {
            if a.as_int() < b.as_int() {
                0
            } else {
                u64::MAX
            }
        })
    }

    #[test]
    fn prune_removes_unsupported_values() {
        let p = Scsp::new(WeightedInt)
            .with_domain("x", Domain::ints(0..=3))
            .with_domain("y", Domain::ints(0..=3))
            .with_constraint(lt_constraint())
            .of_interest(["x"]);
        let (pruned, report) = prune_zero_supports(&p).unwrap();
        // x = 3 has no y > 3; y = 0 has no x < 0.
        assert_eq!(report.removed_values, 2);
        assert!(!report.wiped_out);
        assert!(!pruned
            .domains()
            .get(&Var::new("x"))
            .unwrap()
            .contains(&Val::Int(3)));
        assert!(!pruned
            .domains()
            .get(&Var::new("y"))
            .unwrap()
            .contains(&Val::Int(0)));
    }

    #[test]
    fn prune_iterates_to_fixpoint_on_chains() {
        // x < y < z over {0..2}: after one pass x∈{0,1}, z∈{1,2};
        // the second pass tightens x to {0} and z to {2} via y.
        let mut p = Scsp::new(WeightedInt).of_interest(["x"]);
        for v in ["x", "y", "z"] {
            p.add_domain(v, Domain::ints(0..=2));
        }
        p.add_constraint(lt_constraint());
        p.add_constraint(Constraint::binary(WeightedInt, "y", "z", |a, b| {
            if a.as_int() < b.as_int() {
                0
            } else {
                u64::MAX
            }
        }));
        let (pruned, report) = prune_zero_supports(&p).unwrap();
        assert!(report.iterations >= 2);
        assert_eq!(
            pruned.domains().get(&Var::new("x")).unwrap().values(),
            &[Val::Int(0)]
        );
        assert_eq!(
            pruned.domains().get(&Var::new("z")).unwrap().values(),
            &[Val::Int(2)]
        );
    }

    #[test]
    fn prune_preserves_blevel_and_best() {
        for seed in 0..8 {
            let cfg = crate::generate::RandomScsp {
                vars: 4,
                domain_size: 3,
                constraints: 6,
                arity: 2,
                seed,
            };
            let p = crate::generate::random_weighted(&cfg);
            let before = EnumerationSolver::new().solve(&p).unwrap();
            let (pruned, _) = prune_zero_supports(&p).unwrap();
            let after = EnumerationSolver::new().solve(&pruned).unwrap();
            assert_eq!(before.blevel(), after.blevel(), "seed {seed}");
        }
    }

    #[test]
    fn wipeout_detects_inconsistency() {
        let p = Scsp::new(WeightedInt)
            .with_domain("x", Domain::ints(0..=3))
            .with_constraint(Constraint::unary(WeightedInt, "x", |_| u64::MAX))
            .of_interest(["x"]);
        let (pruned, report) = prune_zero_supports(&p).unwrap();
        assert!(report.wiped_out);
        assert_eq!(report.removed_values, 4);
        assert!(pruned.domains().get(&Var::new("x")).unwrap().is_empty());
    }

    #[test]
    fn unary_projections_preserve_semantics_fuzzy() {
        for seed in 0..8 {
            let cfg = crate::generate::RandomScsp {
                vars: 4,
                domain_size: 3,
                constraints: 5,
                arity: 2,
                seed,
            };
            let p = crate::generate::random_fuzzy(&cfg);
            let extended = add_unary_projections(&p).unwrap();
            assert!(extended.constraints().len() >= p.constraints().len());
            let before = EnumerationSolver::new().solve(&p).unwrap();
            let after = BranchAndBound::default().solve(&extended).unwrap();
            assert_eq!(before.blevel(), after.blevel(), "seed {seed}");
        }
    }

    #[test]
    fn unary_projections_give_bnb_early_pruning() {
        // A fuzzy problem where the binary constraint's bad rows are
        // only discovered at depth 2 without the projections.
        let u = |v: f64| Unit::new(v).unwrap();
        let p = Scsp::new(Fuzzy)
            .with_domain("x", Domain::ints(0..=9))
            .with_domain("y", Domain::ints(0..=9))
            .with_constraint(Constraint::binary(Fuzzy, "x", "y", move |a, b| {
                if a.as_int() == Some(0) && b.as_int() == Some(0) {
                    u(1.0)
                } else {
                    u(0.1)
                }
            }))
            .of_interest(["x"]);
        let extended = add_unary_projections(&p).unwrap();
        let plain = BranchAndBound::default().solve(&p).unwrap();
        let fast = BranchAndBound::default().solve(&extended).unwrap();
        assert_eq!(plain.blevel(), fast.blevel());
    }
}
