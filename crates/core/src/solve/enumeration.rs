//! The reference exhaustive solver.

use std::collections::HashMap;

use softsoa_semiring::Semiring;

use crate::solve::{best_from_entries, Solution, SolveError, Solver};
use crate::{Constraint, Scsp, Val, Var};

/// The reference solver: enumerate every assignment of the problem
/// variables, combine all constraints pointwise and aggregate over
/// `con` with the semiring sum.
///
/// Complexity is `O(Π |Dᵢ| · |C|)` — exponential in the total number
/// of variables — but the implementation follows the definitions of
/// Sec. 2 literally, which makes it the semantics every other solver is
/// tested against.
///
/// # Examples
///
/// ```
/// use softsoa_core::{Scsp, Constraint, Domain};
/// use softsoa_core::solve::{EnumerationSolver, Solver};
/// use softsoa_semiring::WeightedInt;
///
/// let p = Scsp::new(WeightedInt)
///     .with_domain("x", Domain::ints(0..=9))
///     .with_constraint(Constraint::unary(WeightedInt, "x", |v| {
///         v.as_int().unwrap() as u64 + 3
///     }))
///     .of_interest(["x"]);
/// let solution = EnumerationSolver::new().solve(&p)?;
/// assert_eq!(*solution.blevel(), 3); // best at x = 0
/// # Ok::<(), softsoa_core::SolveError>(())
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct EnumerationSolver {
    _private: (),
}

impl EnumerationSolver {
    /// Creates the solver.
    pub fn new() -> EnumerationSolver {
        EnumerationSolver::default()
    }
}

impl<S: Semiring> Solver<S> for EnumerationSolver {
    fn solve(&self, problem: &Scsp<S>) -> Result<Solution<S>, SolveError> {
        let semiring = problem.semiring().clone();
        let all_vars = problem.problem_vars();
        let con: Vec<Var> = problem.con().to_vec();

        // Position of each constraint-scope variable and each con
        // variable within the full variable tuple.
        let scope_embeddings: Vec<Vec<usize>> = problem
            .constraints()
            .iter()
            .map(|c| {
                c.scope()
                    .iter()
                    .map(|v| all_vars.binary_search(v).expect("scope var is a problem var"))
                    .collect()
            })
            .collect();
        let con_embedding: Vec<usize> = con
            .iter()
            .map(|v| all_vars.binary_search(v).expect("con var is a problem var"))
            .collect();

        let mut per_con: HashMap<Vec<Val>, S::Value> = HashMap::new();
        for tuple in problem.domains().tuples(&all_vars)? {
            let mut value = semiring.one();
            for (c, emb) in problem.constraints().iter().zip(&scope_embeddings) {
                if semiring.is_zero(&value) {
                    break; // 0 absorbs ×
                }
                let sub: Vec<Val> = emb.iter().map(|&i| tuple[i].clone()).collect();
                value = semiring.times(&value, &c.eval_tuple(&sub));
            }
            let key: Vec<Val> = con_embedding.iter().map(|&i| tuple[i].clone()).collect();
            match per_con.get_mut(&key) {
                Some(acc) => *acc = semiring.plus(acc, &value),
                None => {
                    per_con.insert(key, value);
                }
            }
        }

        let entries: Vec<(Vec<Val>, S::Value)> = per_con.into_iter().collect();
        let blevel = semiring.sum(entries.iter().map(|(_, v)| v));
        let best = best_from_entries(&semiring, &con, &entries);
        let table = Constraint::table(semiring.clone(), &con, entries, semiring.zero())
            .with_label("Sol(P)");
        Ok(Solution::new(blevel, best, Some(table)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Assignment, Domain};
    use softsoa_semiring::{Fuzzy, Unit, WeightedInt};

    fn fig1() -> Scsp<WeightedInt> {
        crate::testutil::fig1_problem()
    }

    #[test]
    fn fig1_solution_table() {
        let sol = EnumerationSolver::new().solve(&fig1()).unwrap();
        assert_eq!(*sol.blevel(), 7);
        let table = sol.solution_constraint().unwrap();
        assert_eq!(table.eval(&Assignment::new().bind("x", "a")), 7);
        assert_eq!(table.eval(&Assignment::new().bind("x", "b")), 16);
        // The single best solution is X = a (reached with Y = b).
        assert_eq!(sol.best().len(), 1);
        assert_eq!(
            sol.best()[0].0.get(&Var::new("x")),
            Some(&Val::sym("a"))
        );
        assert_eq!(sol.best()[0].1, 7);
    }

    #[test]
    fn empty_con_projects_to_scalar() {
        let mut p = fig1();
        p = p.of_interest(Vec::<Var>::new());
        let sol = EnumerationSolver::new().solve(&p).unwrap();
        assert_eq!(*sol.blevel(), 7);
        let table = sol.solution_constraint().unwrap();
        assert_eq!(table.eval(&Assignment::new()), 7);
    }

    #[test]
    fn no_constraints_is_fully_consistent() {
        let p = Scsp::new(WeightedInt)
            .with_domain("x", Domain::ints(0..=3))
            .of_interest(["x"]);
        let sol = EnumerationSolver::new().solve(&p).unwrap();
        assert_eq!(*sol.blevel(), 0); // weighted one
        assert_eq!(sol.best().len(), 4);
    }

    #[test]
    fn fuzzy_maximin() {
        let u = |v: f64| Unit::new(v).unwrap();
        let p = Scsp::new(Fuzzy)
            .with_domain("x", Domain::ints(1..=9))
            .with_constraint(Constraint::unary(Fuzzy, "x", move |v| {
                // Client preference rises with x.
                Unit::clamped((v.as_int().unwrap() as f64 - 1.0) / 8.0)
            }))
            .with_constraint(Constraint::unary(Fuzzy, "x", move |v| {
                // Provider preference falls with x.
                Unit::clamped((9.0 - v.as_int().unwrap() as f64) / 8.0)
            }))
            .of_interest(["x"]);
        let sol = EnumerationSolver::new().solve(&p).unwrap();
        assert_eq!(*sol.blevel(), u(0.5));
        assert_eq!(
            sol.best_assignment().unwrap().get(&Var::new("x")),
            Some(&Val::Int(5))
        );
    }

    #[test]
    fn missing_domain_is_an_error() {
        let p = Scsp::new(WeightedInt)
            .with_constraint(Constraint::unary(WeightedInt, "x", |_| 0))
            .of_interest(["x"]);
        assert!(matches!(
            EnumerationSolver::new().solve(&p),
            Err(SolveError::MissingDomain(_))
        ));
    }
}
