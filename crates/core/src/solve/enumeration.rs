//! The reference exhaustive solver.

use std::collections::HashMap;
use std::time::Instant;

use softsoa_semiring::Semiring;

use crate::compile::{Aggregate, CompiledProblem};
use crate::solve::parallel::fan_out;
use crate::solve::{best_from_entries, Solution, SolveError, Solver, SolverConfig, SolverStats};
use crate::{Constraint, Scsp, Val, Var};

/// The reference solver: enumerate every assignment of the problem
/// variables, combine all constraints pointwise and aggregate over
/// `con` with the semiring sum.
///
/// Complexity is `O(Π |Dᵢ| · |C|)` — exponential in the total number
/// of variables. [`EnumerationSolver::new`] follows the definitions of
/// Sec. 2 literally (lazy evaluation, one thread), which makes it the
/// semantics every other engine is tested against;
/// [`EnumerationSolver::with_config`] enables the compiled engine —
/// flattened `⊗`-operands, dense tables, index-tuple enumeration — and
/// splits the outermost variable's domain across threads, merging the
/// per-chunk `con` tables with the semiring `+`.
///
/// # Examples
///
/// ```
/// use softsoa_core::{Scsp, Constraint, Domain};
/// use softsoa_core::solve::{EnumerationSolver, Solver, SolverConfig};
/// use softsoa_semiring::WeightedInt;
///
/// let p = Scsp::new(WeightedInt)
///     .with_domain("x", Domain::ints(0..=9))
///     .with_constraint(Constraint::unary(WeightedInt, "x", |v| {
///         v.as_int().unwrap() as u64 + 3
///     }))
///     .of_interest(["x"]);
/// let solution = EnumerationSolver::with_config(SolverConfig::default()).solve(&p)?;
/// assert_eq!(*solution.blevel(), 3); // best at x = 0
/// assert!(solution.stats().is_some());
/// # Ok::<(), softsoa_core::SolveError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct EnumerationSolver {
    config: SolverConfig,
}

impl Default for EnumerationSolver {
    fn default() -> EnumerationSolver {
        EnumerationSolver::new()
    }
}

impl EnumerationSolver {
    /// Creates the lazy sequential reference solver.
    pub fn new() -> EnumerationSolver {
        EnumerationSolver {
            config: SolverConfig::reference(),
        }
    }

    /// Creates the solver with an explicit engine configuration.
    pub fn with_config(config: SolverConfig) -> EnumerationSolver {
        EnumerationSolver { config }
    }

    fn solve_compiled<S: Semiring>(&self, problem: &Scsp<S>) -> Result<Solution<S>, SolveError> {
        let start = Instant::now();
        let semiring = problem.semiring().clone();
        let con: Vec<Var> = problem.con().to_vec();
        let compiled = CompiledProblem::from_problem(problem)?;
        let threads = self.config.parallelism.thread_count(compiled.outer_size());
        let parts = fan_out(threads, compiled.outer_size(), |range| {
            compiled.aggregate_range(range)
        });
        let thread_nodes: Vec<u64> = parts.iter().map(|p| p.nodes).collect();
        let agg = Aggregate::merge(&semiring, parts);
        let entries = compiled.con_entries(agg.table);
        let blevel = semiring.sum(entries.iter().map(|(_, v)| v));
        let best = best_from_entries(&semiring, &con, &entries);
        let table = Constraint::table(semiring.clone(), &con, entries, semiring.zero())
            .with_label("Sol(P)");
        let stats = SolverStats {
            nodes: agg.nodes,
            prunings: agg.prunings,
            threads,
            thread_nodes,
            compile_time: compiled.compile_time(),
            solve_time: start.elapsed(),
            constraint_evals: compiled.eval_stats(&agg.evals),
            ..SolverStats::default()
        };
        Ok(Solution::new(blevel, best, Some(table)).with_stats(stats))
    }

    fn solve_lazy<S: Semiring>(&self, problem: &Scsp<S>) -> Result<Solution<S>, SolveError> {
        let start = Instant::now();
        let semiring = problem.semiring().clone();
        let all_vars = problem.problem_vars();
        let con: Vec<Var> = problem.con().to_vec();

        // Position of each constraint-scope variable and each con
        // variable within the full variable tuple.
        let scope_embeddings: Vec<Vec<usize>> = problem
            .constraints()
            .iter()
            .map(|c| {
                c.scope()
                    .iter()
                    .map(|v| {
                        all_vars
                            .binary_search(v)
                            .expect("scope var is a problem var")
                    })
                    .collect()
            })
            .collect();
        let con_embedding: Vec<usize> = con
            .iter()
            .map(|v| all_vars.binary_search(v).expect("con var is a problem var"))
            .collect();

        let mut nodes = 0u64;
        let mut per_con: HashMap<Vec<Val>, S::Value> = HashMap::new();
        for tuple in problem.domains().tuples(&all_vars)? {
            nodes += 1;
            let mut value = semiring.one();
            for (c, emb) in problem.constraints().iter().zip(&scope_embeddings) {
                if semiring.is_zero(&value) {
                    break; // 0 absorbs ×
                }
                let sub: Vec<Val> = emb.iter().map(|&i| tuple[i].clone()).collect();
                value = semiring.times(&value, &c.eval_tuple(&sub));
            }
            let key: Vec<Val> = con_embedding.iter().map(|&i| tuple[i].clone()).collect();
            match per_con.get_mut(&key) {
                Some(acc) => *acc = semiring.plus(acc, &value),
                None => {
                    per_con.insert(key, value);
                }
            }
        }

        let entries: Vec<(Vec<Val>, S::Value)> = per_con.into_iter().collect();
        let blevel = semiring.sum(entries.iter().map(|(_, v)| v));
        let best = best_from_entries(&semiring, &con, &entries);
        let table = Constraint::table(semiring.clone(), &con, entries, semiring.zero())
            .with_label("Sol(P)");
        let stats = SolverStats {
            nodes,
            threads: 1,
            solve_time: start.elapsed(),
            ..SolverStats::default()
        };
        Ok(Solution::new(blevel, best, Some(table)).with_stats(stats))
    }
}

impl<S: Semiring> Solver<S> for EnumerationSolver {
    fn solve(&self, problem: &Scsp<S>) -> Result<Solution<S>, SolveError> {
        if self.config.compiled {
            self.solve_compiled(problem)
        } else {
            self.solve_lazy(problem)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve::Parallelism;
    use crate::{Assignment, Domain};
    use softsoa_semiring::{Fuzzy, Unit, WeightedInt};

    fn fig1() -> Scsp<WeightedInt> {
        crate::testutil::fig1_problem()
    }

    #[test]
    fn fig1_solution_table() {
        let sol = EnumerationSolver::new().solve(&fig1()).unwrap();
        assert_eq!(*sol.blevel(), 7);
        let table = sol.solution_constraint().unwrap();
        assert_eq!(table.eval(&Assignment::new().bind("x", "a")), 7);
        assert_eq!(table.eval(&Assignment::new().bind("x", "b")), 16);
        // The single best solution is X = a (reached with Y = b).
        assert_eq!(sol.best().len(), 1);
        assert_eq!(sol.best()[0].0.get(&Var::new("x")), Some(&Val::sym("a")));
        assert_eq!(sol.best()[0].1, 7);
    }

    #[test]
    fn compiled_agrees_with_lazy_reference() {
        for threads in [1, 3] {
            let cfg = SolverConfig::default().with_parallelism(Parallelism::Threads(threads));
            let sol = EnumerationSolver::with_config(cfg).solve(&fig1()).unwrap();
            assert_eq!(*sol.blevel(), 7);
            let table = sol.solution_constraint().unwrap();
            assert_eq!(table.eval(&Assignment::new().bind("x", "a")), 7);
            assert_eq!(table.eval(&Assignment::new().bind("x", "b")), 16);
            let stats = sol.stats().unwrap();
            assert_eq!(stats.threads, threads.min(2)); // two outer values
            assert_eq!(stats.constraint_evals.len(), 3);
            assert!(stats.constraint_evals.iter().all(|c| c.dense_cells > 0));
        }
    }

    #[test]
    fn empty_con_projects_to_scalar() {
        let mut p = fig1();
        p = p.of_interest(Vec::<Var>::new());
        for solver in [
            EnumerationSolver::new(),
            EnumerationSolver::with_config(SolverConfig::default()),
        ] {
            let sol = solver.solve(&p).unwrap();
            assert_eq!(*sol.blevel(), 7);
            let table = sol.solution_constraint().unwrap();
            assert_eq!(table.eval(&Assignment::new()), 7);
        }
    }

    #[test]
    fn no_constraints_is_fully_consistent() {
        let p = Scsp::new(WeightedInt)
            .with_domain("x", Domain::ints(0..=3))
            .of_interest(["x"]);
        for solver in [
            EnumerationSolver::new(),
            EnumerationSolver::with_config(SolverConfig::default()),
        ] {
            let sol = solver.solve(&p).unwrap();
            assert_eq!(*sol.blevel(), 0); // weighted one
            assert_eq!(sol.best().len(), 4);
        }
    }

    #[test]
    fn fuzzy_maximin() {
        let u = |v: f64| Unit::new(v).unwrap();
        let p = Scsp::new(Fuzzy)
            .with_domain("x", Domain::ints(1..=9))
            .with_constraint(Constraint::unary(Fuzzy, "x", move |v| {
                // Client preference rises with x.
                Unit::clamped((v.as_int().unwrap() as f64 - 1.0) / 8.0)
            }))
            .with_constraint(Constraint::unary(Fuzzy, "x", move |v| {
                // Provider preference falls with x.
                Unit::clamped((9.0 - v.as_int().unwrap() as f64) / 8.0)
            }))
            .of_interest(["x"]);
        let sol = EnumerationSolver::new().solve(&p).unwrap();
        assert_eq!(*sol.blevel(), u(0.5));
        assert_eq!(
            sol.best_assignment().unwrap().get(&Var::new("x")),
            Some(&Val::Int(5))
        );
    }

    #[test]
    fn missing_domain_is_an_error() {
        let p = Scsp::new(WeightedInt)
            .with_constraint(Constraint::unary(WeightedInt, "x", |_| 0))
            .of_interest(["x"]);
        for solver in [
            EnumerationSolver::new(),
            EnumerationSolver::with_config(SolverConfig::default()),
        ] {
            assert!(matches!(
                solver.solve(&p),
                Err(SolveError::MissingDomain(_))
            ));
        }
    }
}
