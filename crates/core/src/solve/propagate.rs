//! Soft arc-consistency propagation over a [`CompiledProblem`].
//!
//! A *revision* is a pair (operand, scope position): revising it
//! recomputes, for every live value `d` of that variable, the best
//! level `support(d)` any live tuple of the operand assigning `d` can
//! reach (the `⊕`-sum over the operand's live extensions). Because
//! `×` only worsens levels in a c-semiring (`a × b ≤ a`), the product
//! of a value's supports across every operand containing its variable
//! is an *upper bound* on the level of any complete assignment using
//! that value — so a value whose bound is `0`, or strictly below a
//! level already known achievable, can be pruned without touching the
//! `blevel` or the blind search's first witness.
//!
//! The engine is the classic AC-3 revision worklist: pruning a value
//! of `x` re-enqueues every revision of a *neighbouring* variable
//! (one sharing an operand with `x`), until fixpoint or until some
//! variable wipes out (no live values — the problem is inconsistent
//! at the current floor). During branch-and-bound descent the same
//! worklist runs incrementally: assigning `x := d` prunes the other
//! values of `x` onto an undo trail, propagates, and the trail frame
//! is popped on backtrack.
//!
//! Only dense-materialised operands of arity ≥ 1 are revisable;
//! constants and lazy (too-big-to-materialise) operands contribute
//! the trivial bound `1`, which keeps every rule sound.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use softsoa_semiring::Semiring;

use crate::compile::CompiledProblem;

/// Per-operand revision counters, in the style of a classic AC-3
/// engine's per-constraint instrumentation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PerConstraintStats {
    /// The operand's label (constraint label or `c{i}` fallback).
    pub label: String,
    /// How many times one of the operand's revisions was recomputed.
    pub revisions: u64,
    /// Domain values pruned by a bound tightened through this operand.
    pub prunes: u64,
    /// Wall-clock time spent inside this operand's revisions.
    pub time: Duration,
}

/// Counters describing the propagation work of one solve.
#[derive(Debug, Clone, Default)]
pub struct PropagationStats {
    /// Total revisions executed (root pass plus in-search).
    pub revisions: u64,
    /// Domain values removed by the root fixpoint pass.
    pub root_prunes: u64,
    /// Domain values removed by in-search propagation
    /// ([`PropagationMode::Full`](crate::solve::PropagationMode)
    /// only); counted across all undone frames.
    pub node_prunes: u64,
    /// Domain wipeouts detected (each cuts a whole subtree).
    pub wipeouts: u64,
    /// Wall-clock time spent propagating.
    pub time: Duration,
    /// Per-operand revision counters, in operand order.
    pub per_constraint: Vec<PerConstraintStats>,
}

impl PropagationStats {
    /// Sums `other` into `self` (used to merge worker and component
    /// stats). Per-constraint entries are matched positionally when
    /// the shapes agree and concatenated otherwise (distinct
    /// components compile distinct operand lists).
    pub(crate) fn absorb(&mut self, other: &PropagationStats) {
        self.revisions += other.revisions;
        self.root_prunes += other.root_prunes;
        self.node_prunes += other.node_prunes;
        self.wipeouts += other.wipeouts;
        self.time += other.time;
        let aligned = self.per_constraint.len() == other.per_constraint.len()
            && self
                .per_constraint
                .iter()
                .zip(&other.per_constraint)
                .all(|(a, b)| a.label == b.label);
        if aligned {
            for (acc, c) in self.per_constraint.iter_mut().zip(&other.per_constraint) {
                acc.revisions += c.revisions;
                acc.prunes += c.prunes;
                acc.time += c.time;
            }
        } else {
            self.per_constraint.extend(other.per_constraint.clone());
        }
    }
}

/// An undo-trail entry: either a pruned value or a revision's
/// previous support vector.
#[derive(Clone)]
enum Trail<S: Semiring> {
    Prune { var: usize, val: usize },
    Support { rid: usize, old: Vec<S::Value> },
}

/// The revision-worklist propagator.
///
/// Lives as long as the compiled problem it prunes; cloning it gives
/// each parallel worker an independent live-mask/trail state that
/// starts from the shared root fixpoint.
#[derive(Clone)]
pub(crate) struct Propagator<'a, S: Semiring> {
    compiled: &'a CompiledProblem<S>,
    /// `×`-product of the constant (empty-scope) operands: a factor of
    /// every complete assignment, so it multiplies into every bound.
    constant: S::Value,
    /// rid → (operand id, position in the operand's scope).
    revs: Vec<(usize, usize)>,
    /// var position → rids revising that variable.
    var_revs: Vec<Vec<usize>>,
    /// var position → rids to re-enqueue when the variable shrinks
    /// (revisions of a *different* variable of a shared operand).
    requeue: Vec<Vec<usize>>,
    /// var position → live mask over its domain values.
    live: Vec<Vec<bool>>,
    live_count: Vec<usize>,
    /// rid → current per-value support bound (`1` until first revised).
    supports: Vec<Vec<S::Value>>,
    queue: VecDeque<usize>,
    in_queue: Vec<bool>,
    trail: Vec<Trail<S>>,
    frames: Vec<usize>,
    in_search: bool,
    op_revisions: Vec<u64>,
    op_prunes: Vec<u64>,
    op_time: Vec<Duration>,
    root_prunes: u64,
    node_prunes: u64,
    wipeouts: u64,
    time: Duration,
}

impl<'a, S: Semiring> Propagator<'a, S> {
    pub(crate) fn new(compiled: &'a CompiledProblem<S>) -> Propagator<'a, S> {
        let semiring = compiled.semiring();
        let nvars = compiled.vars().len();
        let mut revs = Vec::new();
        let mut var_revs = vec![Vec::new(); nvars];
        let mut requeue = vec![Vec::new(); nvars];
        let mut supports = Vec::new();
        let mut constant = semiring.one();
        for oi in 0..compiled.num_operands() {
            if let Some(value) = compiled.operand_const(oi) {
                constant = semiring.times(&constant, value);
            }
            if compiled.operand_dense(oi).is_none() {
                continue; // constants and lazy operands bound trivially
            }
            let emb = compiled.operand_scope(oi).to_vec();
            for (k, &var) in emb.iter().enumerate() {
                let rid = revs.len();
                revs.push((oi, k));
                var_revs[var].push(rid);
                for &other in &emb {
                    if other != var {
                        requeue[other].push(rid);
                    }
                }
                supports.push(vec![semiring.one(); compiled.sizes()[var]]);
            }
        }
        let in_queue = vec![false; revs.len()];
        Propagator {
            compiled,
            constant,
            revs,
            var_revs,
            requeue,
            live: compiled.sizes().iter().map(|&n| vec![true; n]).collect(),
            live_count: compiled.sizes().to_vec(),
            supports,
            queue: VecDeque::new(),
            in_queue,
            trail: Vec::new(),
            frames: Vec::new(),
            in_search: false,
            op_revisions: vec![0; compiled.num_operands()],
            op_prunes: vec![0; compiled.num_operands()],
            op_time: vec![Duration::ZERO; compiled.num_operands()],
            root_prunes: 0,
            node_prunes: 0,
            wipeouts: 0,
            time: Duration::ZERO,
        }
    }

    /// Whether value `val` of the variable at `pos` is still live.
    pub(crate) fn is_live(&self, pos: usize, val: usize) -> bool {
        self.live[pos][val]
    }

    /// The current upper bound on any complete assignment giving the
    /// variable at `pos` the value `val`: the `×`-product of its
    /// supports across every revisable operand containing it.
    pub(crate) fn value_bound(&self, pos: usize, val: usize) -> S::Value {
        let semiring = self.compiled.semiring();
        let mut u = self.constant.clone();
        for &rid in &self.var_revs[pos] {
            u = semiring.times(&u, &self.supports[rid][val]);
            if semiring.is_zero(&u) {
                break;
            }
        }
        u
    }

    /// Live values remaining for the variable at `pos`.
    pub(crate) fn live_count(&self, pos: usize) -> usize {
        self.live_count[pos]
    }

    /// Runs the root fixpoint: every revision once, then to quiescence.
    /// Returns `false` on a wipeout (no complete assignment can reach
    /// the floor — for a floor of `0`, the problem is inconsistent).
    pub(crate) fn root(&mut self, floor: &S::Value) -> bool {
        self.in_search = false;
        // The constant factor caps every assignment outright: if it is
        // `0` (or below an achievable floor) nothing can succeed.
        let semiring = self.compiled.semiring();
        if semiring.is_zero(&self.constant) || semiring.lt(&self.constant, floor) {
            self.wipeouts += 1;
            return false;
        }
        for rid in 0..self.revs.len() {
            self.enqueue(rid);
        }
        self.drain(floor)
    }

    /// Opens an undo frame (one per search branch).
    pub(crate) fn begin_frame(&mut self) {
        self.frames.push(self.trail.len());
    }

    /// Pops the innermost frame, restoring live masks and supports.
    pub(crate) fn undo_frame(&mut self) {
        let mark = self.frames.pop().expect("frame to undo");
        while self.trail.len() > mark {
            match self.trail.pop().expect("trail entry") {
                Trail::Prune { var, val } => {
                    self.live[var][val] = true;
                    self.live_count[var] += 1;
                }
                Trail::Support { rid, old } => self.supports[rid] = old,
            }
        }
        for rid in self.queue.drain(..) {
            self.in_queue[rid] = false;
        }
    }

    /// Narrows the variable at `pos` to exactly `val` and propagates
    /// under `floor`. Returns `false` on wipeout (the branch cannot
    /// reach the floor); the caller must still pop its frame.
    pub(crate) fn assign(&mut self, pos: usize, val: usize, floor: &S::Value) -> bool {
        self.in_search = true;
        debug_assert!(self.live[pos][val], "assigning a dead value");
        let mut shrunk = false;
        for d in 0..self.live[pos].len() {
            if d != val && self.live[pos][d] {
                self.live[pos][d] = false;
                self.live_count[pos] -= 1;
                self.trail.push(Trail::Prune { var: pos, val: d });
                shrunk = true;
            }
        }
        if shrunk {
            for i in 0..self.requeue[pos].len() {
                self.enqueue(self.requeue[pos][i]);
            }
        }
        self.drain(floor)
    }

    fn enqueue(&mut self, rid: usize) {
        if !self.in_queue[rid] {
            self.in_queue[rid] = true;
            self.queue.push_back(rid);
        }
    }

    fn drain(&mut self, floor: &S::Value) -> bool {
        let start = Instant::now();
        let mut alive = true;
        while let Some(rid) = self.queue.pop_front() {
            self.in_queue[rid] = false;
            if !self.revise(rid, floor) {
                alive = false;
                break;
            }
        }
        self.time += start.elapsed();
        alive
    }

    /// Recomputes one revision's supports and tightens its variable.
    /// Returns `false` on wipeout.
    fn revise(&mut self, rid: usize, floor: &S::Value) -> bool {
        let started = Instant::now();
        let (oi, k) = self.revs[rid];
        self.op_revisions[oi] += 1;
        let semiring = self.compiled.semiring();
        let emb = self.compiled.operand_scope(oi);
        let strides = self.compiled.operand_strides(oi);
        let table = self.compiled.operand_dense(oi).expect("revisable operand");
        let arity = emb.len();

        let mut supp = vec![semiring.zero(); self.compiled.sizes()[emb[k]]];
        let mut first = vec![0usize; arity];
        let mut idx = vec![0usize; arity];
        let mut wiped = false;
        for (j, &var) in emb.iter().enumerate() {
            match self.live[var].iter().position(|&b| b) {
                Some(d) => {
                    first[j] = d;
                    idx[j] = d;
                }
                None => wiped = true,
            }
        }
        if !wiped {
            // Odometer over the live tuples of the operand (last
            // position fastest, matching the dense stride layout).
            'tuples: loop {
                let mut flat = 0;
                for (j, &d) in idx.iter().enumerate() {
                    flat += d * strides[j];
                }
                supp[idx[k]] = semiring.plus(&supp[idx[k]], &table[flat]);
                let mut j = arity;
                loop {
                    if j == 0 {
                        break 'tuples;
                    }
                    j -= 1;
                    let var = emb[j];
                    let size = self.live[var].len();
                    idx[j] += 1;
                    while idx[j] < size && !self.live[var][idx[j]] {
                        idx[j] += 1;
                    }
                    if idx[j] < size {
                        idx[(j + 1)..arity].copy_from_slice(&first[(j + 1)..arity]);
                        break;
                    }
                    idx[j] = first[j];
                }
            }
        }
        if supp != self.supports[rid] {
            let old = std::mem::replace(&mut self.supports[rid], supp);
            self.trail.push(Trail::Support { rid, old });
        }
        self.op_time[oi] += started.elapsed();
        self.tighten(emb[k], oi, floor)
    }

    /// Prunes every live value of `var` whose combined bound is `0`
    /// or strictly below `floor`. Returns `false` on wipeout.
    fn tighten(&mut self, var: usize, oi: usize, floor: &S::Value) -> bool {
        let semiring = self.compiled.semiring().clone();
        for d in 0..self.live[var].len() {
            if !self.live[var][d] {
                continue;
            }
            let u = self.value_bound(var, d);
            if !(semiring.is_zero(&u) || semiring.lt(&u, floor)) {
                continue;
            }
            self.live[var][d] = false;
            self.live_count[var] -= 1;
            self.trail.push(Trail::Prune { var, val: d });
            self.op_prunes[oi] += 1;
            if self.in_search {
                self.node_prunes += 1;
            } else {
                self.root_prunes += 1;
            }
            for i in 0..self.requeue[var].len() {
                self.enqueue(self.requeue[var][i]);
            }
            if self.live_count[var] == 0 {
                self.wipeouts += 1;
                return false;
            }
        }
        true
    }

    /// Snapshots the accumulated counters and zeroes them, so cloned
    /// workers report only their own in-search work on top of a
    /// shared root pass.
    pub(crate) fn take_stats(&mut self) -> PropagationStats {
        let per_constraint: Vec<PerConstraintStats> = (0..self.compiled.num_operands())
            .filter(|&oi| self.compiled.operand_dense(oi).is_some())
            .map(|oi| PerConstraintStats {
                label: self.compiled.operand_label(oi).to_string(),
                revisions: std::mem::take(&mut self.op_revisions[oi]),
                prunes: std::mem::take(&mut self.op_prunes[oi]),
                time: std::mem::take(&mut self.op_time[oi]),
            })
            .collect();
        PropagationStats {
            revisions: {
                // `op_revisions` was just drained into the snapshot.
                let total: u64 = per_constraint
                    .iter()
                    .map(|c: &PerConstraintStats| c.revisions)
                    .sum();
                total
            },
            root_prunes: std::mem::take(&mut self.root_prunes),
            node_prunes: std::mem::take(&mut self.node_prunes),
            wipeouts: std::mem::take(&mut self.wipeouts),
            time: std::mem::take(&mut self.time),
            per_constraint,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::fig1_problem;
    use crate::{Constraint, Domain, Scsp};
    use softsoa_semiring::{Semiring, WeightedInt};

    fn compiled(p: &Scsp<WeightedInt>) -> CompiledProblem<WeightedInt> {
        CompiledProblem::from_problem(p).unwrap()
    }

    #[test]
    fn root_pass_keeps_consistent_problems_alive() {
        let p = fig1_problem();
        let cp = compiled(&p);
        let mut prop = Propagator::new(&cp);
        assert!(prop.root(&WeightedInt.zero()));
        for pos in 0..cp.vars().len() {
            assert!(prop.live_count(pos) > 0);
        }
    }

    #[test]
    fn zero_supported_values_are_pruned_at_the_root() {
        // y = 1 is forbidden by the binary table: its only tuples are ∞.
        let p = Scsp::new(WeightedInt)
            .with_domain("x", Domain::ints(0..=1))
            .with_domain("y", Domain::ints(0..=1))
            .with_constraint(Constraint::binary(WeightedInt, "x", "y", |_, b| {
                if b.as_int() == Some(1) {
                    u64::MAX
                } else {
                    3
                }
            }))
            .of_interest(["x"]);
        let cp = compiled(&p);
        let mut prop = Propagator::new(&cp);
        assert!(prop.root(&WeightedInt.zero()));
        let y = cp.vars().iter().position(|v| v.name() == "y").unwrap();
        assert_eq!(prop.live_count(y), 1);
        assert!(prop.is_live(y, 0));
        assert!(!prop.is_live(y, 1));
        let stats = prop.take_stats();
        assert_eq!(stats.root_prunes, 1);
        assert!(stats.revisions > 0);
    }

    #[test]
    fn wipeout_on_inconsistent_problems() {
        let p = Scsp::new(WeightedInt)
            .with_domain("x", Domain::ints(0..=3))
            .with_constraint(Constraint::never(WeightedInt))
            .of_interest(["x"]);
        let cp = compiled(&p);
        let mut prop = Propagator::new(&cp);
        assert!(!prop.root(&WeightedInt.zero()));
        assert_eq!(prop.take_stats().wipeouts, 1);
    }

    #[test]
    fn achievable_floor_prunes_strictly_worse_values() {
        // Unary costs 0 / 5 / 9; floor 0 (the optimum, weighted order
        // is reversed so 0 is best) prunes the strictly worse values.
        let p = Scsp::new(WeightedInt)
            .with_domain("x", Domain::ints(0..=2))
            .with_constraint(Constraint::unary(WeightedInt, "x", |v| {
                [0u64, 5, 9][v.as_int().unwrap() as usize]
            }))
            .of_interest(["x"]);
        let cp = compiled(&p);
        let mut prop = Propagator::new(&cp);
        assert!(prop.root(&0u64));
        assert_eq!(prop.live_count(0), 1);
        assert!(prop.is_live(0, 0));
    }

    #[test]
    fn assign_and_undo_restore_state() {
        let p = fig1_problem();
        let cp = compiled(&p);
        let mut prop = Propagator::new(&cp);
        assert!(prop.root(&WeightedInt.zero()));
        let before: Vec<usize> = (0..cp.vars().len()).map(|i| prop.live_count(i)).collect();
        prop.begin_frame();
        let ok = prop.assign(0, 0, &WeightedInt.zero());
        assert!(ok);
        assert_eq!(prop.live_count(0), 1);
        prop.undo_frame();
        let after: Vec<usize> = (0..cp.vars().len()).map(|i| prop.live_count(i)).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn value_bounds_are_admissible_on_fig1() {
        // Fig. 1: x=a completes to 7, x=b to 16; the bound must not
        // underestimate (weighted order: bound ≤ true cost).
        let p = fig1_problem();
        let cp = compiled(&p);
        let mut prop = Propagator::new(&cp);
        assert!(prop.root(&WeightedInt.zero()));
        let x = cp.vars().iter().position(|v| v.name() == "x").unwrap();
        assert!(prop.value_bound(x, 0) <= 7);
        assert!(prop.value_bound(x, 1) <= 16);
    }
}
