//! Bucket (variable) elimination.

use std::time::Instant;

use softsoa_semiring::Semiring;

use crate::compile::{Aggregate, CompiledProblem};
use crate::solve::parallel::fan_out;
use crate::solve::{best_from_entries, Solution, SolveError, Solver, SolverConfig, SolverStats};
use crate::{combine_all, Constraint, Scsp, Val, Var};

/// Materialised table entries over a kept scope, paired with the
/// number of worker threads that produced them.
type AggregatedEntries<S> = (Vec<(Vec<Val>, <S as Semiring>::Value)>, usize);

/// Elimination-order heuristics for [`BucketElimination`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub enum EliminationOrder {
    /// Eliminate non-`con` variables in reverse sorted order.
    #[default]
    InputReverse,
    /// Eliminate the variable with the fewest interaction-graph
    /// neighbours first (min-degree).
    MinDegree,
}

/// A variable-elimination solver.
///
/// Eliminates each variable outside `con` by combining the constraints
/// mentioning it and projecting it out. The cost is exponential in the
/// *induced width* of the elimination order rather than in the total
/// number of variables, so chains and trees of constraints solve in
/// time linear in the number of variables — the regime where this
/// solver dominates [`EnumerationSolver`](crate::solve::EnumerationSolver)
/// (bench `solver_comparison`).
///
/// Correctness rests on distributivity of `×` over `+`, which holds in
/// every c-semiring, including partially ordered ones.
///
/// # Examples
///
/// ```
/// use softsoa_core::{Scsp, Constraint, Domain};
/// use softsoa_core::solve::{BucketElimination, Solver};
/// use softsoa_semiring::WeightedInt;
///
/// // A chain x0 — x1 — x2: induced width 1.
/// let mut p = Scsp::new(WeightedInt).of_interest(["x0"]);
/// for i in 0..3 {
///     p.add_domain(format!("x{i}"), Domain::ints(0..=4));
/// }
/// for i in 0..2 {
///     p.add_constraint(Constraint::binary(
///         WeightedInt, format!("x{i}"), format!("x{}", i + 1),
///         |a, b| (a.as_int().unwrap() - b.as_int().unwrap()).unsigned_abs(),
///     ));
/// }
/// let solution = BucketElimination::default().solve(&p)?;
/// assert_eq!(*solution.blevel(), 0); // all-equal assignment costs 0
/// # Ok::<(), softsoa_core::SolveError>(())
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct BucketElimination {
    order: EliminationOrder,
    config: SolverConfig,
}

impl BucketElimination {
    /// Creates the solver with the given elimination-order heuristic
    /// and the default engine (compiled, automatic thread count).
    pub fn new(order: EliminationOrder) -> BucketElimination {
        BucketElimination {
            order,
            config: SolverConfig::default(),
        }
    }

    /// Creates the solver with an explicit engine configuration.
    pub fn with_config(order: EliminationOrder, config: SolverConfig) -> BucketElimination {
        BucketElimination { order, config }
    }

    /// Chooses the order in which to eliminate `candidates`.
    fn elimination_order<S: Semiring>(&self, problem: &Scsp<S>, candidates: Vec<Var>) -> Vec<Var> {
        match self.order {
            EliminationOrder::InputReverse => {
                let mut vars = candidates;
                vars.reverse();
                vars
            }
            EliminationOrder::MinDegree => {
                // Greedy min-degree on the (static) interaction graph.
                let neighbours = |v: &Var| -> usize {
                    let mut set = std::collections::BTreeSet::new();
                    for c in problem.constraints() {
                        if c.scope().contains(v) {
                            set.extend(c.scope().iter().cloned());
                        }
                    }
                    set.remove(v);
                    set.len()
                };
                let mut keyed: Vec<(usize, Var)> = candidates
                    .into_iter()
                    .map(|v| (neighbours(&v), v))
                    .collect();
                keyed.sort();
                keyed.into_iter().map(|(_, v)| v).collect()
            }
        }
    }
}

impl BucketElimination {
    /// The compiled engine: each bucket is collapsed into a compiled
    /// aggregation over its combined scope (flattened operands, dense
    /// tables) and its projection table is materialised by splitting
    /// the outermost kept variable across worker threads. The final
    /// pool aggregation over `con` works the same way.
    fn solve_compiled<S: Semiring>(&self, problem: &Scsp<S>) -> Result<Solution<S>, SolveError> {
        let start = Instant::now();
        let semiring = problem.semiring().clone();
        let con: Vec<Var> = problem.con().to_vec();
        let to_eliminate: Vec<Var> = problem
            .problem_vars()
            .into_iter()
            .filter(|v| !con.contains(v))
            .collect();
        let order = self.elimination_order(problem, to_eliminate);

        let mut stats = SolverStats::default();
        let mut compile_time = std::time::Duration::ZERO;
        let mut aggregate = |constraints: &[Constraint<S>],
                             keep: &[Var]|
         -> Result<AggregatedEntries<S>, SolveError> {
            let cp = CompiledProblem::for_projection(
                semiring.clone(),
                constraints,
                keep,
                problem.domains(),
            )?;
            compile_time += cp.compile_time();
            let threads = self.config.parallelism.thread_count(cp.outer_size());
            let parts = fan_out(threads, cp.outer_size(), |range| cp.aggregate_range(range));
            stats.thread_nodes.extend(parts.iter().map(|p| p.nodes));
            let agg = Aggregate::merge(&semiring, parts);
            stats.nodes += agg.nodes;
            stats.prunings += agg.prunings;
            Ok((cp.con_entries(agg.table), threads))
        };

        let mut pool: Vec<Constraint<S>> = problem.constraints().to_vec();
        let mut threads_used = 1;
        for var in &order {
            let (bucket, rest): (Vec<_>, Vec<_>) =
                pool.into_iter().partition(|c| c.scope().contains(var));
            pool = rest;
            if bucket.is_empty() {
                continue;
            }
            let keep: Vec<Var> = bucket
                .iter()
                .flat_map(|c| c.scope().iter().cloned())
                .filter(|v| v != var)
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect();
            let (entries, threads) = aggregate(&bucket, &keep)?;
            threads_used = threads_used.max(threads);
            pool.push(Constraint::table(
                semiring.clone(),
                &keep,
                entries,
                semiring.zero(),
            ));
        }

        // Remaining constraints range over con only; build Sol(P).
        let (entries, threads) = aggregate(&pool, &con)?;
        threads_used = threads_used.max(threads);
        let blevel = semiring.sum(entries.iter().map(|(_, v)| v));
        let best = best_from_entries(&semiring, &con, &entries);
        let solution = Constraint::table(semiring.clone(), &con, entries, semiring.zero())
            .with_label("Sol(P)");
        stats.threads = threads_used;
        stats.compile_time = compile_time;
        stats.solve_time = start.elapsed();
        Ok(Solution::new(blevel, best, Some(solution)).with_stats(stats))
    }

    fn solve_lazy<S: Semiring>(&self, problem: &Scsp<S>) -> Result<Solution<S>, SolveError> {
        let start = Instant::now();
        let semiring = problem.semiring().clone();
        let con: Vec<Var> = problem.con().to_vec();
        let to_eliminate: Vec<Var> = problem
            .problem_vars()
            .into_iter()
            .filter(|v| !con.contains(v))
            .collect();
        let order = self.elimination_order(problem, to_eliminate);

        let mut pool: Vec<Constraint<S>> = problem.constraints().to_vec();
        for var in &order {
            let (bucket, rest): (Vec<_>, Vec<_>) =
                pool.into_iter().partition(|c| c.scope().contains(var));
            pool = rest;
            if bucket.is_empty() {
                continue;
            }
            let combined = combine_all(semiring.clone(), bucket.iter());
            let eliminated = combined.hide(var, problem.domains())?;
            pool.push(eliminated);
        }

        // Remaining constraints range over con only; build Sol(P).
        let solution = combine_all(semiring.clone(), pool.iter())
            .project(&con, problem.domains())?
            .with_label("Sol(P)");

        // The solution's support may be a strict subset of con (e.g.
        // when no constraint mentions a con variable): evaluate it on
        // the matching sub-tuple.
        let embedding: Vec<usize> = solution
            .scope()
            .iter()
            .map(|v| {
                con.binary_search(v)
                    .expect("solution scope is contained in con")
            })
            .collect();
        let mut entries: Vec<(Vec<Val>, S::Value)> = Vec::new();
        let mut nodes = 0u64;
        for tuple in problem.domains().tuples(&con)? {
            nodes += 1;
            let sub: Vec<Val> = embedding.iter().map(|&i| tuple[i].clone()).collect();
            let value = solution.eval_tuple(&sub);
            entries.push((tuple, value));
        }
        let blevel = semiring.sum(entries.iter().map(|(_, v)| v));
        let best = best_from_entries(&semiring, &con, &entries);
        let stats = SolverStats {
            nodes,
            threads: 1,
            solve_time: start.elapsed(),
            ..SolverStats::default()
        };
        Ok(Solution::new(blevel, best, Some(solution)).with_stats(stats))
    }
}

impl<S: Semiring> Solver<S> for BucketElimination {
    fn solve(&self, problem: &Scsp<S>) -> Result<Solution<S>, SolveError> {
        if self.config.compiled {
            self.solve_compiled(problem)
        } else {
            self.solve_lazy(problem)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve::EnumerationSolver;
    use crate::testutil::fig1_problem;
    use crate::{Assignment, Domain};
    use softsoa_semiring::{Boolean, Product, WeightedInt};

    #[test]
    fn agrees_with_enumeration_on_fig1() {
        let p = fig1_problem();
        let reference = EnumerationSolver::new().solve(&p).unwrap();
        for order in [EliminationOrder::InputReverse, EliminationOrder::MinDegree] {
            let be = BucketElimination::new(order).solve(&p).unwrap();
            assert_eq!(be.blevel(), reference.blevel());
            let t1 = be.solution_constraint().unwrap();
            let t2 = reference.solution_constraint().unwrap();
            assert!(t1.equivalent(t2, p.domains()).unwrap());
        }
    }

    #[test]
    fn solves_chains_with_small_induced_width() {
        let mut p = Scsp::new(WeightedInt).of_interest(["x0"]);
        for i in 0..8 {
            p.add_domain(format!("x{i}"), Domain::ints(0..=3));
        }
        for i in 0..7 {
            p.add_constraint(Constraint::binary(
                WeightedInt,
                format!("x{i}"),
                format!("x{}", i + 1),
                |a, b| (a.as_int().unwrap() - b.as_int().unwrap()).unsigned_abs(),
            ));
        }
        let be = BucketElimination::default().solve(&p).unwrap();
        let reference = EnumerationSolver::new().solve(&p).unwrap();
        assert_eq!(be.blevel(), reference.blevel());
    }

    #[test]
    fn works_on_partial_orders() {
        // Bucket elimination does not require a total order.
        let s = Product::new(Boolean, WeightedInt);
        let one = s.one();
        let p = Scsp::new(s)
            .with_domain("x", Domain::ints(0..=2))
            .with_constraint(Constraint::unary(s, "x", move |v| {
                (v.as_int().unwrap() != 1, v.as_int().unwrap() as u64)
            }))
            .of_interest(["x"]);
        let be = BucketElimination::default().solve(&p).unwrap();
        let reference = EnumerationSolver::new().solve(&p).unwrap();
        assert_eq!(be.blevel(), reference.blevel());
        let _ = one;
        // The frontier contains (true, 0) at x=0; x=1 is (false, 1).
        let best = be.best();
        assert!(best
            .iter()
            .any(|(eta, _)| eta.get(&Var::new("x")) == Some(&Val::Int(0))));
    }

    #[test]
    fn solution_table_over_con() {
        let p = fig1_problem();
        let be = BucketElimination::default().solve(&p).unwrap();
        let table = be.solution_constraint().unwrap();
        assert_eq!(table.scope(), &[Var::new("x")]);
        assert_eq!(table.eval(&Assignment::new().bind("x", "a")), 7);
        assert_eq!(table.eval(&Assignment::new().bind("x", "b")), 16);
    }
}
