//! Bucket (variable) elimination and mini-bucket bounds.

use std::collections::BTreeSet;
use std::time::Instant;

use softsoa_semiring::Semiring;

use crate::compile::{Aggregate, CompiledProblem, DENSE_TABLE_LIMIT};
use crate::solve::parallel::fan_out;
use crate::solve::{best_from_entries, Solution, SolveError, Solver, SolverConfig, SolverStats};
use crate::{combine_all, Constraint, Scsp, Val, Var};

/// Materialised table entries over a kept scope, paired with the
/// number of worker threads that produced them.
type AggregatedEntries<S> = (Vec<(Vec<Val>, <S as Semiring>::Value)>, usize);

/// Elimination-order heuristics for [`BucketElimination`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[non_exhaustive]
pub enum EliminationOrder {
    /// Eliminate non-`con` variables in reverse sorted order.
    #[default]
    InputReverse,
    /// Eliminate the variable with the fewest interaction-graph
    /// neighbours first (min-degree).
    MinDegree,
}

/// A variable-elimination solver.
///
/// Eliminates each variable outside `con` by combining the constraints
/// mentioning it and projecting it out. The cost is exponential in the
/// *induced width* of the elimination order rather than in the total
/// number of variables, so chains and trees of constraints solve in
/// time linear in the number of variables — the regime where this
/// solver dominates [`EnumerationSolver`](crate::solve::EnumerationSolver)
/// (bench `solver_comparison`).
///
/// Correctness rests on distributivity of `×` over `+`, which holds in
/// every c-semiring, including partially ordered ones.
///
/// # Examples
///
/// ```
/// use softsoa_core::{Scsp, Constraint, Domain};
/// use softsoa_core::solve::{BucketElimination, Solver};
/// use softsoa_semiring::WeightedInt;
///
/// // A chain x0 — x1 — x2: induced width 1.
/// let mut p = Scsp::new(WeightedInt).of_interest(["x0"]);
/// for i in 0..3 {
///     p.add_domain(format!("x{i}"), Domain::ints(0..=4));
/// }
/// for i in 0..2 {
///     p.add_constraint(Constraint::binary(
///         WeightedInt, format!("x{i}"), format!("x{}", i + 1),
///         |a, b| (a.as_int().unwrap() - b.as_int().unwrap()).unsigned_abs(),
///     ));
/// }
/// let solution = BucketElimination::default().solve(&p)?;
/// assert_eq!(*solution.blevel(), 0); // all-equal assignment costs 0
/// # Ok::<(), softsoa_core::SolveError>(())
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct BucketElimination {
    order: EliminationOrder,
    config: SolverConfig,
}

impl BucketElimination {
    /// Creates the solver with the given elimination-order heuristic
    /// and the default engine (compiled, automatic thread count).
    pub fn new(order: EliminationOrder) -> BucketElimination {
        BucketElimination {
            order,
            config: SolverConfig::default(),
        }
    }

    /// Creates the solver with an explicit engine configuration.
    pub fn with_config(order: EliminationOrder, config: SolverConfig) -> BucketElimination {
        BucketElimination { order, config }
    }

    /// Chooses the order in which to eliminate `candidates`.
    fn elimination_order<S: Semiring>(&self, problem: &Scsp<S>, candidates: Vec<Var>) -> Vec<Var> {
        match self.order {
            EliminationOrder::InputReverse => {
                let mut vars = candidates;
                vars.reverse();
                vars
            }
            EliminationOrder::MinDegree => {
                // Greedy min-degree on the (static) interaction graph.
                let neighbours = |v: &Var| -> usize {
                    let mut set = std::collections::BTreeSet::new();
                    for c in problem.constraints() {
                        if c.scope().contains(v) {
                            set.extend(c.scope().iter().cloned());
                        }
                    }
                    set.remove(v);
                    set.len()
                };
                let mut keyed: Vec<(usize, Var)> = candidates
                    .into_iter()
                    .map(|v| (neighbours(&v), v))
                    .collect();
                keyed.sort();
                keyed.into_iter().map(|(_, v)| v).collect()
            }
        }
    }
}

impl BucketElimination {
    /// The compiled engine: each bucket is collapsed into a compiled
    /// aggregation over its combined scope (flattened operands, dense
    /// tables) and its projection table is materialised by splitting
    /// the outermost kept variable across worker threads. The final
    /// pool aggregation over `con` works the same way.
    fn solve_compiled<S: Semiring>(&self, problem: &Scsp<S>) -> Result<Solution<S>, SolveError> {
        let start = Instant::now();
        let semiring = problem.semiring().clone();
        let con: Vec<Var> = problem.con().to_vec();
        let to_eliminate: Vec<Var> = problem
            .problem_vars()
            .into_iter()
            .filter(|v| !con.contains(v))
            .collect();
        let order = self.elimination_order(problem, to_eliminate);

        let mut stats = SolverStats::default();
        let mut compile_time = std::time::Duration::ZERO;
        let mut aggregate = |constraints: &[Constraint<S>],
                             keep: &[Var]|
         -> Result<AggregatedEntries<S>, SolveError> {
            let cp = CompiledProblem::for_projection(
                semiring.clone(),
                constraints,
                keep,
                problem.domains(),
            )?;
            compile_time += cp.compile_time();
            let threads = self.config.parallelism.thread_count(cp.outer_size());
            let parts = fan_out(threads, cp.outer_size(), |range| cp.aggregate_range(range));
            stats.thread_nodes.extend(parts.iter().map(|p| p.nodes));
            let agg = Aggregate::merge(&semiring, parts);
            stats.nodes += agg.nodes;
            stats.prunings += agg.prunings;
            Ok((cp.con_entries(agg.table), threads))
        };

        let mut pool: Vec<Constraint<S>> = problem.constraints().to_vec();
        let mut threads_used = 1;
        for var in &order {
            let (bucket, rest): (Vec<_>, Vec<_>) =
                pool.into_iter().partition(|c| c.scope().contains(var));
            pool = rest;
            if bucket.is_empty() {
                continue;
            }
            let keep: Vec<Var> = bucket
                .iter()
                .flat_map(|c| c.scope().iter().cloned())
                .filter(|v| v != var)
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect();
            let (entries, threads) = aggregate(&bucket, &keep)?;
            threads_used = threads_used.max(threads);
            pool.push(Constraint::table(
                semiring.clone(),
                &keep,
                entries,
                semiring.zero(),
            ));
        }

        // Remaining constraints range over con only; build Sol(P).
        let (entries, threads) = aggregate(&pool, &con)?;
        threads_used = threads_used.max(threads);
        let blevel = semiring.sum(entries.iter().map(|(_, v)| v));
        let best = best_from_entries(&semiring, &con, &entries);
        let solution = Constraint::table(semiring.clone(), &con, entries, semiring.zero())
            .with_label("Sol(P)");
        stats.threads = threads_used;
        stats.compile_time = compile_time;
        stats.solve_time = start.elapsed();
        Ok(Solution::new(blevel, best, Some(solution)).with_stats(stats))
    }

    fn solve_lazy<S: Semiring>(&self, problem: &Scsp<S>) -> Result<Solution<S>, SolveError> {
        let start = Instant::now();
        let semiring = problem.semiring().clone();
        let con: Vec<Var> = problem.con().to_vec();
        let to_eliminate: Vec<Var> = problem
            .problem_vars()
            .into_iter()
            .filter(|v| !con.contains(v))
            .collect();
        let order = self.elimination_order(problem, to_eliminate);

        let mut pool: Vec<Constraint<S>> = problem.constraints().to_vec();
        for var in &order {
            let (bucket, rest): (Vec<_>, Vec<_>) =
                pool.into_iter().partition(|c| c.scope().contains(var));
            pool = rest;
            if bucket.is_empty() {
                continue;
            }
            let combined = combine_all(semiring.clone(), bucket.iter());
            let eliminated = combined.hide(var, problem.domains())?;
            pool.push(eliminated);
        }

        // Remaining constraints range over con only; build Sol(P).
        let solution = combine_all(semiring.clone(), pool.iter())
            .project(&con, problem.domains())?
            .with_label("Sol(P)");

        // The solution's support may be a strict subset of con (e.g.
        // when no constraint mentions a con variable): evaluate it on
        // the matching sub-tuple.
        let embedding: Vec<usize> = solution
            .scope()
            .iter()
            .map(|v| {
                con.binary_search(v)
                    .expect("solution scope is contained in con")
            })
            .collect();
        let mut entries: Vec<(Vec<Val>, S::Value)> = Vec::new();
        let mut nodes = 0u64;
        for tuple in problem.domains().tuples(&con)? {
            nodes += 1;
            let sub: Vec<Val> = embedding.iter().map(|&i| tuple[i].clone()).collect();
            let value = solution.eval_tuple(&sub);
            entries.push((tuple, value));
        }
        let blevel = semiring.sum(entries.iter().map(|(_, v)| v));
        let best = best_from_entries(&semiring, &con, &entries);
        let stats = SolverStats {
            nodes,
            threads: 1,
            solve_time: start.elapsed(),
            ..SolverStats::default()
        };
        Ok(Solution::new(blevel, best, Some(solution)).with_stats(stats))
    }
}

impl<S: Semiring> Solver<S> for BucketElimination {
    fn solve(&self, problem: &Scsp<S>) -> Result<Solution<S>, SolveError> {
        if self.config.compiled {
            self.solve_compiled(problem)
        } else {
            self.solve_lazy(problem)
        }
    }
}

/// Per-depth admissible completion bounds from a width-bounded
/// mini-bucket pass over a compiled problem (Dechter & Rish's
/// mini-bucket elimination, specialised to a static bound vector).
///
/// For a compiled variable order `x₀ … xₙ₋₁`, `bound(d)` over-estimates
/// — in the semiring order, where `1̄` is the top — the combined level
/// of every `⊗`-operand whose scope completes at a depth greater than
/// `d`. During branch-and-bound, `partial ⊗ bound(d)` is therefore an
/// admissible optimistic estimate of the best full completion of a
/// depth-`d` prefix: if it cannot beat the incumbent, no completion
/// can (`×`-monotonicity plus `+` being the least upper bound).
///
/// The `ibound` parameter caps the *joint* scope of a mini-bucket:
/// operands completing at the same depth are greedily packed into
/// groups of at most `ibound` distinct variables, and each group is
/// bounded by the `+`-fold of its `⊗`-product over all assignments of
/// the joint scope. Larger `ibound` values yield tighter (never looser
/// per group) bounds at higher precompute cost; operands whose own
/// table would exceed [`DENSE_TABLE_LIMIT`] cells contribute the
/// trivial bound `1̄`.
///
/// # Examples
///
/// ```
/// use softsoa_core::compile::CompiledProblem;
/// use softsoa_core::solve::MiniBucketBound;
/// use softsoa_core::{Constraint, Domain, Scsp};
/// use softsoa_semiring::WeightedInt;
///
/// let p = Scsp::new(WeightedInt)
///     .with_domain("x", Domain::ints(0..=3))
///     .with_constraint(Constraint::unary(WeightedInt, "x", |v| {
///         v.as_int().unwrap() as u64 + 2
///     }))
///     .of_interest(["x"]);
/// let compiled = CompiledProblem::from_problem(&p)?;
/// let bound = MiniBucketBound::new(&compiled, 2);
/// // The bound at full depth is always 1̄ (nothing left to assign);
/// // at the root it is the best level any x can reach (cost 2).
/// assert_eq!(*bound.at(1), 0);
/// assert_eq!(*bound.at(0), 2);
/// # Ok::<(), softsoa_core::SolveError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MiniBucketBound<S: Semiring> {
    ibound: usize,
    bounds: Vec<S::Value>,
}

impl<S: Semiring> MiniBucketBound<S> {
    /// Runs the mini-bucket pass over `compiled` with joint scopes
    /// capped at `ibound` variables.
    pub fn new(compiled: &CompiledProblem<S>, ibound: usize) -> MiniBucketBound<S> {
        let semiring = compiled.semiring();
        let n = compiled.vars().len();
        let mut bounds = vec![semiring.one(); n + 1];
        for d in (0..n).rev() {
            let bucket = Self::bucket_bound(compiled, d + 1, ibound);
            bounds[d] = semiring.times(&bucket, &bounds[d + 1]);
        }
        MiniBucketBound { ibound, bounds }
    }

    /// The joint-scope cap this bound was computed with.
    pub fn ibound(&self) -> usize {
        self.ibound
    }

    /// The admissible bound on the combined level of every operand
    /// completing at a depth greater than `depth`.
    pub fn at(&self, depth: usize) -> &S::Value {
        &self.bounds[depth]
    }

    /// The full bound vector, indexed by depth (`bounds()[n]` is `1̄`).
    pub fn bounds(&self) -> &[S::Value] {
        &self.bounds
    }

    /// Bounds the `⊗`-product of all operands completing exactly at
    /// `depth` by greedy mini-bucket packing.
    fn bucket_bound(compiled: &CompiledProblem<S>, depth: usize, ibound: usize) -> S::Value {
        let semiring = compiled.semiring();
        let sizes = compiled.sizes();
        let table_cells = |scope: &BTreeSet<usize>| -> usize {
            scope
                .iter()
                .map(|&p| sizes[p])
                .try_fold(1usize, |acc, s| acc.checked_mul(s))
                .unwrap_or(usize::MAX)
        };

        // Greedily pack operands into mini-buckets whose joint scope
        // stays within ibound variables (and a bounded table size); an
        // operand that fits nowhere opens its own bucket.
        let mut packs: Vec<(Vec<usize>, BTreeSet<usize>)> = Vec::new();
        for &oi in compiled.completing_at(depth) {
            let scope: BTreeSet<usize> = compiled.operand_scope(oi).iter().copied().collect();
            let mut placed = false;
            for (ops, joint) in packs.iter_mut() {
                let merged: BTreeSet<usize> = joint.union(&scope).copied().collect();
                if merged.len() <= ibound.max(1) && table_cells(&merged) <= DENSE_TABLE_LIMIT {
                    ops.push(oi);
                    *joint = merged;
                    placed = true;
                    break;
                }
            }
            if !placed {
                packs.push((vec![oi], scope));
            }
        }

        let mut acc = semiring.one();
        for (ops, joint) in &packs {
            let pack_bound = if table_cells(joint) <= DENSE_TABLE_LIMIT {
                Self::scope_lub(compiled, ops, joint)
            } else {
                // A single oversized operand: its exact maximum is as
                // expensive as materialising it, so stay trivial.
                semiring.one()
            };
            acc = semiring.times(&acc, &pack_bound);
        }
        acc
    }

    /// The `+`-fold (least upper bound) of the `⊗`-product of `ops`
    /// over every assignment of the joint `scope`.
    fn scope_lub(
        compiled: &CompiledProblem<S>,
        ops: &[usize],
        scope: &BTreeSet<usize>,
    ) -> S::Value {
        let semiring = compiled.semiring();
        let sizes = compiled.sizes();
        let positions: Vec<usize> = scope.iter().copied().collect();
        let mut idx = vec![0usize; compiled.vars().len()];
        let mut scratch: Vec<Val> = Vec::new();
        let mut acc = semiring.zero();
        'assignments: loop {
            let mut prod = semiring.one();
            for &oi in ops {
                if semiring.is_zero(&prod) {
                    break;
                }
                prod = semiring.times(&prod, &compiled.value_at(oi, &idx, &mut scratch));
            }
            acc = semiring.plus(&acc, &prod);
            // Mixed-radix increment over the joint scope positions.
            let mut k = positions.len();
            loop {
                if k == 0 {
                    break 'assignments;
                }
                k -= 1;
                idx[positions[k]] += 1;
                if idx[positions[k]] < sizes[positions[k]] {
                    break;
                }
                idx[positions[k]] = 0;
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve::EnumerationSolver;
    use crate::testutil::fig1_problem;
    use crate::{Assignment, Domain};
    use softsoa_semiring::{Boolean, Product, WeightedInt};

    #[test]
    fn agrees_with_enumeration_on_fig1() {
        let p = fig1_problem();
        let reference = EnumerationSolver::new().solve(&p).unwrap();
        for order in [EliminationOrder::InputReverse, EliminationOrder::MinDegree] {
            let be = BucketElimination::new(order).solve(&p).unwrap();
            assert_eq!(be.blevel(), reference.blevel());
            let t1 = be.solution_constraint().unwrap();
            let t2 = reference.solution_constraint().unwrap();
            assert!(t1.equivalent(t2, p.domains()).unwrap());
        }
    }

    #[test]
    fn solves_chains_with_small_induced_width() {
        let mut p = Scsp::new(WeightedInt).of_interest(["x0"]);
        for i in 0..8 {
            p.add_domain(format!("x{i}"), Domain::ints(0..=3));
        }
        for i in 0..7 {
            p.add_constraint(Constraint::binary(
                WeightedInt,
                format!("x{i}"),
                format!("x{}", i + 1),
                |a, b| (a.as_int().unwrap() - b.as_int().unwrap()).unsigned_abs(),
            ));
        }
        let be = BucketElimination::default().solve(&p).unwrap();
        let reference = EnumerationSolver::new().solve(&p).unwrap();
        assert_eq!(be.blevel(), reference.blevel());
    }

    #[test]
    fn works_on_partial_orders() {
        // Bucket elimination does not require a total order.
        let s = Product::new(Boolean, WeightedInt);
        let one = s.one();
        let p = Scsp::new(s)
            .with_domain("x", Domain::ints(0..=2))
            .with_constraint(Constraint::unary(s, "x", move |v| {
                (v.as_int().unwrap() != 1, v.as_int().unwrap() as u64)
            }))
            .of_interest(["x"]);
        let be = BucketElimination::default().solve(&p).unwrap();
        let reference = EnumerationSolver::new().solve(&p).unwrap();
        assert_eq!(be.blevel(), reference.blevel());
        let _ = one;
        // The frontier contains (true, 0) at x=0; x=1 is (false, 1).
        let best = be.best();
        assert!(best
            .iter()
            .any(|(eta, _)| eta.get(&Var::new("x")) == Some(&Val::Int(0))));
    }

    #[test]
    fn solution_table_over_con() {
        let p = fig1_problem();
        let be = BucketElimination::default().solve(&p).unwrap();
        let table = be.solution_constraint().unwrap();
        assert_eq!(table.scope(), &[Var::new("x")]);
        assert_eq!(table.eval(&Assignment::new().bind("x", "a")), 7);
        assert_eq!(table.eval(&Assignment::new().bind("x", "b")), 16);
    }
}
