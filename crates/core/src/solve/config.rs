//! Solver execution knobs: parallelism, compiled evaluation,
//! propagation and decomposition.

/// How much soft arc-consistency propagation the compiled
/// [`BranchAndBound`](crate::solve::BranchAndBound) engine runs.
///
/// Propagation maintains, per (operand, variable) revision pair, the
/// best level any extension of each domain value can reach through
/// that operand, and prunes values whose combined upper bound is `0`
/// or strictly below a level already known achievable. Both prune
/// rules preserve the exact `blevel` and the blind engine's witness
/// (property-tested in `propagation_properties`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum PropagationMode {
    /// No propagation: the blind search of earlier revisions.
    Off,
    /// One fixpoint pass before the search; the surviving domain
    /// values become the search space. Near-free and never slower
    /// than blind on anything but trivial problems, so it is the
    /// default.
    #[default]
    Root,
    /// Root pass plus incremental re-propagation at every search
    /// node (maintaining arc consistency during descent). Strongest
    /// pruning, but pays a revision worklist per node — worth it on
    /// tightly constrained problems, a constant-factor tax on loose
    /// ones.
    Full,
}

/// Which exact engine the compiled [`BranchAndBound`](crate::solve::BranchAndBound)
/// entry point runs after the connected-component split.
///
/// Every choice computes the identical `blevel` with a valid witness
/// (property-tested in `treedec_properties`); they differ in *cost
/// shape*. Branch-and-bound is exponential in the number of variables
/// but needs no tables; bucket-tree elimination
/// ([`treedec`](crate::solve::treedec)) is `O(n · d^(w+1))` in the
/// induced width `w` of the elimination order, which turns banded /
/// bounded-treewidth problems from exponential into polynomial at the
/// price of materialising separator tables.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Engine {
    /// Always depth-first branch-and-bound (the pre-tree behaviour and
    /// the default: its witness is the documented first-witness one).
    #[default]
    BranchBound,
    /// Plan an elimination order per component; tree-solve when the
    /// measured induced width fits
    /// [`width_cap`](SolverConfig::width_cap) (and the table-memory
    /// guard), branch-and-bound otherwise.
    Auto,
    /// Always attempt the tree solve. When the cap or the memory guard
    /// is exceeded the engine falls back to branch-and-bound seeded by
    /// the tree-guided greedy bound (see
    /// [`treedec`](crate::solve::treedec)).
    TreeDecompose,
}

/// How many worker threads a solver may use.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Parallelism {
    /// One thread, no work splitting.
    Sequential,
    /// Use [`std::thread::available_parallelism`] threads (capped by
    /// the amount of splittable work).
    #[default]
    Auto,
    /// Use exactly `n` threads (clamped to at least one and to the
    /// amount of splittable work).
    Threads(usize),
}

impl Parallelism {
    /// Resolves the knob to a concrete thread count for a workload
    /// that splits into `work_items` independent pieces.
    pub fn thread_count(&self, work_items: usize) -> usize {
        let requested = match self {
            Parallelism::Sequential => 1,
            Parallelism::Auto => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            Parallelism::Threads(n) => (*n).max(1),
        };
        requested.min(work_items.max(1))
    }
}

/// Configuration shared by every solver in this module.
///
/// The default is the fast path: compiled evaluation with automatic
/// thread count. [`EnumerationSolver::new`](crate::solve::EnumerationSolver::new)
/// deliberately stays on the lazy sequential path so it remains the
/// literal reference semantics the other engines are tested against.
///
/// # Examples
///
/// ```
/// use softsoa_core::solve::{Parallelism, SolverConfig};
///
/// let cfg = SolverConfig::default().with_parallelism(Parallelism::Threads(4));
/// assert!(cfg.compiled);
/// assert_eq!(cfg.parallelism.thread_count(100), 4);
/// assert_eq!(cfg.parallelism.thread_count(2), 2); // clamped to the work
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolverConfig {
    /// Worker-thread policy.
    pub parallelism: Parallelism,
    /// Whether to compile the problem (flatten `⊗`-DAGs, precompute
    /// scope embeddings, materialise small operand tables) before
    /// searching. When `false`, solvers evaluate constraints lazily.
    pub compiled: bool,
    /// Joint-scope cap for the mini-bucket bound pass
    /// ([`MiniBucketBound`](crate::solve::MiniBucketBound)). `None`
    /// searches blind (incumbent pruning only); `Some(i)` precomputes
    /// per-depth admissible completion bounds with mini-buckets of at
    /// most `i` variables and additionally prunes branches whose
    /// `partial ⊗ bound(depth)` cannot beat the incumbent. Only the
    /// compiled [`BranchAndBound`](crate::solve::BranchAndBound)
    /// engine consumes this knob.
    pub ibound: Option<usize>,
    /// Soft arc-consistency level for the compiled
    /// [`BranchAndBound`](crate::solve::BranchAndBound) engine; the
    /// lazy path ignores it (like [`ibound`](SolverConfig::ibound)).
    pub propagate: PropagationMode,
    /// Whether [`BranchAndBound`](crate::solve::BranchAndBound)
    /// splits the constraint graph into its connected components and
    /// solves them independently (in parallel under the
    /// [`parallelism`](SolverConfig::parallelism) policy), combining
    /// the per-component results with the semiring product. Exact for
    /// `blevel` on every semiring; the merged witness is always valid
    /// and coincides with the blind witness on strictly monotone `×`
    /// (weighted, probabilistic).
    pub decompose: bool,
    /// Which exact engine runs per component (see [`Engine`]).
    pub engine: Engine,
    /// Induced-width cap for the tree engine: a component whose
    /// planned elimination order has induced width above this (or
    /// whose largest cluster table would exceed the memory guard)
    /// is solved by branch-and-bound instead. Ignored under
    /// [`Engine::BranchBound`].
    pub width_cap: usize,
    /// Diagnostic search budget: a branch-and-bound run that expands
    /// more nodes than this aborts with
    /// [`SolveError::NodeBudgetExceeded`](crate::solve::SolveError::NodeBudgetExceeded)
    /// instead of running to completion. `None` (the default) never
    /// aborts. The budget is checked per worker, so a parallel run may
    /// expand up to `threads × budget` nodes before every worker
    /// stops; tree solves do not consume it (their cost is the table
    /// volume, bounded by the width cap and the memory guard).
    pub node_budget: Option<u64>,
}

/// Default induced-width cap: `d^(w+1)` cluster tables stay small for
/// the domain sizes this workspace's workloads use (`4^9 ≈ 262k`
/// cells), while anything wider is usually faster to search.
pub const DEFAULT_WIDTH_CAP: usize = 8;

impl Default for SolverConfig {
    fn default() -> SolverConfig {
        SolverConfig {
            parallelism: Parallelism::Auto,
            compiled: true,
            ibound: None,
            propagate: PropagationMode::Root,
            decompose: true,
            engine: Engine::BranchBound,
            width_cap: DEFAULT_WIDTH_CAP,
            node_budget: None,
        }
    }
}

impl SolverConfig {
    /// The lazy sequential reference configuration.
    pub fn reference() -> SolverConfig {
        SolverConfig {
            parallelism: Parallelism::Sequential,
            compiled: false,
            ibound: None,
            propagate: PropagationMode::Off,
            decompose: false,
            engine: Engine::BranchBound,
            width_cap: DEFAULT_WIDTH_CAP,
            node_budget: None,
        }
    }

    /// Sets the parallelism policy (builder style).
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> SolverConfig {
        self.parallelism = parallelism;
        self
    }

    /// Enables or disables compiled evaluation (builder style).
    pub fn with_compiled(mut self, compiled: bool) -> SolverConfig {
        self.compiled = compiled;
        self
    }

    /// Sets the mini-bucket joint-scope cap (builder style). `None`
    /// disables bound-driven pruning.
    pub fn with_ibound(mut self, ibound: Option<usize>) -> SolverConfig {
        self.ibound = ibound;
        self
    }

    /// Sets the propagation level (builder style).
    pub fn with_propagation(mut self, propagate: PropagationMode) -> SolverConfig {
        self.propagate = propagate;
        self
    }

    /// Enables or disables connected-component decomposition (builder
    /// style).
    pub fn with_decompose(mut self, decompose: bool) -> SolverConfig {
        self.decompose = decompose;
        self
    }

    /// Selects the per-component engine (builder style).
    pub fn with_engine(mut self, engine: Engine) -> SolverConfig {
        self.engine = engine;
        self
    }

    /// Switches to the bucket-tree elimination engine with the given
    /// induced-width cap (builder style). Components whose planned
    /// width exceeds the cap fall back to branch-and-bound seeded by
    /// the tree-guided greedy bound.
    pub fn with_tree_decompose(mut self, width_cap: usize) -> SolverConfig {
        self.engine = Engine::TreeDecompose;
        self.width_cap = width_cap.max(1);
        self
    }

    /// Sets the induced-width cap without changing the engine
    /// selection (builder style).
    pub fn with_width_cap(mut self, width_cap: usize) -> SolverConfig {
        self.width_cap = width_cap.max(1);
        self
    }

    /// Sets the diagnostic branch-and-bound node budget (builder
    /// style). `None` never aborts.
    pub fn with_node_budget(mut self, node_budget: Option<u64>) -> SolverConfig {
        self.node_budget = node_budget;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_is_one_thread() {
        assert_eq!(Parallelism::Sequential.thread_count(64), 1);
    }

    #[test]
    fn explicit_threads_clamp_to_work() {
        assert_eq!(Parallelism::Threads(8).thread_count(3), 3);
        assert_eq!(Parallelism::Threads(0).thread_count(3), 1);
        // Zero work still needs one worker (it just finds nothing).
        assert_eq!(Parallelism::Threads(8).thread_count(0), 1);
    }

    #[test]
    fn auto_is_at_least_one() {
        assert!(Parallelism::Auto.thread_count(1024) >= 1);
    }

    #[test]
    fn reference_config_is_lazy_sequential() {
        let cfg = SolverConfig::reference();
        assert!(!cfg.compiled);
        assert_eq!(cfg.parallelism, Parallelism::Sequential);
        assert_eq!(cfg.propagate, PropagationMode::Off);
        assert!(!cfg.decompose);
    }

    #[test]
    fn default_config_propagates_and_decomposes() {
        let cfg = SolverConfig::default();
        assert_eq!(cfg.propagate, PropagationMode::Root);
        assert!(cfg.decompose);
        let off = cfg
            .with_propagation(PropagationMode::Full)
            .with_decompose(false);
        assert_eq!(off.propagate, PropagationMode::Full);
        assert!(!off.decompose);
    }
}
