//! The cylindric constraint system `SC = ⟨C, ⊗, 0̄, 1̄, ∃x, d_xy⟩`.

use softsoa_semiring::Semiring;

use crate::{entails, Constraint, Domains, MissingDomainError, Var};

/// The cylindric constraint system *à la Saraswat* of Sec. 2:
/// `SC = ⟨C, ⊗, 0̄, 1̄, ∃x, d_xy⟩`.
///
/// A thin façade bundling a semiring with the domain map, exposing the
/// constants, combination, hiding (the cylindrification operator) and
/// diagonal constraints — exactly the signature the `nmsccp` language
/// is defined over. The underlying operations are those of
/// [`Constraint`]; this type just fixes their ambient structure once.
///
/// # Examples
///
/// ```
/// use softsoa_core::{CylindricSystem, Domain, Assignment};
/// use softsoa_semiring::Boolean;
///
/// let sc = CylindricSystem::new(Boolean,
///     softsoa_core::Domains::new().with("x", Domain::ints(0..=3)));
/// let dxy = sc.diagonal("x", "y");
/// assert!(sc.one().eval(&Assignment::new()));
/// assert!(dxy.eval(&Assignment::new().bind("x", 1).bind("y", 1)));
/// ```
#[derive(Debug, Clone)]
pub struct CylindricSystem<S: Semiring> {
    semiring: S,
    domains: Domains,
}

impl<S: Semiring> CylindricSystem<S> {
    /// Creates the system over a semiring and a domain map.
    pub fn new(semiring: S, domains: Domains) -> CylindricSystem<S> {
        CylindricSystem { semiring, domains }
    }

    /// The semiring of the system.
    pub fn semiring(&self) -> &S {
        &self.semiring
    }

    /// The domain map of the system.
    pub fn domains(&self) -> &Domains {
        &self.domains
    }

    /// The constant `1̄` (fully satisfied everywhere).
    pub fn one(&self) -> Constraint<S> {
        Constraint::always(self.semiring.clone())
    }

    /// The constant `0̄` (violated everywhere).
    pub fn zero(&self) -> Constraint<S> {
        Constraint::never(self.semiring.clone())
    }

    /// The combination `c1 ⊗ c2`.
    pub fn combine(&self, c1: &Constraint<S>, c2: &Constraint<S>) -> Constraint<S> {
        c1.combine(c2)
    }

    /// The cylindrification (hiding) `∃x c`.
    ///
    /// # Errors
    ///
    /// Returns [`MissingDomainError`] if `x` is in the support of `c`
    /// but has no domain.
    pub fn hide(&self, x: &Var, c: &Constraint<S>) -> Result<Constraint<S>, MissingDomainError> {
        c.hide(x, &self.domains)
    }

    /// The diagonal constraint `d_xy`.
    pub fn diagonal(&self, x: impl Into<Var>, y: impl Into<Var>) -> Constraint<S> {
        Constraint::diagonal(self.semiring.clone(), x, y)
    }

    /// The entailment `C ⊢ c`.
    ///
    /// # Errors
    ///
    /// Returns [`MissingDomainError`] if a support variable has no
    /// domain.
    pub fn entails<'a, I>(&self, set: I, c: &Constraint<S>) -> Result<bool, MissingDomainError>
    where
        I: IntoIterator<Item = &'a Constraint<S>>,
    {
        entails(self.semiring.clone(), set, c, &self.domains)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Assignment, Domain};
    use softsoa_semiring::Boolean;

    fn sys() -> CylindricSystem<Boolean> {
        CylindricSystem::new(
            Boolean,
            Domains::new()
                .with("x", Domain::ints(0..=2))
                .with("y", Domain::ints(0..=2)),
        )
    }

    #[test]
    fn constants() {
        let sc = sys();
        assert!(sc.one().eval(&Assignment::new()));
        assert!(!sc.zero().eval(&Assignment::new()));
    }

    #[test]
    fn cylindrification_makes_constraint_independent_of_x() {
        let sc = sys();
        let c = Constraint::crisp(Boolean, &crate::vars(["x", "y"]), |vals| {
            vals[0].as_int().unwrap() == vals[1].as_int().unwrap()
        });
        let hidden = sc.hide(&Var::new("x"), &c).unwrap();
        // ∃x (x = y) is true for every y.
        for y in 0..=2 {
            assert!(hidden.eval(&Assignment::new().bind("y", y)));
        }
        assert_eq!(hidden.scope(), &[Var::new("y")]);
    }

    #[test]
    fn diagonal_models_parameter_passing() {
        let sc = sys();
        // Entailment: {x = 1 combined with d_xy} ⊢ (y = 1-ish check)
        let x_is_1 = Constraint::crisp(Boolean, &crate::vars(["x"]), |vals| {
            vals[0].as_int().unwrap() == 1
        });
        let d = sc.diagonal("x", "y");
        let y_is_1 = Constraint::crisp(Boolean, &crate::vars(["y"]), |vals| {
            vals[0].as_int().unwrap() == 1
        });
        assert!(sc.entails([&x_is_1, &d], &y_is_1).unwrap());
        assert!(!sc.entails([&d], &y_is_1).unwrap());
    }
}
