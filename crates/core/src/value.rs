//! Domain values.

use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;

/// A value a constraint variable can take.
///
/// The paper's examples range over heterogeneous domains: symbolic
/// values `a`, `b` (Fig. 1), natural numbers of failures or bytes
/// (Secs. 4.1, 5), and *sets* of component identifiers for the
/// coalition variables of Sec. 6.1 (whose domain is a powerset).
///
/// # Examples
///
/// ```
/// use softsoa_core::Val;
///
/// let n = Val::Int(42);
/// let s = Val::sym("a");
/// let c = Val::set([1, 3, 5]);
/// assert!(n != s);
/// assert_eq!(c.to_string(), "{1, 3, 5}");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Val {
    /// An integer value (byte sizes, failure counts, hours, ...).
    Int(i64),
    /// A boolean value.
    Bool(bool),
    /// A symbolic value (`a`, `b` of Fig. 1, service names, ...).
    Sym(Arc<str>),
    /// A finite set of small identifiers (coalition members, Sec. 6.1).
    Set(BTreeSet<u32>),
}

impl Val {
    /// Creates a symbolic value.
    pub fn sym(name: impl AsRef<str>) -> Val {
        Val::Sym(Arc::from(name.as_ref()))
    }

    /// Creates a set value from element identifiers.
    pub fn set<I: IntoIterator<Item = u32>>(elements: I) -> Val {
        Val::Set(elements.into_iter().collect())
    }

    /// Returns the integer payload, if this is an [`Val::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Val::Int(n) => Some(*n),
            _ => None,
        }
    }

    /// Returns the boolean payload, if this is a [`Val::Bool`].
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Val::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Returns the symbol payload, if this is a [`Val::Sym`].
    pub fn as_sym(&self) -> Option<&str> {
        match self {
            Val::Sym(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the set payload, if this is a [`Val::Set`].
    pub fn as_set(&self) -> Option<&BTreeSet<u32>> {
        match self {
            Val::Set(s) => Some(s),
            _ => None,
        }
    }
}

impl fmt::Display for Val {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Val::Int(n) => write!(f, "{n}"),
            Val::Bool(b) => write!(f, "{b}"),
            Val::Sym(s) => f.write_str(s),
            Val::Set(s) => {
                f.write_str("{")?;
                for (i, e) in s.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{e}")?;
                }
                f.write_str("}")
            }
        }
    }
}

impl From<i64> for Val {
    fn from(n: i64) -> Val {
        Val::Int(n)
    }
}

impl From<i32> for Val {
    fn from(n: i32) -> Val {
        Val::Int(i64::from(n))
    }
}

impl From<bool> for Val {
    fn from(b: bool) -> Val {
        Val::Bool(b)
    }
}

impl From<&str> for Val {
    fn from(s: &str) -> Val {
        Val::sym(s)
    }
}

impl From<BTreeSet<u32>> for Val {
    fn from(s: BTreeSet<u32>) -> Val {
        Val::Set(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Val::Int(3).as_int(), Some(3));
        assert_eq!(Val::Int(3).as_bool(), None);
        assert_eq!(Val::Bool(true).as_bool(), Some(true));
        assert_eq!(Val::sym("a").as_sym(), Some("a"));
        assert_eq!(Val::set([2, 1]).as_set().unwrap().len(), 2);
    }

    #[test]
    fn set_values_are_canonical() {
        assert_eq!(Val::set([3, 1, 2]), Val::set([1, 2, 3]));
        assert_eq!(Val::set([1, 1, 2]), Val::set([1, 2]));
    }

    #[test]
    fn display() {
        assert_eq!(Val::Int(-4).to_string(), "-4");
        assert_eq!(Val::sym("b").to_string(), "b");
        assert_eq!(Val::Bool(false).to_string(), "false");
        assert_eq!(Val::set([]).to_string(), "{}");
    }

    #[test]
    fn conversions() {
        assert_eq!(Val::from(7i64), Val::Int(7));
        assert_eq!(Val::from(7i32), Val::Int(7));
        assert_eq!(Val::from(true), Val::Bool(true));
        assert_eq!(Val::from("x"), Val::sym("x"));
    }
}
