//! Shared fixtures for unit tests (compiled only under `cfg(test)`).

use softsoa_semiring::WeightedInt;

use crate::{Constraint, Domain, Scsp, Val, Var};

/// Builds the weighted SCSP of Fig. 1 of the paper.
///
/// Two variables over `{a, b}`, constraints `c1` (unary on `x`), `c2`
/// (binary) and `c3` (unary on `y`), with `con = {x}`. The expected
/// solution is `⟨a⟩ → 7`, `⟨b⟩ → 16` and `blevel = 7`.
pub(crate) fn fig1_problem() -> Scsp<WeightedInt> {
    let x = Var::new("x");
    let y = Var::new("y");
    Scsp::new(WeightedInt)
        .with_domain(x.clone(), Domain::syms(["a", "b"]))
        .with_domain(y.clone(), Domain::syms(["a", "b"]))
        .with_constraint(
            Constraint::table(
                WeightedInt,
                std::slice::from_ref(&x),
                [(vec![Val::sym("a")], 1), (vec![Val::sym("b")], 9)],
                u64::MAX,
            )
            .with_label("c1"),
        )
        .with_constraint(
            Constraint::table(
                WeightedInt,
                &[x.clone(), y.clone()],
                [
                    (vec![Val::sym("a"), Val::sym("a")], 5),
                    (vec![Val::sym("a"), Val::sym("b")], 1),
                    (vec![Val::sym("b"), Val::sym("a")], 2),
                    (vec![Val::sym("b"), Val::sym("b")], 2),
                ],
                u64::MAX,
            )
            .with_label("c2"),
        )
        .with_constraint(
            Constraint::table(
                WeightedInt,
                std::slice::from_ref(&y),
                [(vec![Val::sym("a")], 5), (vec![Val::sym("b")], 5)],
                u64::MAX,
            )
            .with_label("c3"),
        )
        .of_interest([x])
}
