//! Variable assignments (the `η : V → D` of the paper).

use std::collections::BTreeMap;
use std::fmt;

use crate::{Val, Var};

/// A (partial) assignment of values to variables — the paper's `η`.
///
/// The paper treats `η` as a total function on `V`; since every
/// constraint depends only on its finite *support*, a partial map
/// binding at least the support is sufficient to evaluate it.
///
/// # Examples
///
/// ```
/// use softsoa_core::{Assignment, Val, Var};
///
/// let eta = Assignment::new()
///     .bind(Var::new("x"), Val::sym("a"))
///     .bind(Var::new("y"), Val::Int(3));
/// assert_eq!(eta.get(&Var::new("y")), Some(&Val::Int(3)));
/// assert_eq!(eta.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Assignment {
    map: BTreeMap<Var, Val>,
}

impl Assignment {
    /// Creates an empty assignment.
    pub fn new() -> Assignment {
        Assignment::default()
    }

    /// Builder-style binding: returns the assignment with `var := val`.
    ///
    /// This is the paper's `η[v := d]` update.
    pub fn bind(mut self, var: impl Into<Var>, val: impl Into<Val>) -> Assignment {
        self.map.insert(var.into(), val.into());
        self
    }

    /// In-place binding of `var := val`, returning the previous value.
    pub fn set(&mut self, var: impl Into<Var>, val: impl Into<Val>) -> Option<Val> {
        self.map.insert(var.into(), val.into())
    }

    /// Looks up the value bound to `var`.
    pub fn get(&self, var: &Var) -> Option<&Val> {
        self.map.get(var)
    }

    /// Whether `var` is bound.
    pub fn binds(&self, var: &Var) -> bool {
        self.map.contains_key(var)
    }

    /// Removes the binding of `var`, returning it.
    pub fn unbind(&mut self, var: &Var) -> Option<Val> {
        self.map.remove(var)
    }

    /// The number of bound variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no variable is bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over `(variable, value)` pairs in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (&Var, &Val)> {
        self.map.iter()
    }

    /// Builds an assignment by zipping variables with values.
    ///
    /// # Panics
    ///
    /// Panics if the two slices have different lengths.
    pub fn from_tuple(vars: &[Var], vals: &[Val]) -> Assignment {
        assert_eq!(
            vars.len(),
            vals.len(),
            "assignment tuple arity mismatch: {} vars, {} vals",
            vars.len(),
            vals.len()
        );
        Assignment {
            map: vars.iter().cloned().zip(vals.iter().cloned()).collect(),
        }
    }

    /// Projects this assignment onto the given variables, in order.
    ///
    /// Returns `None` if any of the variables is unbound.
    pub fn tuple(&self, vars: &[Var]) -> Option<Vec<Val>> {
        vars.iter().map(|v| self.get(v).cloned()).collect()
    }

    /// Merges `other` into `self` (bindings in `other` win) and returns
    /// the result.
    pub fn merged(mut self, other: &Assignment) -> Assignment {
        for (v, d) in other.iter() {
            self.map.insert(v.clone(), d.clone());
        }
        self
    }
}

impl fmt::Display for Assignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("[")?;
        for (i, (v, d)) in self.map.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v}:={d}")?;
        }
        f.write_str("]")
    }
}

impl FromIterator<(Var, Val)> for Assignment {
    fn from_iter<I: IntoIterator<Item = (Var, Val)>>(iter: I) -> Assignment {
        Assignment {
            map: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bind_and_get() {
        let eta = Assignment::new().bind("x", 1).bind("y", "a");
        assert_eq!(eta.get(&Var::new("x")), Some(&Val::Int(1)));
        assert_eq!(eta.get(&Var::new("y")), Some(&Val::sym("a")));
        assert_eq!(eta.get(&Var::new("z")), None);
    }

    #[test]
    fn rebinding_overwrites() {
        let mut eta = Assignment::new().bind("x", 1);
        assert_eq!(eta.set("x", 2), Some(Val::Int(1)));
        assert_eq!(eta.get(&Var::new("x")), Some(&Val::Int(2)));
    }

    #[test]
    fn tuple_roundtrip() {
        let vars = crate::vars(["x", "y"]);
        let vals = vec![Val::Int(1), Val::Int(2)];
        let eta = Assignment::from_tuple(&vars, &vals);
        assert_eq!(eta.tuple(&vars), Some(vals));
        assert_eq!(eta.tuple(&crate::vars(["x", "z"])), None);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn from_tuple_arity_checked() {
        let _ = Assignment::from_tuple(&crate::vars(["x"]), &[]);
    }

    #[test]
    fn merged_prefers_other() {
        let a = Assignment::new().bind("x", 1).bind("y", 2);
        let b = Assignment::new().bind("y", 9);
        let m = a.merged(&b);
        assert_eq!(m.get(&Var::new("y")), Some(&Val::Int(9)));
        assert_eq!(m.get(&Var::new("x")), Some(&Val::Int(1)));
    }

    #[test]
    fn display() {
        let eta = Assignment::new().bind("x", 1);
        assert_eq!(eta.to_string(), "[x:=1]");
    }
}
