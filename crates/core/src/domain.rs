//! Finite variable domains and the domain map of a problem.

use std::collections::BTreeMap;
use std::fmt;

use crate::{Val, Var};

/// A finite, explicitly enumerated variable domain.
///
/// Values are kept in sorted order without duplicates, so two domains
/// built from the same values in any order compare equal.
///
/// # Examples
///
/// ```
/// use softsoa_core::{Domain, Val};
///
/// let d = Domain::ints(0..=3);
/// assert_eq!(d.len(), 4);
/// assert!(d.contains(&Val::Int(2)));
/// assert_eq!(d, Domain::new(vec![3.into(), 0.into(), 1.into(), 2.into()]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Domain {
    values: Vec<Val>,
}

impl Domain {
    /// Creates a domain from arbitrary values (sorted, deduplicated).
    pub fn new(mut values: Vec<Val>) -> Domain {
        values.sort();
        values.dedup();
        Domain { values }
    }

    /// The integer domain over an inclusive range.
    pub fn ints<I: IntoIterator<Item = i64>>(range: I) -> Domain {
        Domain::new(range.into_iter().map(Val::Int).collect())
    }

    /// The integer domain `{lo, lo+step, ..., ≤ hi}` — a discretised
    /// quantity axis (byte sizes, hours).
    ///
    /// # Panics
    ///
    /// Panics if `step == 0`.
    pub fn ints_stepped(lo: i64, hi: i64, step: i64) -> Domain {
        assert!(step > 0, "step must be positive");
        Domain::new((lo..=hi).step_by(step as usize).map(Val::Int).collect())
    }

    /// The boolean domain `{false, true}`.
    pub fn bools() -> Domain {
        Domain::new(vec![Val::Bool(false), Val::Bool(true)])
    }

    /// A symbolic domain from names (e.g. `{a, b}` of Fig. 1).
    pub fn syms<I, T>(names: I) -> Domain
    where
        I: IntoIterator<Item = T>,
        T: AsRef<str>,
    {
        Domain::new(names.into_iter().map(Val::sym).collect())
    }

    /// The powerset domain `𝒫{0, .., n-1}` used by the coalition
    /// variables of Sec. 6.1.
    ///
    /// # Panics
    ///
    /// Panics if `n > 20` (the powerset would exceed a million values).
    pub fn powerset(n: u32) -> Domain {
        assert!(n <= 20, "powerset domain of more than 2^20 values");
        let values = (0u64..(1 << n))
            .map(|bits| Val::set((0..n).filter(|i| bits & (1 << i) != 0)))
            .collect();
        Domain::new(values)
    }

    /// The number of values in the domain.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the domain is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Whether the domain contains `value`.
    pub fn contains(&self, value: &Val) -> bool {
        self.values.binary_search(value).is_ok()
    }

    /// Iterates over the domain values in sorted order.
    pub fn iter(&self) -> std::slice::Iter<'_, Val> {
        self.values.iter()
    }

    /// The domain values as a slice, in sorted order.
    pub fn values(&self) -> &[Val] {
        &self.values
    }
}

impl<'a> IntoIterator for &'a Domain {
    type Item = &'a Val;
    type IntoIter = std::slice::Iter<'a, Val>;

    fn into_iter(self) -> Self::IntoIter {
        self.values.iter()
    }
}

impl FromIterator<Val> for Domain {
    fn from_iter<I: IntoIterator<Item = Val>>(iter: I) -> Domain {
        Domain::new(iter.into_iter().collect())
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("{")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v}")?;
        }
        f.write_str("}")
    }
}

/// An error returned when an operation needs the domain of a variable
/// that has none declared.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MissingDomainError {
    var: Var,
}

impl MissingDomainError {
    /// The variable whose domain is missing.
    pub fn var(&self) -> &Var {
        &self.var
    }
}

impl fmt::Display for MissingDomainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "no domain declared for variable `{}`", self.var)
    }
}

impl std::error::Error for MissingDomainError {}

/// The domain map of a problem: every variable's finite domain.
///
/// All operations that quantify over assignments (combination
/// materialisation, projection, entailment, solving) enumerate these
/// domains.
///
/// # Examples
///
/// ```
/// use softsoa_core::{Domain, Domains, Var};
///
/// let mut doms = Domains::new();
/// doms.insert(Var::new("x"), Domain::syms(["a", "b"]));
/// assert_eq!(doms.get(&Var::new("x"))?.len(), 2);
/// # Ok::<(), softsoa_core::MissingDomainError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Domains {
    map: BTreeMap<Var, Domain>,
}

impl Domains {
    /// Creates an empty domain map.
    pub fn new() -> Domains {
        Domains::default()
    }

    /// Declares (or replaces) the domain of `var`.
    pub fn insert(&mut self, var: Var, domain: Domain) -> Option<Domain> {
        self.map.insert(var, domain)
    }

    /// Builder-style variant of [`Domains::insert`].
    pub fn with(mut self, var: impl Into<Var>, domain: Domain) -> Domains {
        self.map.insert(var.into(), domain);
        self
    }

    /// Looks up the domain of `var`.
    ///
    /// # Errors
    ///
    /// Returns [`MissingDomainError`] if no domain was declared.
    pub fn get(&self, var: &Var) -> Result<&Domain, MissingDomainError> {
        self.map
            .get(var)
            .ok_or_else(|| MissingDomainError { var: var.clone() })
    }

    /// Whether `var` has a declared domain.
    pub fn contains(&self, var: &Var) -> bool {
        self.map.contains_key(var)
    }

    /// Iterates over `(variable, domain)` pairs in variable order.
    pub fn iter(&self) -> impl Iterator<Item = (&Var, &Domain)> {
        self.map.iter()
    }

    /// The number of declared variables.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no variable has a declared domain.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over all tuples of values for the given variables
    /// (the Cartesian product of their domains, in lexicographic order).
    ///
    /// # Errors
    ///
    /// Returns [`MissingDomainError`] if any variable has no domain.
    pub fn tuples(&self, vars: &[Var]) -> Result<TupleIter<'_>, MissingDomainError> {
        let domains: Vec<&Domain> = vars.iter().map(|v| self.get(v)).collect::<Result<_, _>>()?;
        Ok(TupleIter::new(domains))
    }

    /// The number of tuples [`Domains::tuples`] would yield, saturating
    /// at `usize::MAX`.
    pub fn tuple_count(&self, vars: &[Var]) -> Result<usize, MissingDomainError> {
        let mut count: usize = 1;
        for v in vars {
            count = count.saturating_mul(self.get(v)?.len());
        }
        Ok(count)
    }
}

/// Iterator over the Cartesian product of a list of domains.
///
/// Yields one `Vec<Val>` per tuple, in lexicographic order with the
/// *last* variable varying fastest. Returned by [`Domains::tuples`].
#[derive(Debug, Clone)]
pub struct TupleIter<'a> {
    domains: Vec<&'a Domain>,
    indices: Vec<usize>,
    done: bool,
}

impl<'a> TupleIter<'a> {
    fn new(domains: Vec<&'a Domain>) -> TupleIter<'a> {
        let done = domains.iter().any(|d| d.is_empty());
        let indices = vec![0; domains.len()];
        TupleIter {
            domains,
            indices,
            done,
        }
    }
}

impl<'a> Iterator for TupleIter<'a> {
    type Item = Vec<Val>;

    fn next(&mut self) -> Option<Vec<Val>> {
        if self.done {
            return None;
        }
        let tuple: Vec<Val> = self
            .indices
            .iter()
            .zip(&self.domains)
            .map(|(&i, d)| d.values()[i].clone())
            .collect();
        // Odometer increment, last position fastest.
        let mut pos = self.indices.len();
        loop {
            if pos == 0 {
                self.done = true;
                break;
            }
            pos -= 1;
            self.indices[pos] += 1;
            if self.indices[pos] < self.domains[pos].len() {
                break;
            }
            self.indices[pos] = 0;
        }
        Some(tuple)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_dedup_and_order() {
        let d = Domain::new(vec![Val::Int(2), Val::Int(1), Val::Int(2)]);
        assert_eq!(d.values(), &[Val::Int(1), Val::Int(2)]);
    }

    #[test]
    fn stepped_domain() {
        let d = Domain::ints_stepped(0, 10, 4);
        assert_eq!(d.values(), &[Val::Int(0), Val::Int(4), Val::Int(8)]);
    }

    #[test]
    #[should_panic(expected = "step must be positive")]
    fn stepped_domain_rejects_zero_step() {
        let _ = Domain::ints_stepped(0, 10, 0);
    }

    #[test]
    fn powerset_domain() {
        let d = Domain::powerset(3);
        assert_eq!(d.len(), 8);
        assert!(d.contains(&Val::set([])));
        assert!(d.contains(&Val::set([0, 1, 2])));
    }

    #[test]
    fn tuple_iteration_is_lexicographic() {
        let doms = Domains::new()
            .with("x", Domain::syms(["a", "b"]))
            .with("y", Domain::ints(0..=1));
        let vars = [Var::new("x"), Var::new("y")];
        let tuples: Vec<Vec<Val>> = doms.tuples(&vars).unwrap().collect();
        assert_eq!(
            tuples,
            vec![
                vec![Val::sym("a"), Val::Int(0)],
                vec![Val::sym("a"), Val::Int(1)],
                vec![Val::sym("b"), Val::Int(0)],
                vec![Val::sym("b"), Val::Int(1)],
            ]
        );
        assert_eq!(doms.tuple_count(&vars).unwrap(), 4);
    }

    #[test]
    fn empty_var_list_yields_one_empty_tuple() {
        let doms = Domains::new();
        let tuples: Vec<Vec<Val>> = doms.tuples(&[]).unwrap().collect();
        assert_eq!(tuples, vec![Vec::<Val>::new()]);
    }

    #[test]
    fn empty_domain_yields_no_tuples() {
        let doms = Domains::new().with("x", Domain::new(vec![]));
        let tuples: Vec<Vec<Val>> = doms.tuples(&[Var::new("x")]).unwrap().collect();
        assert!(tuples.is_empty());
    }

    #[test]
    fn missing_domain_error() {
        let doms = Domains::new();
        let err = doms.get(&Var::new("z")).unwrap_err();
        assert_eq!(err.var(), &Var::new("z"));
        assert!(err.to_string().contains("`z`"));
    }
}
