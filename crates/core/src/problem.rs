//! Soft Constraint Satisfaction Problems (SCSPs).

use std::fmt;

use softsoa_semiring::Semiring;

use crate::solve::{EnumerationSolver, Solution, SolveError, Solver};
use crate::{Constraint, Domain, Domains, Var};

/// A Soft Constraint Satisfaction Problem `P = ⟨C, con⟩` (Sec. 2).
///
/// `C` is a set of soft constraints over declared finite domains and
/// `con ⊆ V` is the set of *variables of interest*: the solution
/// `Sol(P) = (⊗C) ⇓ con` is a constraint over exactly those variables,
/// and the *best level of consistency* is `blevel(P) = Sol(P) ⇓ ∅`.
///
/// # Examples
///
/// The weighted problem of Fig. 1:
///
/// ```
/// use softsoa_core::{Scsp, Constraint, Domain, Val, Var};
/// use softsoa_semiring::WeightedInt;
///
/// let x = Var::new("x");
/// let y = Var::new("y");
/// let p = Scsp::new(WeightedInt)
///     .with_domain(x.clone(), Domain::syms(["a", "b"]))
///     .with_domain(y.clone(), Domain::syms(["a", "b"]))
///     .with_constraint(Constraint::table(
///         WeightedInt, &[x.clone()],
///         [(vec![Val::sym("a")], 1), (vec![Val::sym("b")], 9)], u64::MAX))
///     .with_constraint(Constraint::table(
///         WeightedInt, &[x.clone(), y.clone()],
///         [
///             (vec![Val::sym("a"), Val::sym("a")], 5),
///             (vec![Val::sym("a"), Val::sym("b")], 1),
///             (vec![Val::sym("b"), Val::sym("a")], 2),
///             (vec![Val::sym("b"), Val::sym("b")], 2),
///         ], u64::MAX))
///     .with_constraint(Constraint::table(
///         WeightedInt, &[y.clone()],
///         [(vec![Val::sym("a")], 5), (vec![Val::sym("b")], 5)], u64::MAX))
///     .of_interest([x.clone()]);
///
/// let solution = p.solve()?;
/// assert_eq!(*solution.blevel(), 7);
/// # Ok::<(), softsoa_core::SolveError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Scsp<S: Semiring> {
    semiring: S,
    domains: Domains,
    constraints: Vec<Constraint<S>>,
    con: Vec<Var>,
}

impl<S: Semiring> Scsp<S> {
    /// Creates an empty problem over the given semiring.
    pub fn new(semiring: S) -> Scsp<S> {
        Scsp {
            semiring,
            domains: Domains::new(),
            constraints: Vec::new(),
            con: Vec::new(),
        }
    }

    /// Declares the domain of a variable (builder style).
    pub fn with_domain(mut self, var: impl Into<Var>, domain: Domain) -> Scsp<S> {
        self.domains.insert(var.into(), domain);
        self
    }

    /// Adds a constraint (builder style).
    pub fn with_constraint(mut self, constraint: Constraint<S>) -> Scsp<S> {
        self.constraints.push(constraint);
        self
    }

    /// Sets the variables of interest `con` (builder style).
    pub fn of_interest<I, T>(mut self, vars: I) -> Scsp<S>
    where
        I: IntoIterator<Item = T>,
        T: Into<Var>,
    {
        self.con = vars.into_iter().map(Into::into).collect();
        self.con.sort();
        self.con.dedup();
        self
    }

    /// Declares the domain of a variable.
    pub fn add_domain(&mut self, var: impl Into<Var>, domain: Domain) {
        self.domains.insert(var.into(), domain);
    }

    /// Adds a constraint.
    pub fn add_constraint(&mut self, constraint: Constraint<S>) {
        self.constraints.push(constraint);
    }

    /// The semiring of the problem.
    pub fn semiring(&self) -> &S {
        &self.semiring
    }

    /// The declared domains.
    pub fn domains(&self) -> &Domains {
        &self.domains
    }

    /// The constraint set `C`.
    pub fn constraints(&self) -> &[Constraint<S>] {
        &self.constraints
    }

    /// The variables of interest `con`, sorted.
    pub fn con(&self) -> &[Var] {
        &self.con
    }

    /// Every variable mentioned by a constraint or by `con`, sorted.
    pub fn problem_vars(&self) -> Vec<Var> {
        let mut vars: Vec<Var> = self
            .constraints
            .iter()
            .flat_map(|c| c.scope().iter().cloned())
            .chain(self.con.iter().cloned())
            .collect();
        vars.sort();
        vars.dedup();
        vars
    }

    /// Solves with the reference [`EnumerationSolver`].
    ///
    /// # Errors
    ///
    /// Returns [`SolveError`] if a variable lacks a domain.
    pub fn solve(&self) -> Result<Solution<S>, SolveError> {
        EnumerationSolver::new().solve(self)
    }

    /// Solves by exhaustive enumeration under an explicit engine
    /// configuration (compiled evaluation, worker threads).
    ///
    /// ```
    /// # use softsoa_core::{Scsp, Constraint, Domain};
    /// # use softsoa_core::solve::SolverConfig;
    /// # use softsoa_semiring::WeightedInt;
    /// let p = Scsp::new(WeightedInt)
    ///     .with_domain("x", Domain::ints(0..=9))
    ///     .with_constraint(Constraint::unary(WeightedInt, "x", |v| {
    ///         v.as_int().unwrap() as u64
    ///     }))
    ///     .of_interest(["x"]);
    /// let sol = p.solve_with(&SolverConfig::default())?;
    /// assert_eq!(*sol.blevel(), 0);
    /// assert!(sol.stats().unwrap().threads >= 1);
    /// # Ok::<(), softsoa_core::SolveError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`SolveError`] if a variable lacks a domain.
    pub fn solve_with(
        &self,
        config: &crate::solve::SolverConfig,
    ) -> Result<Solution<S>, SolveError> {
        EnumerationSolver::with_config(*config).solve(self)
    }

    /// The best level of consistency `blevel(P) = Sol(P) ⇓ ∅`.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError`] if a variable lacks a domain.
    pub fn blevel(&self) -> Result<S::Value, SolveError> {
        Ok(self.solve()?.blevel().clone())
    }

    /// Whether `P` is `α`-consistent, i.e. `blevel(P) = α`.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError`] if a variable lacks a domain.
    pub fn is_alpha_consistent(&self, alpha: &S::Value) -> Result<bool, SolveError> {
        Ok(self.blevel()? == *alpha)
    }

    /// Whether `P` is consistent: `blevel(P) >S 0`.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError`] if a variable lacks a domain.
    pub fn is_consistent(&self) -> Result<bool, SolveError> {
        let blevel = self.blevel()?;
        Ok(self.semiring.lt(&self.semiring.zero(), &blevel))
    }
}

impl<S: Semiring> fmt::Display for Scsp<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SCSP({} constraints, {} vars, con = {{",
            self.constraints.len(),
            self.domains.len(),
        )?;
        for (i, v) in self.con.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{v}")?;
        }
        f.write_str("})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::fig1_problem;
    use softsoa_semiring::WeightedInt;

    #[test]
    fn fig1_blevel_is_7() {
        let p = fig1_problem();
        assert_eq!(p.blevel().unwrap(), 7);
        assert!(p.is_alpha_consistent(&7).unwrap());
        assert!(!p.is_alpha_consistent(&5).unwrap());
        assert!(p.is_consistent().unwrap());
    }

    #[test]
    fn inconsistent_problem() {
        let p = Scsp::new(WeightedInt)
            .with_domain("x", Domain::ints(0..=1))
            .with_constraint(Constraint::never(WeightedInt))
            .of_interest(["x"]);
        assert!(!p.is_consistent().unwrap());
    }

    #[test]
    fn problem_vars_union() {
        let p = fig1_problem();
        assert_eq!(p.problem_vars(), crate::vars(["x", "y"]));
    }

    #[test]
    fn display() {
        let p = fig1_problem();
        let text = p.to_string();
        assert!(text.contains("3 constraints"));
        assert!(text.contains("con = {x}"));
    }
}
