//! Seeded generators of random and structured SCSPs.
//!
//! Used by the benchmark harness (experiment E9, `solver_comparison`)
//! and by cross-solver property tests. All generators are deterministic
//! given their seed.

use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{Rng, SeedableRng};
use softsoa_semiring::{Boolean, Fuzzy, Probabilistic, Product, Semiring, Unit, WeightedInt};

use crate::{Constraint, Domain, Scsp, Var};

/// Parameters of a random SCSP.
///
/// # Examples
///
/// ```
/// use softsoa_core::generate::{RandomScsp, random_weighted};
///
/// let cfg = RandomScsp { vars: 6, domain_size: 3, constraints: 8, arity: 2, seed: 42 };
/// let p = random_weighted(&cfg);
/// assert_eq!(p.constraints().len(), 8);
/// assert!(p.blevel().is_ok());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomScsp {
    /// Number of variables `x0 .. x(vars-1)`.
    pub vars: usize,
    /// Size of every integer domain `{0 .. domain_size-1}`.
    pub domain_size: usize,
    /// Number of constraints.
    pub constraints: usize,
    /// Arity of each constraint (clamped to `vars`).
    pub arity: usize,
    /// RNG seed; equal seeds give equal problems.
    pub seed: u64,
}

fn var(i: usize) -> Var {
    Var::new(format!("x{i}"))
}

/// Generates a random SCSP over an arbitrary semiring, drawing each
/// table entry's level from `level`.
///
/// The first variable is the variable of interest.
pub fn random_scsp<S, F>(semiring: S, cfg: &RandomScsp, mut level: F) -> Scsp<S>
where
    S: Semiring,
    F: FnMut(&mut StdRng) -> S::Value,
{
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let arity = cfg.arity.clamp(1, cfg.vars.max(1));
    let mut p = Scsp::new(semiring.clone());
    for i in 0..cfg.vars {
        p.add_domain(var(i), Domain::ints(0..cfg.domain_size as i64));
    }
    let indices: Vec<usize> = (0..cfg.vars).collect();
    for _ in 0..cfg.constraints {
        let mut chosen: Vec<usize> = indices.choose_multiple(&mut rng, arity).copied().collect();
        chosen.sort();
        let scope: Vec<Var> = chosen.iter().map(|&i| var(i)).collect();
        let doms = p.domains().clone();
        let mut entries = Vec::new();
        for tuple in doms.tuples(&scope).expect("domains declared") {
            entries.push((tuple, level(&mut rng)));
        }
        let zero = semiring.zero();
        p.add_constraint(Constraint::table(semiring.clone(), &scope, entries, zero));
    }
    p.of_interest([var(0)])
}

/// A random weighted SCSP with integer costs in `0..=9` (and an
/// occasional `∞` forbidding the tuple).
pub fn random_weighted(cfg: &RandomScsp) -> Scsp<WeightedInt> {
    random_scsp(WeightedInt, cfg, |rng| {
        if rng.random_ratio(1, 10) {
            u64::MAX
        } else {
            rng.random_range(0..10)
        }
    })
}

/// A random fuzzy SCSP with preference levels drawn uniformly from
/// `{0.0, 0.1, .., 1.0}`.
pub fn random_fuzzy(cfg: &RandomScsp) -> Scsp<Fuzzy> {
    random_scsp(Fuzzy, cfg, |rng| {
        Unit::clamped(rng.random_range(0..=10) as f64 / 10.0)
    })
}

/// A random probabilistic SCSP with success probabilities drawn
/// uniformly from `{0.0, 0.1, .., 1.0}`.
pub fn random_probabilistic(cfg: &RandomScsp) -> Scsp<Probabilistic> {
    random_scsp(Probabilistic, cfg, |rng| {
        Unit::clamped(rng.random_range(0..=10) as f64 / 10.0)
    })
}

/// A random SCSP over the partially ordered product semiring
/// `Boolean × WeightedInt` (feasibility paired with cost).
pub fn random_product(cfg: &RandomScsp) -> Scsp<Product<Boolean, WeightedInt>> {
    random_scsp(Product::new(Boolean, WeightedInt), cfg, |rng| {
        (rng.random_ratio(4, 5), rng.random_range(0..10))
    })
}

/// A weighted *chain* `x0 — x1 — ... — x(n-1)` of binary distance
/// constraints: induced width 1, the best case for bucket elimination.
pub fn chain_weighted(n: usize, domain_size: usize, seed: u64) -> Scsp<WeightedInt> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut p = Scsp::new(WeightedInt);
    for i in 0..n {
        p.add_domain(var(i), Domain::ints(0..domain_size as i64));
    }
    for i in 0..n.saturating_sub(1) {
        let offset = rng.random_range(0..domain_size as i64);
        p.add_constraint(Constraint::binary(
            WeightedInt,
            var(i),
            var(i + 1),
            move |a, b| (a.as_int().unwrap() + offset - b.as_int().unwrap()).unsigned_abs(),
        ));
    }
    p.of_interest([var(0)])
}

/// A weighted random *tree*: every variable `x1..` is tied to a random
/// earlier parent by a binary distance constraint. Induced width 1,
/// like [`chain_weighted`], but with branching.
pub fn tree_weighted(n: usize, domain_size: usize, seed: u64) -> Scsp<WeightedInt> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut p = Scsp::new(WeightedInt);
    for i in 0..n {
        p.add_domain(var(i), Domain::ints(0..domain_size as i64));
    }
    for i in 1..n {
        let parent = rng.random_range(0..i);
        let offset = rng.random_range(0..domain_size as i64);
        p.add_constraint(Constraint::binary(
            WeightedInt,
            var(parent),
            var(i),
            move |a, b| (a.as_int().unwrap() + offset - b.as_int().unwrap()).unsigned_abs(),
        ));
    }
    p.of_interest([var(0)])
}

/// Parameters of a structured *union* SCSP: `components` independent
/// banded sub-problems with no constraints between them. The
/// constraint graph of each component is the band graph (variable `i`
/// constrained to its `band` predecessors), so its treewidth is at
/// most `band`; the whole problem decomposes into exactly
/// `components` connected components.
///
/// This is the family behind the `propagation_vs_blind` benchmark:
/// tight extensional tables give the root arc-consistency pass real
/// values to prune, and the component structure lets decomposition
/// replace one search of size `d^(k·m)` with `k` searches of size
/// `d^m`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnionScsp {
    /// Number of independent components.
    pub components: usize,
    /// Variables in each component.
    pub vars_per_component: usize,
    /// Size of every integer domain.
    pub domain_size: usize,
    /// Bandwidth: variable `i` of a component is constrained to each
    /// of its `band` predecessors (clamped to at least 1).
    pub band: usize,
    /// RNG seed; equal seeds give equal problems.
    pub seed: u64,
}

/// Generates a structured union SCSP over an arbitrary semiring,
/// drawing each table entry's level from `level`. Variables are
/// `x0..` numbered component-major; the first variable of every
/// component is of interest.
pub fn union_scsp<S, F>(semiring: S, cfg: &UnionScsp, mut level: F) -> Scsp<S>
where
    S: Semiring,
    F: FnMut(&mut StdRng) -> S::Value,
{
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let band = cfg.band.max(1);
    let mut p = Scsp::new(semiring.clone());
    let total = cfg.components * cfg.vars_per_component;
    for i in 0..total {
        p.add_domain(var(i), Domain::ints(0..cfg.domain_size as i64));
    }
    for c in 0..cfg.components {
        let base = c * cfg.vars_per_component;
        for i in 1..cfg.vars_per_component {
            for j in i.saturating_sub(band)..i {
                let scope = vec![var(base + j), var(base + i)];
                let doms = p.domains().clone();
                let mut entries = Vec::new();
                for tuple in doms.tuples(&scope).expect("domains declared") {
                    entries.push((tuple, level(&mut rng)));
                }
                let zero = semiring.zero();
                p.add_constraint(Constraint::table(semiring.clone(), &scope, entries, zero));
            }
        }
    }
    p.of_interest((0..cfg.components).map(|c| var(c * cfg.vars_per_component)))
}

/// A weighted structured union with tight tables: roughly a third of
/// the tuples are forbidden (`∞`), the rest cost `0..=9` — dense
/// enough in `∞` that the root arc-consistency pass prunes real
/// domain values, sparse enough that components stay consistent.
pub fn union_weighted(cfg: &UnionScsp) -> Scsp<WeightedInt> {
    union_scsp(WeightedInt, cfg, |rng| {
        if rng.random_ratio(3, 10) {
            u64::MAX
        } else {
            rng.random_range(0..10)
        }
    })
}

/// A single-component banded problem of treewidth at most `band`
/// (a [`UnionScsp`] with one component).
pub fn banded_weighted(n: usize, domain_size: usize, band: usize, seed: u64) -> Scsp<WeightedInt> {
    union_weighted(&UnionScsp {
        components: 1,
        vars_per_component: n,
        domain_size,
        band,
        seed,
    })
}

fn one_component(n: usize, domain_size: usize, band: usize, seed: u64) -> UnionScsp {
    UnionScsp {
        components: 1,
        vars_per_component: n,
        domain_size,
        band,
        seed,
    }
}

/// A single-component banded fuzzy problem: the [`banded_weighted`]
/// band graph with preference levels from `{0.0, 0.1, .., 1.0}`,
/// roughly a tenth of the tuples fully rejected (`0.0`) so pruning and
/// consistency both stay exercised.
pub fn banded_fuzzy(n: usize, domain_size: usize, band: usize, seed: u64) -> Scsp<Fuzzy> {
    union_scsp(Fuzzy, &one_component(n, domain_size, band, seed), |rng| {
        if rng.random_ratio(1, 10) {
            Unit::MIN
        } else {
            Unit::clamped(rng.random_range(1..=10) as f64 / 10.0)
        }
    })
}

/// A single-component banded probabilistic problem: the
/// [`banded_weighted`] band graph with success probabilities from
/// `{0.0, 0.1, .., 1.0}`, roughly a tenth of the tuples impossible
/// (`0.0`). Probabilistic `×` rounds, so engines that re-associate the
/// product (tree elimination) may differ from search by final-ulp
/// noise — the cross-semiring equivalence suite compares accordingly.
pub fn banded_probabilistic(
    n: usize,
    domain_size: usize,
    band: usize,
    seed: u64,
) -> Scsp<Probabilistic> {
    union_scsp(
        Probabilistic,
        &one_component(n, domain_size, band, seed),
        |rng| {
            if rng.random_ratio(1, 10) {
                Unit::MIN
            } else {
                Unit::clamped(rng.random_range(1..=10) as f64 / 10.0)
            }
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve::{BranchAndBound, BucketElimination, EnumerationSolver, Solver};

    #[test]
    fn generation_is_deterministic() {
        let cfg = RandomScsp {
            vars: 5,
            domain_size: 3,
            constraints: 6,
            arity: 2,
            seed: 7,
        };
        let a = random_weighted(&cfg).blevel().unwrap();
        let b = random_weighted(&cfg).blevel().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn solvers_agree_on_random_weighted_problems() {
        for seed in 0..10 {
            let cfg = RandomScsp {
                vars: 5,
                domain_size: 3,
                constraints: 7,
                arity: 2,
                seed,
            };
            let p = random_weighted(&cfg);
            let reference = EnumerationSolver::new().solve(&p).unwrap();
            let bnb = BranchAndBound::default().solve(&p).unwrap();
            let be = BucketElimination::default().solve(&p).unwrap();
            assert_eq!(reference.blevel(), bnb.blevel(), "seed {seed}");
            assert_eq!(reference.blevel(), be.blevel(), "seed {seed}");
        }
    }

    #[test]
    fn solvers_agree_on_random_fuzzy_problems() {
        for seed in 0..10 {
            let cfg = RandomScsp {
                vars: 4,
                domain_size: 4,
                constraints: 5,
                arity: 2,
                seed,
            };
            let p = random_fuzzy(&cfg);
            let reference = EnumerationSolver::new().solve(&p).unwrap();
            let bnb = BranchAndBound::default().solve(&p).unwrap();
            let be = BucketElimination::default().solve(&p).unwrap();
            assert_eq!(reference.blevel(), bnb.blevel(), "seed {seed}");
            assert_eq!(reference.blevel(), be.blevel(), "seed {seed}");
        }
    }

    #[test]
    fn probabilistic_and_product_generators_are_deterministic() {
        let cfg = RandomScsp {
            vars: 4,
            domain_size: 3,
            constraints: 5,
            arity: 2,
            seed: 11,
        };
        assert_eq!(
            random_probabilistic(&cfg).blevel().unwrap(),
            random_probabilistic(&cfg).blevel().unwrap()
        );
        assert_eq!(
            random_product(&cfg).blevel().unwrap(),
            random_product(&cfg).blevel().unwrap()
        );
    }

    #[test]
    fn chain_has_binary_constraints_only() {
        let p = chain_weighted(6, 3, 1);
        assert_eq!(p.constraints().len(), 5);
        assert!(p.constraints().iter().all(|c| c.scope().len() == 2));
    }

    #[test]
    fn tree_is_connected_with_width_one() {
        let p = tree_weighted(7, 3, 5);
        assert_eq!(p.constraints().len(), 6);
        assert_eq!(crate::solve::constraint_components(&p).len(), 1);
    }

    #[test]
    fn union_splits_into_its_components() {
        let cfg = UnionScsp {
            components: 3,
            vars_per_component: 4,
            domain_size: 3,
            band: 2,
            seed: 9,
        };
        let p = union_weighted(&cfg);
        let comps = crate::solve::constraint_components(&p);
        assert_eq!(comps.len(), 3);
        assert!(comps.iter().all(|c| c.len() == 4));
        // Deterministic given the seed.
        assert_eq!(p.blevel().unwrap(), union_weighted(&cfg).blevel().unwrap());
    }

    #[test]
    fn banded_fuzzy_and_probabilistic_share_the_band_graph() {
        let w = banded_weighted(6, 3, 2, 4);
        let f = banded_fuzzy(6, 3, 2, 4);
        let pr = banded_probabilistic(6, 3, 2, 4);
        assert_eq!(w.constraints().len(), f.constraints().len());
        assert_eq!(w.constraints().len(), pr.constraints().len());
        for (a, b) in w.constraints().iter().zip(f.constraints()) {
            assert_eq!(a.scope(), b.scope());
        }
        // Deterministic given the seed.
        assert_eq!(
            f.blevel().unwrap(),
            banded_fuzzy(6, 3, 2, 4).blevel().unwrap()
        );
        assert_eq!(
            pr.blevel().unwrap(),
            banded_probabilistic(6, 3, 2, 4).blevel().unwrap()
        );
    }

    #[test]
    fn banded_respects_the_band() {
        let p = banded_weighted(5, 3, 2, 3);
        // Edges (j, i) with i - band <= j < i: 1 + 2 + 2 + 2.
        assert_eq!(p.constraints().len(), 7);
        for c in p.constraints() {
            let idx: Vec<i64> = c
                .scope()
                .iter()
                .map(|v| v.name()[1..].parse().unwrap())
                .collect();
            assert!((idx[1] - idx[0]).abs() <= 2);
        }
    }
}
