//! Seeded generators of random and structured SCSPs.
//!
//! Used by the benchmark harness (experiment E9, `solver_comparison`)
//! and by cross-solver property tests. All generators are deterministic
//! given their seed.

use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::{Rng, SeedableRng};
use softsoa_semiring::{Boolean, Fuzzy, Probabilistic, Product, Semiring, Unit, WeightedInt};

use crate::{Constraint, Domain, Scsp, Var};

/// Parameters of a random SCSP.
///
/// # Examples
///
/// ```
/// use softsoa_core::generate::{RandomScsp, random_weighted};
///
/// let cfg = RandomScsp { vars: 6, domain_size: 3, constraints: 8, arity: 2, seed: 42 };
/// let p = random_weighted(&cfg);
/// assert_eq!(p.constraints().len(), 8);
/// assert!(p.blevel().is_ok());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RandomScsp {
    /// Number of variables `x0 .. x(vars-1)`.
    pub vars: usize,
    /// Size of every integer domain `{0 .. domain_size-1}`.
    pub domain_size: usize,
    /// Number of constraints.
    pub constraints: usize,
    /// Arity of each constraint (clamped to `vars`).
    pub arity: usize,
    /// RNG seed; equal seeds give equal problems.
    pub seed: u64,
}

fn var(i: usize) -> Var {
    Var::new(format!("x{i}"))
}

/// Generates a random SCSP over an arbitrary semiring, drawing each
/// table entry's level from `level`.
///
/// The first variable is the variable of interest.
pub fn random_scsp<S, F>(semiring: S, cfg: &RandomScsp, mut level: F) -> Scsp<S>
where
    S: Semiring,
    F: FnMut(&mut StdRng) -> S::Value,
{
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let arity = cfg.arity.clamp(1, cfg.vars.max(1));
    let mut p = Scsp::new(semiring.clone());
    for i in 0..cfg.vars {
        p.add_domain(var(i), Domain::ints(0..cfg.domain_size as i64));
    }
    let indices: Vec<usize> = (0..cfg.vars).collect();
    for _ in 0..cfg.constraints {
        let mut chosen: Vec<usize> = indices.choose_multiple(&mut rng, arity).copied().collect();
        chosen.sort();
        let scope: Vec<Var> = chosen.iter().map(|&i| var(i)).collect();
        let doms = p.domains().clone();
        let mut entries = Vec::new();
        for tuple in doms.tuples(&scope).expect("domains declared") {
            entries.push((tuple, level(&mut rng)));
        }
        let zero = semiring.zero();
        p.add_constraint(Constraint::table(semiring.clone(), &scope, entries, zero));
    }
    p.of_interest([var(0)])
}

/// A random weighted SCSP with integer costs in `0..=9` (and an
/// occasional `∞` forbidding the tuple).
pub fn random_weighted(cfg: &RandomScsp) -> Scsp<WeightedInt> {
    random_scsp(WeightedInt, cfg, |rng| {
        if rng.random_ratio(1, 10) {
            u64::MAX
        } else {
            rng.random_range(0..10)
        }
    })
}

/// A random fuzzy SCSP with preference levels drawn uniformly from
/// `{0.0, 0.1, .., 1.0}`.
pub fn random_fuzzy(cfg: &RandomScsp) -> Scsp<Fuzzy> {
    random_scsp(Fuzzy, cfg, |rng| {
        Unit::clamped(rng.random_range(0..=10) as f64 / 10.0)
    })
}

/// A random probabilistic SCSP with success probabilities drawn
/// uniformly from `{0.0, 0.1, .., 1.0}`.
pub fn random_probabilistic(cfg: &RandomScsp) -> Scsp<Probabilistic> {
    random_scsp(Probabilistic, cfg, |rng| {
        Unit::clamped(rng.random_range(0..=10) as f64 / 10.0)
    })
}

/// A random SCSP over the partially ordered product semiring
/// `Boolean × WeightedInt` (feasibility paired with cost).
pub fn random_product(cfg: &RandomScsp) -> Scsp<Product<Boolean, WeightedInt>> {
    random_scsp(Product::new(Boolean, WeightedInt), cfg, |rng| {
        (rng.random_ratio(4, 5), rng.random_range(0..10))
    })
}

/// A weighted *chain* `x0 — x1 — ... — x(n-1)` of binary distance
/// constraints: induced width 1, the best case for bucket elimination.
pub fn chain_weighted(n: usize, domain_size: usize, seed: u64) -> Scsp<WeightedInt> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut p = Scsp::new(WeightedInt);
    for i in 0..n {
        p.add_domain(var(i), Domain::ints(0..domain_size as i64));
    }
    for i in 0..n.saturating_sub(1) {
        let offset = rng.random_range(0..domain_size as i64);
        p.add_constraint(Constraint::binary(
            WeightedInt,
            var(i),
            var(i + 1),
            move |a, b| (a.as_int().unwrap() + offset - b.as_int().unwrap()).unsigned_abs(),
        ));
    }
    p.of_interest([var(0)])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve::{BranchAndBound, BucketElimination, EnumerationSolver, Solver};

    #[test]
    fn generation_is_deterministic() {
        let cfg = RandomScsp {
            vars: 5,
            domain_size: 3,
            constraints: 6,
            arity: 2,
            seed: 7,
        };
        let a = random_weighted(&cfg).blevel().unwrap();
        let b = random_weighted(&cfg).blevel().unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn solvers_agree_on_random_weighted_problems() {
        for seed in 0..10 {
            let cfg = RandomScsp {
                vars: 5,
                domain_size: 3,
                constraints: 7,
                arity: 2,
                seed,
            };
            let p = random_weighted(&cfg);
            let reference = EnumerationSolver::new().solve(&p).unwrap();
            let bnb = BranchAndBound::default().solve(&p).unwrap();
            let be = BucketElimination::default().solve(&p).unwrap();
            assert_eq!(reference.blevel(), bnb.blevel(), "seed {seed}");
            assert_eq!(reference.blevel(), be.blevel(), "seed {seed}");
        }
    }

    #[test]
    fn solvers_agree_on_random_fuzzy_problems() {
        for seed in 0..10 {
            let cfg = RandomScsp {
                vars: 4,
                domain_size: 4,
                constraints: 5,
                arity: 2,
                seed,
            };
            let p = random_fuzzy(&cfg);
            let reference = EnumerationSolver::new().solve(&p).unwrap();
            let bnb = BranchAndBound::default().solve(&p).unwrap();
            let be = BucketElimination::default().solve(&p).unwrap();
            assert_eq!(reference.blevel(), bnb.blevel(), "seed {seed}");
            assert_eq!(reference.blevel(), be.blevel(), "seed {seed}");
        }
    }

    #[test]
    fn probabilistic_and_product_generators_are_deterministic() {
        let cfg = RandomScsp {
            vars: 4,
            domain_size: 3,
            constraints: 5,
            arity: 2,
            seed: 11,
        };
        assert_eq!(
            random_probabilistic(&cfg).blevel().unwrap(),
            random_probabilistic(&cfg).blevel().unwrap()
        );
        assert_eq!(
            random_product(&cfg).blevel().unwrap(),
            random_product(&cfg).blevel().unwrap()
        );
    }

    #[test]
    fn chain_has_binary_constraints_only() {
        let p = chain_weighted(6, 3, 1);
        assert_eq!(p.constraints().len(), 5);
        assert!(p.constraints().iter().all(|c| c.scope().len() == 2));
    }
}
