//! Compiled evaluation of SCSPs.
//!
//! The lazy [`Constraint`] representation is convenient for the algebra
//! of Sec. 2 — `⊗` and `÷` build intensional constraints on demand —
//! but evaluating it in a solver's hot loop pays for that convenience
//! on every assignment: hash lookups for tables, per-call `Vec<Val>`
//! sub-tuple allocation, binary searches from parameter names to scope
//! positions.
//!
//! [`CompiledProblem`] performs that bookkeeping **once**:
//!
//! - every constraint's `⊗`-DAG is collapsed into a flat operand list
//!   (combinations are structural since `Constraint::combine`, so this
//!   is a walk, not a re-association);
//! - each operand's scope is embedded into the problem's variable
//!   order as precomputed `usize` indices;
//! - operands with small scopes are materialised into **dense tables**
//!   indexed by a mixed-radix flat index (row-major, last variable
//!   fastest — the same order as
//!   [`Domains::tuples`](crate::Domains::tuples)), so the hot loop is
//!   slice indexing with zero hashing and zero allocation. Operands
//!   whose table would exceed [`DENSE_TABLE_LIMIT`] cells stay lazy.
//!
//! Assignments are plain `&[usize]` domain-index tuples; semiring
//! values are the only things cloned per evaluation.

use std::time::{Duration, Instant};

use softsoa_semiring::Semiring;

use crate::solve::ConstraintEvalStats;
use crate::{Assignment, Constraint, Domains, MissingDomainError, Scsp, Val, Var};

/// Maximum number of cells a compiled operand may materialise.
///
/// Operands with more cells than this stay lazy (the flat-index
/// embedding still applies; only the table lookup falls back to the
/// constraint's own evaluation).
pub const DENSE_TABLE_LIMIT: usize = 1 << 16;

enum OperandKind<S: Semiring> {
    /// A constant level (empty scope after compilation).
    Const(S::Value),
    /// A dense table indexed by the operand's mixed-radix flat index.
    Dense(Vec<S::Value>),
    /// Scope too large to materialise: evaluate the constraint lazily.
    Lazy(Constraint<S>),
}

struct CompiledOperand<S: Semiring> {
    label: String,
    /// Positions of the operand's (sorted) scope variables inside the
    /// compiled variable order.
    emb: Vec<usize>,
    /// Mixed-radix strides over the operand scope (last fastest);
    /// empty for constants and unused for lazy operands.
    strides: Vec<usize>,
    cells: usize,
    materialize_time: Duration,
    kind: OperandKind<S>,
}

/// An SCSP compiled for fast repeated evaluation.
///
/// Built by [`CompiledProblem::from_problem`] (sorted variable order)
/// or [`CompiledProblem::with_order`] (solver-chosen search order).
/// Solvers walk assignments as `&[usize]` index tuples and call
/// [`CompiledProblem::apply_completed`] /
/// [`CompiledProblem::aggregate_range`].
pub struct CompiledProblem<S: Semiring> {
    semiring: S,
    vars: Vec<Var>,
    /// Domain values per variable, in `vars` order.
    domains: Vec<Vec<Val>>,
    sizes: Vec<usize>,
    operands: Vec<CompiledOperand<S>>,
    /// Operand ids whose scope completes at each assignment depth
    /// (index `d` holds operands fully assigned once `vars[..d]` are).
    completing: Vec<Vec<usize>>,
    con: Vec<Var>,
    /// Position of each `con` variable inside `vars`.
    con_pos: Vec<usize>,
    /// Mixed-radix strides over `con` (last fastest).
    con_strides: Vec<usize>,
    con_cells: usize,
    compile_time: Duration,
}

/// Partial aggregation result produced by
/// [`CompiledProblem::aggregate_range`]: a dense `con`-table plus the
/// counters accumulated while producing it.
pub struct Aggregate<S: Semiring> {
    /// Accumulated value per `con` tuple, indexed by the con flat
    /// index; decode with [`CompiledProblem::con_entries`].
    pub table: Vec<S::Value>,
    /// Search-tree nodes visited.
    pub nodes: u64,
    /// Zero-absorption cuts taken.
    pub prunings: u64,
    /// Evaluations per operand.
    pub evals: Vec<u64>,
}

impl<S: Semiring> Aggregate<S> {
    /// Merges chunk aggregates by pointwise `+` (sound because `+` is
    /// associative and commutative); counters are summed.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or the tables disagree in size.
    pub fn merge(semiring: &S, parts: Vec<Aggregate<S>>) -> Aggregate<S> {
        let mut parts = parts.into_iter();
        let mut merged = parts.next().expect("at least one aggregate chunk");
        for part in parts {
            assert_eq!(
                merged.table.len(),
                part.table.len(),
                "aggregate shape mismatch"
            );
            for (acc, v) in merged.table.iter_mut().zip(&part.table) {
                *acc = semiring.plus(acc, v);
            }
            merged.nodes += part.nodes;
            merged.prunings += part.prunings;
            for (acc, e) in merged.evals.iter_mut().zip(&part.evals) {
                *acc += e;
            }
        }
        merged
    }
}

impl<S: Semiring> CompiledProblem<S> {
    /// Compiles `problem` using its sorted variable order.
    ///
    /// # Errors
    ///
    /// Returns [`MissingDomainError`] if a problem variable has no
    /// domain.
    pub fn from_problem(problem: &Scsp<S>) -> Result<CompiledProblem<S>, MissingDomainError> {
        let vars = problem.problem_vars();
        CompiledProblem::with_order(problem, vars)
    }

    /// Compiles `problem` with an explicit variable order — the search
    /// order of branch-and-bound style solvers, so that "operand
    /// completes at depth `d`" matches their assignment depth.
    ///
    /// # Errors
    ///
    /// Returns [`MissingDomainError`] if a variable in `vars` has no
    /// domain.
    ///
    /// # Panics
    ///
    /// Panics if `vars` is not a permutation of the problem variables.
    pub fn with_order(
        problem: &Scsp<S>,
        vars: Vec<Var>,
    ) -> Result<CompiledProblem<S>, MissingDomainError> {
        let mut sorted = vars.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(
            sorted,
            problem.problem_vars(),
            "variable order must be a permutation of the problem variables"
        );
        CompiledProblem::build(
            problem.semiring().clone(),
            problem.constraints(),
            vars,
            problem.con(),
            problem.domains(),
        )
    }

    /// Compiles an aggregation of `constraints` down to the `keep`
    /// variables — the workhorse behind bucket-elimination projections.
    /// The compiled variable set is the union of the constraint scopes
    /// and `keep` (sorted); `con` is `keep`.
    ///
    /// # Errors
    ///
    /// Returns [`MissingDomainError`] if a scope or `keep` variable has
    /// no domain.
    pub fn for_projection(
        semiring: S,
        constraints: &[Constraint<S>],
        keep: &[Var],
        domains: &Domains,
    ) -> Result<CompiledProblem<S>, MissingDomainError> {
        let mut vars: Vec<Var> = constraints
            .iter()
            .flat_map(|c| c.scope().iter().cloned())
            .chain(keep.iter().cloned())
            .collect();
        vars.sort();
        vars.dedup();
        CompiledProblem::build(semiring, constraints, vars, keep, domains)
    }

    fn build(
        semiring: S,
        constraints: &[Constraint<S>],
        vars: Vec<Var>,
        con: &[Var],
        domain_map: &Domains,
    ) -> Result<CompiledProblem<S>, MissingDomainError> {
        let start = Instant::now();
        let domains: Vec<Vec<Val>> = vars
            .iter()
            .map(|v| Ok(domain_map.get(v)?.values().to_vec()))
            .collect::<Result<_, MissingDomainError>>()?;
        let sizes: Vec<usize> = domains.iter().map(Vec::len).collect();
        let position = |v: &Var| -> usize {
            vars.iter()
                .position(|u| u == v)
                .expect("scope var is compiled")
        };

        let mut operands: Vec<CompiledOperand<S>> = Vec::new();
        for (ci, c) in constraints.iter().enumerate() {
            for (oi, (op, _)) in c.flat_operands().into_iter().enumerate() {
                let label = match op.label().or(c.label()) {
                    Some(l) => l.to_string(),
                    None if oi == 0 => format!("c{ci}"),
                    None => format!("c{ci}.{oi}"),
                };
                let emb: Vec<usize> = op.scope().iter().map(&position).collect();
                let cells = emb
                    .iter()
                    .map(|&p| sizes[p])
                    .try_fold(1usize, |acc, n| acc.checked_mul(n))
                    .unwrap_or(usize::MAX);
                let mut strides = vec![1usize; emb.len()];
                for k in (0..emb.len().saturating_sub(1)).rev() {
                    strides[k] = strides[k + 1] * sizes[emb[k + 1]];
                }
                let mat_start = Instant::now();
                let (kind, cells) = if emb.is_empty() {
                    (OperandKind::Const(op.eval_tuple(&[])), 0)
                } else if cells <= DENSE_TABLE_LIMIT {
                    // Fill in flat-index order: enumerate the operand
                    // scope with the last variable fastest, matching
                    // the stride layout.
                    let mut table = Vec::with_capacity(cells);
                    let mut idx = vec![0usize; emb.len()];
                    let mut tuple: Vec<Val> = emb.iter().map(|&p| domains[p][0].clone()).collect();
                    'fill: loop {
                        table.push(op.eval_tuple(&tuple));
                        let mut pos = emb.len();
                        loop {
                            if pos == 0 {
                                break 'fill;
                            }
                            pos -= 1;
                            idx[pos] += 1;
                            if idx[pos] < sizes[emb[pos]] {
                                tuple[pos] = domains[emb[pos]][idx[pos]].clone();
                                break;
                            }
                            idx[pos] = 0;
                            tuple[pos] = domains[emb[pos]][0].clone();
                        }
                    }
                    (OperandKind::Dense(table), cells)
                } else {
                    (OperandKind::Lazy(op.clone()), 0)
                };
                operands.push(CompiledOperand {
                    label,
                    emb,
                    strides,
                    cells,
                    materialize_time: mat_start.elapsed(),
                    kind,
                });
            }
        }

        let mut completing: Vec<Vec<usize>> = vec![Vec::new(); vars.len() + 1];
        for (oi, op) in operands.iter().enumerate() {
            let depth = op.emb.iter().copied().max().map_or(0, |d| d + 1);
            completing[depth].push(oi);
        }

        let con_pos: Vec<usize> = con.iter().map(&position).collect();
        let mut con_strides = vec![1usize; con.len()];
        for k in (0..con.len().saturating_sub(1)).rev() {
            con_strides[k] = con_strides[k + 1] * sizes[con_pos[k + 1]];
        }
        let con_cells = con_pos.iter().map(|&p| sizes[p]).product::<usize>();

        Ok(CompiledProblem {
            semiring,
            vars,
            domains,
            sizes,
            operands,
            completing,
            con: con.to_vec(),
            con_pos,
            con_strides,
            con_cells,
            compile_time: start.elapsed(),
        })
    }

    /// The compiled variable order.
    pub fn vars(&self) -> &[Var] {
        &self.vars
    }

    /// Domain sizes per variable, in compiled order.
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// The domain values of the variable at `pos`, sorted.
    pub fn domain(&self, pos: usize) -> &[Val] {
        &self.domains[pos]
    }

    /// Number of compiled `⊗`-operands.
    pub fn num_operands(&self) -> usize {
        self.operands.len()
    }

    /// Number of distinct `con` tuples (the aggregate table size).
    pub fn con_cells(&self) -> usize {
        self.con_cells
    }

    /// Width of the outermost split loop: the first variable's domain
    /// size, or `1` for variable-free problems.
    pub fn outer_size(&self) -> usize {
        self.sizes.first().copied().unwrap_or(1)
    }

    /// Time spent flattening, embedding and materialising.
    pub fn compile_time(&self) -> Duration {
        self.compile_time
    }

    /// Operand ids whose scope is fully assigned once the first
    /// `depth` variables are bound (constants complete at depth `0`).
    pub fn completing_at(&self, depth: usize) -> &[usize] {
        &self.completing[depth]
    }

    /// The scope of operand `oi` as positions into [`vars`](Self::vars),
    /// in the operand's own (sorted-by-variable) scope order — empty
    /// for constants.
    pub fn operand_scope(&self, oi: usize) -> &[usize] {
        &self.operands[oi].emb
    }

    /// The mixed-radix strides of operand `oi` over its own scope
    /// (aligned with [`operand_scope`](Self::operand_scope), last
    /// variable fastest).
    pub(crate) fn operand_strides(&self, oi: usize) -> &[usize] {
        &self.operands[oi].strides
    }

    /// The dense table of operand `oi`, or `None` for constants and
    /// operands that stayed lazy.
    pub(crate) fn operand_dense(&self, oi: usize) -> Option<&[S::Value]> {
        match &self.operands[oi].kind {
            OperandKind::Dense(table) => Some(table),
            _ => None,
        }
    }

    /// The display label of operand `oi`.
    pub(crate) fn operand_label(&self, oi: usize) -> &str {
        &self.operands[oi].label
    }

    /// The fixed level of operand `oi`, when it is a constant.
    pub(crate) fn operand_const(&self, oi: usize) -> Option<&S::Value> {
        match &self.operands[oi].kind {
            OperandKind::Const(value) => Some(value),
            _ => None,
        }
    }

    /// Evaluates operand `oi` on the index tuple `idx` (one domain
    /// index per compiled variable; only the operand's own positions
    /// are read). `scratch` is reused for lazy operands' sub-tuples.
    pub fn value_at(&self, oi: usize, idx: &[usize], scratch: &mut Vec<Val>) -> S::Value {
        let op = &self.operands[oi];
        match &op.kind {
            OperandKind::Const(v) => v.clone(),
            OperandKind::Dense(table) => {
                let mut flat = 0;
                for (k, &p) in op.emb.iter().enumerate() {
                    flat += idx[p] * op.strides[k];
                }
                table[flat].clone()
            }
            OperandKind::Lazy(c) => {
                scratch.clear();
                scratch.extend(op.emb.iter().map(|&p| self.domains[p][idx[p]].clone()));
                c.eval_tuple(scratch)
            }
        }
    }

    /// Multiplies `value` by every operand completing at `depth`,
    /// short-circuiting on `0` (absorbing for `×`). `evals` counts
    /// operand evaluations; index it by operand id.
    pub fn apply_completed(
        &self,
        depth: usize,
        value: S::Value,
        idx: &[usize],
        scratch: &mut Vec<Val>,
        evals: &mut [u64],
    ) -> S::Value {
        let mut acc = value;
        for &oi in &self.completing[depth] {
            if self.semiring.is_zero(&acc) {
                break;
            }
            evals[oi] += 1;
            let level = self.value_at(oi, idx, scratch);
            acc = self.semiring.times(&acc, &level);
        }
        acc
    }

    /// Flat index of `idx`'s restriction to `con`.
    pub fn con_index(&self, idx: &[usize]) -> usize {
        let mut flat = 0;
        for (k, &p) in self.con_pos.iter().enumerate() {
            flat += idx[p] * self.con_strides[k];
        }
        flat
    }

    /// Aggregates all full assignments whose **first** variable index
    /// lies in `range`: the `×`-product of all operands, `+`-summed
    /// into a dense `con` table. Splitting the outermost variable
    /// across threads and [`Aggregate::merge`]-ing the chunks yields
    /// exactly `Sol(P) = (⊗C) ⇓ con` restricted to nothing.
    ///
    /// For variable-free problems pass `0..1` (the single empty
    /// assignment).
    pub fn aggregate_range(&self, range: std::ops::Range<usize>) -> Aggregate<S> {
        let mut agg = Aggregate {
            table: vec![self.semiring.zero(); self.con_cells],
            nodes: 0,
            prunings: 0,
            evals: vec![0; self.operands.len()],
        };
        let mut idx = vec![0usize; self.vars.len()];
        let mut scratch = Vec::new();
        if self.vars.is_empty() {
            if !range.is_empty() {
                agg.nodes += 1;
                let v = self.apply_completed(
                    0,
                    self.semiring.one(),
                    &idx,
                    &mut scratch,
                    &mut agg.evals,
                );
                agg.table[0] = self.semiring.plus(&agg.table[0], &v);
            }
            return agg;
        }
        let root = self.apply_completed(0, self.semiring.one(), &idx, &mut scratch, &mut agg.evals);
        for i in range {
            idx[0] = i;
            let value = self.apply_completed(1, root.clone(), &idx, &mut scratch, &mut agg.evals);
            self.agg_rec(1, &mut idx, value, &mut agg, &mut scratch);
        }
        agg
    }

    fn agg_rec(
        &self,
        depth: usize,
        idx: &mut Vec<usize>,
        value: S::Value,
        agg: &mut Aggregate<S>,
        scratch: &mut Vec<Val>,
    ) {
        agg.nodes += 1;
        if self.semiring.is_zero(&value) {
            // `0` is the identity of `+` and absorbing for `×`: the
            // whole subtree contributes nothing to any con cell.
            agg.prunings += 1;
            return;
        }
        if depth == self.vars.len() {
            let ci = self.con_index(idx);
            agg.table[ci] = self.semiring.plus(&agg.table[ci], &value);
            return;
        }
        for i in 0..self.sizes[depth] {
            idx[depth] = i;
            let next = self.apply_completed(depth + 1, value.clone(), idx, scratch, &mut agg.evals);
            self.agg_rec(depth + 1, idx, next, agg, scratch);
        }
    }

    /// Decodes a dense `con` table into `(tuple, value)` entries in
    /// lexicographic `con` order (the order of
    /// [`Domains::tuples`](crate::Domains::tuples)).
    pub fn con_entries(&self, table: Vec<S::Value>) -> Vec<(Vec<Val>, S::Value)> {
        table
            .into_iter()
            .enumerate()
            .map(|(flat, value)| {
                let tuple: Vec<Val> = self
                    .con_pos
                    .iter()
                    .zip(&self.con_strides)
                    .map(|(&p, &stride)| {
                        let digit = (flat / stride) % self.sizes[p];
                        self.domains[p][digit].clone()
                    })
                    .collect();
                (tuple, value)
            })
            .collect()
    }

    /// The `con` variables, as passed at compile time.
    pub fn con(&self) -> &[Var] {
        &self.con
    }

    /// Converts a full index tuple into an [`Assignment`] over all
    /// compiled variables.
    pub fn assignment(&self, idx: &[usize]) -> Assignment {
        self.vars
            .iter()
            .enumerate()
            .map(|(p, v)| (v.clone(), self.domains[p][idx[p]].clone()))
            .collect()
    }

    /// Converts a full index tuple into an [`Assignment`] over `con`.
    pub fn con_assignment(&self, idx: &[usize]) -> Assignment {
        self.con
            .iter()
            .zip(&self.con_pos)
            .map(|(v, &p)| (v.clone(), self.domains[p][idx[p]].clone()))
            .collect()
    }

    /// Per-operand [`ConstraintEvalStats`] from an eval-counter vector.
    pub fn eval_stats(&self, evals: &[u64]) -> Vec<ConstraintEvalStats> {
        self.operands
            .iter()
            .zip(evals)
            .map(|(op, &e)| ConstraintEvalStats {
                label: op.label.clone(),
                evals: e,
                dense_cells: op.cells,
                materialize_time: op.materialize_time,
            })
            .collect()
    }

    /// The semiring the compiled problem is valued in.
    pub fn semiring(&self) -> &S {
        &self.semiring
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solve::{EnumerationSolver, Solver};
    use crate::testutil::fig1_problem;
    use crate::{Domain, Scsp};
    use softsoa_semiring::WeightedInt;

    #[test]
    fn aggregate_matches_reference_on_fig1() {
        let p = fig1_problem();
        let cp = CompiledProblem::from_problem(&p).unwrap();
        let agg = cp.aggregate_range(0..cp.outer_size());
        let entries = cp.con_entries(agg.table);
        // Sol(P): x=a → 7, x=b → 16.
        assert_eq!(entries.len(), 2);
        assert_eq!(entries[0].1, 7);
        assert_eq!(entries[1].1, 16);
    }

    #[test]
    fn chunked_aggregation_merges_to_the_same_table() {
        let p = crate::generate::random_weighted(&crate::generate::RandomScsp {
            vars: 5,
            domain_size: 3,
            constraints: 8,
            arity: 2,
            seed: 11,
        });
        let cp = CompiledProblem::from_problem(&p).unwrap();
        let whole = cp.aggregate_range(0..cp.outer_size());
        let parts: Vec<_> = (0..cp.outer_size())
            .map(|i| cp.aggregate_range(i..i + 1))
            .collect();
        let merged = Aggregate::merge(cp.semiring(), parts);
        assert_eq!(whole.table, merged.table);
    }

    #[test]
    fn large_scopes_stay_lazy() {
        // 9 variables of size 8 = 2^27 cells: must not materialise.
        let vars: Vec<Var> = (0..9).map(|i| Var::new(format!("x{i}"))).collect();
        let scope = vars.clone();
        let mut p = Scsp::new(WeightedInt).of_interest(["x0"]);
        for v in &vars {
            p.add_domain(v.clone(), Domain::ints(0..8));
        }
        p.add_constraint(Constraint::from_fn(WeightedInt, &scope, |vals| {
            vals.iter().map(|v| v.as_int().unwrap() as u64).sum()
        }));
        let cp = CompiledProblem::from_problem(&p).unwrap();
        let stats = cp.eval_stats(&vec![0; cp.num_operands()]);
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].dense_cells, 0, "operand must stay lazy");
    }

    #[test]
    fn flattens_nested_combinations() {
        let p = fig1_problem();
        let combined = crate::combine_all(WeightedInt, p.constraints());
        let q = Scsp::new(WeightedInt)
            .with_domain("x", Domain::syms(["a", "b"]))
            .with_domain("y", Domain::syms(["a", "b"]))
            .with_constraint(combined)
            .of_interest(["x"]);
        let cp = CompiledProblem::from_problem(&q).unwrap();
        // The single combined constraint decomposes into 3 operands.
        assert_eq!(cp.num_operands(), 3);
        let sol = EnumerationSolver::new().solve(&p).unwrap();
        let agg = cp.aggregate_range(0..cp.outer_size());
        let entries = cp.con_entries(agg.table);
        let blevel = cp.semiring().sum(entries.iter().map(|(_, v)| v));
        assert_eq!(&blevel, sol.blevel());
    }

    #[test]
    fn variable_free_problem_aggregates_the_empty_tuple() {
        let p = Scsp::new(WeightedInt).with_constraint(Constraint::constant(WeightedInt, 4));
        let cp = CompiledProblem::from_problem(&p).unwrap();
        assert_eq!(cp.outer_size(), 1);
        let agg = cp.aggregate_range(0..1);
        assert_eq!(agg.table, vec![4]);
    }
}
