//! Constraint variables.

use std::fmt;
use std::sync::Arc;

/// A named decision variable of a soft constraint problem.
///
/// Variables are cheap to clone (reference-counted name) and ordered
/// lexicographically, so constraint scopes can be kept in canonical
/// order.
///
/// # Examples
///
/// ```
/// use softsoa_core::Var;
///
/// let x = Var::new("x");
/// assert_eq!(x.name(), "x");
/// assert_eq!(x, Var::new("x"));
/// assert!(Var::new("a") < Var::new("b"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(Arc<str>);

impl Var {
    /// Creates a variable with the given name.
    pub fn new(name: impl AsRef<str>) -> Var {
        Var(Arc::from(name.as_ref()))
    }

    /// Returns the variable name.
    pub fn name(&self) -> &str {
        &self.0
    }

    /// Creates a *fresh* variable derived from this one, guaranteed not
    /// to collide with any variable whose name does not contain `'`.
    ///
    /// Used by the hiding operator `∃x` of the `nmsccp` language, whose
    /// semantics renames the bound variable to a fresh one (rule R9).
    pub fn fresh(&self, counter: u64) -> Var {
        Var(Arc::from(format!("{}'{}", self.0, counter)))
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Var {
    fn from(name: &str) -> Var {
        Var::new(name)
    }
}

impl From<String> for Var {
    fn from(name: String) -> Var {
        Var(Arc::from(name))
    }
}

/// Creates a vector of variables from a list of names.
///
/// # Examples
///
/// ```
/// use softsoa_core::{vars, Var};
///
/// let vs = vars(["x", "y"]);
/// assert_eq!(vs, vec![Var::new("x"), Var::new("y")]);
/// ```
pub fn vars<I, T>(names: I) -> Vec<Var>
where
    I: IntoIterator<Item = T>,
    T: AsRef<str>,
{
    names.into_iter().map(Var::new).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equality_by_name() {
        assert_eq!(Var::new("x"), Var::from("x"));
        assert_ne!(Var::new("x"), Var::new("y"));
    }

    #[test]
    fn fresh_variables_do_not_collide() {
        let x = Var::new("x");
        let f1 = x.fresh(1);
        let f2 = x.fresh(2);
        assert_ne!(f1, x);
        assert_ne!(f1, f2);
        assert_eq!(f1.name(), "x'1");
    }

    #[test]
    fn display_and_order() {
        assert_eq!(Var::new("outcomp").to_string(), "outcomp");
        assert!(Var::new("a") < Var::new("b"));
    }
}
