//! Soft constraints: functions from assignments to semiring levels.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use softsoa_semiring::Semiring;

use crate::{Assignment, Domains, MissingDomainError, Val, Var};

/// An error returned when evaluating a constraint under an assignment
/// that does not bind its whole support.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnboundVarError {
    var: Var,
}

impl UnboundVarError {
    /// The unbound variable.
    pub fn var(&self) -> &Var {
        &self.var
    }
}

impl fmt::Display for UnboundVarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "assignment does not bind support variable `{}`",
            self.var
        )
    }
}

impl std::error::Error for UnboundVarError {}

/// A soft constraint over the semiring `S`.
///
/// Following the paper (Sec. 2), a soft constraint is a function
/// `c : (V → D) → A` that maps every assignment `η` to a level of the
/// semiring, and depends only on a finite *support* (its scope).
///
/// Constraints come in three shapes:
///
/// - **constant** — the paper's `ā` functions, in particular `0̄` and
///   `1̄` ([`Constraint::never`], [`Constraint::always`]);
/// - **extensional** tables mapping value tuples to levels (Fig. 1);
/// - **intensional** closures such as the paper's polynomial policies
///   (`c(x) = 2x`, "reliability is `5x + 80`").
///
/// All algebraic operators of the paper — combination `⊗`, division
/// `÷`, projection `⇓`, hiding `∃x`, the order `⊑`, entailment — are
/// methods — combine/divide/project/hide/leq and friends — all
/// defined in this crate's `ops` module.
///
/// # Examples
///
/// ```
/// use softsoa_core::{Constraint, Var, Val};
/// use softsoa_semiring::{WeightedInt, Semiring};
///
/// // c3(x) = 2x over the weighted semiring (Fig. 7 of the paper).
/// let c3 = Constraint::unary(WeightedInt, "x", |v| {
///     2 * v.as_int().expect("int domain") as u64
/// });
/// let eta = softsoa_core::Assignment::new().bind("x", 3);
/// assert_eq!(c3.eval(&eta), 6);
/// ```
#[derive(Clone)]
pub struct Constraint<S: Semiring> {
    semiring: S,
    /// Sorted, deduplicated support.
    scope: Vec<Var>,
    def: Def<S>,
    label: Option<Arc<str>>,
}

#[derive(Clone)]
enum Def<S: Semiring> {
    /// The constant function `ā`.
    Const(S::Value),
    /// An extensional definition: tuple (in scope order) → level.
    Table(Arc<Table<S>>),
    /// An intensional definition: closure over values in `params` order.
    Func(Arc<FuncDef<S>>),
    /// A structural `⊗`-combination of operands, kept flat so the
    /// compiler can collapse whole combine DAGs into one operand list.
    Combined(Arc<CombinedDef<S>>),
    /// A structural division `left ÷ right`.
    Divided(Arc<DividedDef<S>>),
}

struct Table<S: Semiring> {
    map: HashMap<Vec<Val>, S::Value>,
    default: S::Value,
}

type EvalFn<S> = Box<dyn Fn(&[Val]) -> <S as Semiring>::Value + Send + Sync>;

struct FuncDef<S: Semiring> {
    /// Parameter order the closure expects (may differ from the sorted
    /// scope).
    params: Vec<Var>,
    f: EvalFn<S>,
}

/// A flat `⊗`-combination. Each operand carries the positions of its
/// scope variables inside the parent's sorted scope, computed once at
/// construction — nested combines compose these index maps instead of
/// re-sorting and re-searching scopes on every level.
///
/// Invariant: no operand is itself `Def::Combined` (the constructor
/// flattens), so evaluation and compilation never recurse through
/// combination nodes.
struct CombinedDef<S: Semiring> {
    operands: Vec<(Constraint<S>, Vec<usize>)>,
}

/// A structural division. The `div` function pointer captures the
/// `Residuated::div` of the semiring at construction time, where the
/// `Residuated` bound is available.
struct DividedDef<S: Semiring> {
    left: (Constraint<S>, Vec<usize>),
    right: (Constraint<S>, Vec<usize>),
    div: fn(&S, &S::Value, &S::Value) -> S::Value,
}

fn sorted_scope(vars: &[Var]) -> Vec<Var> {
    let mut scope = vars.to_vec();
    scope.sort();
    scope.dedup();
    scope
}

impl<S: Semiring> Constraint<S> {
    /// The constant constraint `ā`, associating `value` to every
    /// assignment. Its support is empty.
    pub fn constant(semiring: S, value: S::Value) -> Constraint<S> {
        Constraint {
            semiring,
            scope: Vec::new(),
            def: Def::Const(value),
            label: None,
        }
    }

    /// The constraint `1̄` — fully satisfied everywhere (the paper's
    /// empty store).
    pub fn always(semiring: S) -> Constraint<S> {
        let one = semiring.one();
        Constraint::constant(semiring, one)
    }

    /// The constraint `0̄` — violated everywhere.
    pub fn never(semiring: S) -> Constraint<S> {
        let zero = semiring.zero();
        Constraint::constant(semiring, zero)
    }

    /// An extensional constraint from `(tuple, level)` entries.
    ///
    /// `vars` fixes the order in which each entry tuple lists its
    /// values; assignments not matching any entry get `default`.
    ///
    /// # Panics
    ///
    /// Panics if an entry tuple's arity differs from `vars.len()`, or
    /// if `vars` contains duplicates.
    pub fn table<I>(semiring: S, vars: &[Var], entries: I, default: S::Value) -> Constraint<S>
    where
        I: IntoIterator<Item = (Vec<Val>, S::Value)>,
    {
        let scope = sorted_scope(vars);
        assert_eq!(
            scope.len(),
            vars.len(),
            "table scope contains duplicate variables"
        );
        // Permutation from user order to sorted scope order.
        let perm: Vec<usize> = scope
            .iter()
            .map(|v| vars.iter().position(|u| u == v).expect("var in scope"))
            .collect();
        let map = entries
            .into_iter()
            .map(|(tuple, value)| {
                assert_eq!(
                    tuple.len(),
                    vars.len(),
                    "table entry arity mismatch: expected {}, got {}",
                    vars.len(),
                    tuple.len()
                );
                let key: Vec<Val> = perm.iter().map(|&i| tuple[i].clone()).collect();
                (key, value)
            })
            .collect();
        Constraint {
            semiring,
            scope,
            def: Def::Table(Arc::new(Table { map, default })),
            label: None,
        }
    }

    /// An intensional constraint computed by a closure.
    ///
    /// The closure receives the values of `vars` *in the given order*.
    ///
    /// # Panics
    ///
    /// Panics if `vars` contains duplicates.
    pub fn from_fn<F>(semiring: S, vars: &[Var], f: F) -> Constraint<S>
    where
        F: Fn(&[Val]) -> S::Value + Send + Sync + 'static,
    {
        let scope = sorted_scope(vars);
        assert_eq!(
            scope.len(),
            vars.len(),
            "constraint scope contains duplicate variables"
        );
        Constraint {
            semiring,
            scope,
            def: Def::Func(Arc::new(FuncDef {
                params: vars.to_vec(),
                f: Box::new(f),
            })),
            label: None,
        }
    }

    /// A unary intensional constraint over `var`.
    pub fn unary<F>(semiring: S, var: impl Into<Var>, f: F) -> Constraint<S>
    where
        F: Fn(&Val) -> S::Value + Send + Sync + 'static,
    {
        Constraint::from_fn(semiring, &[var.into()], move |vals| f(&vals[0]))
    }

    /// A binary intensional constraint over `(x, y)`; the closure
    /// receives the values in that order.
    pub fn binary<F>(semiring: S, x: impl Into<Var>, y: impl Into<Var>, f: F) -> Constraint<S>
    where
        F: Fn(&Val, &Val) -> S::Value + Send + Sync + 'static,
    {
        Constraint::from_fn(semiring, &[x.into(), y.into()], move |vals| {
            f(&vals[0], &vals[1])
        })
    }

    /// A crisp constraint: `1` where the predicate holds, `0` elsewhere.
    ///
    /// This casts classical constraints into any semiring, as the paper
    /// does for the partition and stability constraints of Sec. 6.1.
    pub fn crisp<F>(semiring: S, vars: &[Var], pred: F) -> Constraint<S>
    where
        F: Fn(&[Val]) -> bool + Send + Sync + 'static,
    {
        let one = semiring.one();
        let zero = semiring.zero();
        Constraint::from_fn(semiring, vars, move |vals| {
            if pred(vals) {
                one.clone()
            } else {
                zero.clone()
            }
        })
    }

    /// The diagonal constraint `d_xy`: `1` where `x = y`, `0` elsewhere.
    ///
    /// Diagonal constraints model parameter passing in procedure calls
    /// (rule R10 of the `nmsccp` transition system).
    pub fn diagonal(semiring: S, x: impl Into<Var>, y: impl Into<Var>) -> Constraint<S> {
        let one = semiring.one();
        let zero = semiring.zero();
        Constraint::binary(semiring, x, y, move |a, b| {
            if a == b {
                one.clone()
            } else {
                zero.clone()
            }
        })
        .with_label("d_xy")
    }

    /// Attaches a human-readable label, shown by `Debug`.
    pub fn with_label(mut self, label: impl AsRef<str>) -> Constraint<S> {
        self.label = Some(Arc::from(label.as_ref()));
        self
    }

    /// The label, if any.
    pub fn label(&self) -> Option<&str> {
        self.label.as_deref()
    }

    /// The semiring this constraint is valued in.
    pub fn semiring(&self) -> &S {
        &self.semiring
    }

    /// The support (scope) of the constraint, sorted.
    pub fn scope(&self) -> &[Var] {
        &self.scope
    }

    /// Whether the constraint is a constant function (empty support).
    pub fn is_constant(&self) -> bool {
        self.scope.is_empty()
    }

    /// If the constraint is a constant function, its value.
    pub fn as_constant(&self) -> Option<&S::Value> {
        match &self.def {
            Def::Const(v) => Some(v),
            _ => None,
        }
    }

    /// Evaluates the constraint under `η`.
    ///
    /// # Errors
    ///
    /// Returns [`UnboundVarError`] if `η` does not bind the whole
    /// support.
    pub fn try_eval(&self, eta: &Assignment) -> Result<S::Value, UnboundVarError> {
        match &self.def {
            Def::Const(v) => Ok(v.clone()),
            Def::Table(table) => {
                let key = self.scope_tuple(eta)?;
                Ok(table
                    .map
                    .get(&key)
                    .cloned()
                    .unwrap_or_else(|| table.default.clone()))
            }
            Def::Func(func) => {
                let args: Vec<Val> = func
                    .params
                    .iter()
                    .map(|v| {
                        eta.get(v)
                            .cloned()
                            .ok_or_else(|| UnboundVarError { var: v.clone() })
                    })
                    .collect::<Result<_, _>>()?;
                Ok((func.f)(&args))
            }
            Def::Combined(_) | Def::Divided(_) => {
                let key = self.scope_tuple(eta)?;
                Ok(self.eval_tuple(&key))
            }
        }
    }

    /// Evaluates the constraint under `η` (the paper's `cη`).
    ///
    /// # Panics
    ///
    /// Panics if `η` does not bind the whole support; use
    /// [`Constraint::try_eval`] for a fallible variant.
    pub fn eval(&self, eta: &Assignment) -> S::Value {
        self.try_eval(eta)
            .unwrap_or_else(|e| panic!("constraint evaluation failed: {e}"))
    }

    /// Evaluates on a tuple of values given in *sorted scope order*.
    ///
    /// This is the fast path used by solvers that enumerate domain
    /// tuples directly.
    ///
    /// # Panics
    ///
    /// Panics if `tuple.len() != self.scope().len()`.
    pub fn eval_tuple(&self, tuple: &[Val]) -> S::Value {
        assert_eq!(tuple.len(), self.scope.len(), "scope tuple arity mismatch");
        match &self.def {
            Def::Const(v) => v.clone(),
            Def::Table(table) => table
                .map
                .get(tuple)
                .cloned()
                .unwrap_or_else(|| table.default.clone()),
            Def::Func(func) => {
                let args: Vec<Val> = func
                    .params
                    .iter()
                    .map(|v| {
                        let i = self
                            .scope
                            .binary_search(v)
                            .expect("param is in sorted scope");
                        tuple[i].clone()
                    })
                    .collect();
                (func.f)(&args)
            }
            Def::Combined(def) => {
                let mut acc = self.semiring.one();
                let mut sub: Vec<Val> = Vec::new();
                for (c, emb) in &def.operands {
                    if self.semiring.is_zero(&acc) {
                        break; // 0 absorbs ×
                    }
                    sub.clear();
                    sub.extend(emb.iter().map(|&i| tuple[i].clone()));
                    acc = self.semiring.times(&acc, &c.eval_tuple(&sub));
                }
                acc
            }
            Def::Divided(def) => {
                let lt: Vec<Val> = def.left.1.iter().map(|&i| tuple[i].clone()).collect();
                let rt: Vec<Val> = def.right.1.iter().map(|&i| tuple[i].clone()).collect();
                (def.div)(
                    &self.semiring,
                    &def.left.0.eval_tuple(&lt),
                    &def.right.0.eval_tuple(&rt),
                )
            }
        }
    }

    /// Builds a flat `⊗`-combination over an already-computed sorted
    /// `scope`. Each part carries the embedding of its scope into
    /// `scope`; parts that are themselves combinations are flattened by
    /// composing their operands' embeddings, so the result's operand
    /// list is always one level deep.
    pub(crate) fn combined_from(
        semiring: S,
        scope: Vec<Var>,
        parts: Vec<(Constraint<S>, Vec<usize>)>,
    ) -> Constraint<S> {
        let mut operands: Vec<(Constraint<S>, Vec<usize>)> = Vec::with_capacity(parts.len());
        for (part, emb) in parts {
            debug_assert_eq!(part.scope.len(), emb.len(), "embedding arity mismatch");
            match &part.def {
                Def::Combined(def) => {
                    for (op, op_emb) in &def.operands {
                        let composed: Vec<usize> = op_emb.iter().map(|&i| emb[i]).collect();
                        operands.push((op.clone(), composed));
                    }
                }
                _ => operands.push((part, emb)),
            }
        }
        Constraint {
            semiring,
            scope,
            def: Def::Combined(Arc::new(CombinedDef { operands })),
            label: None,
        }
    }

    /// Builds a structural division over an already-computed sorted
    /// `scope`; `div` is the semiring's residuation operation.
    pub(crate) fn divided_from(
        semiring: S,
        scope: Vec<Var>,
        left: (Constraint<S>, Vec<usize>),
        right: (Constraint<S>, Vec<usize>),
        div: fn(&S, &S::Value, &S::Value) -> S::Value,
    ) -> Constraint<S> {
        Constraint {
            semiring,
            scope,
            def: Def::Divided(Arc::new(DividedDef { left, right, div })),
            label: None,
        }
    }

    /// The constraint's `⊗`-operands, each with the embedding of its
    /// scope into `self.scope()`. Non-combination constraints are their
    /// own single operand (identity embedding). This is the entry point
    /// the compiler uses to collapse combine DAGs into a flat list.
    pub(crate) fn flat_operands(&self) -> Vec<(&Constraint<S>, Vec<usize>)> {
        match &self.def {
            Def::Combined(def) => def
                .operands
                .iter()
                .map(|(c, emb)| (c, emb.clone()))
                .collect(),
            _ => vec![(self, (0..self.scope.len()).collect())],
        }
    }

    fn scope_tuple(&self, eta: &Assignment) -> Result<Vec<Val>, UnboundVarError> {
        self.scope
            .iter()
            .map(|v| {
                eta.get(v)
                    .cloned()
                    .ok_or_else(|| UnboundVarError { var: v.clone() })
            })
            .collect()
    }

    /// Renames a support variable, returning a constraint that behaves
    /// like `self` with `from` read from `to` instead.
    ///
    /// Used by the `nmsccp` hiding rule (R9), whose semantics renames
    /// the bound variable to a fresh one. If `from` is not in the
    /// support, the constraint is returned unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `to` is already in the support (variable capture).
    pub fn rename(&self, from: &Var, to: &Var) -> Constraint<S> {
        if from == to || !self.scope.contains(from) {
            return self.clone();
        }
        assert!(
            !self.scope.contains(to),
            "renaming `{from}` to `{to}` would capture an existing support variable"
        );
        let old = self.clone();
        // Parallel to the old sorted scope, with `from` replaced.
        let new_params: Vec<Var> = old
            .scope
            .iter()
            .map(|v| if v == from { to.clone() } else { v.clone() })
            .collect();
        let label = self.label.clone();
        let mut renamed = Constraint::from_fn(self.semiring.clone(), &new_params, move |vals| {
            // `vals` arrive in `new_params` order, which mirrors the old
            // sorted scope order exactly.
            old.eval_tuple(vals)
        });
        renamed.label = label;
        renamed
    }

    /// Materialises the constraint into an extensional table over its
    /// scope, enumerating the given domains.
    ///
    /// Evaluating the result never calls user closures again; the cost
    /// is the product of the scope's domain sizes.
    ///
    /// # Errors
    ///
    /// Returns [`MissingDomainError`] if a scope variable has no domain.
    pub fn materialize(&self, domains: &Domains) -> Result<Constraint<S>, MissingDomainError> {
        if let Def::Const(_) = self.def {
            return Ok(self.clone());
        }
        let mut map = HashMap::new();
        for tuple in domains.tuples(&self.scope)? {
            let value = self.eval_tuple(&tuple);
            map.insert(tuple, value);
        }
        Ok(Constraint {
            semiring: self.semiring.clone(),
            scope: self.scope.clone(),
            def: Def::Table(Arc::new(Table {
                map,
                default: self.semiring.zero(),
            })),
            label: self.label.clone(),
        })
    }
}

impl<S: Semiring> fmt::Debug for Constraint<S> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match &self.def {
            Def::Const(v) => format!("const({v:?})"),
            Def::Table(t) => format!("table({} entries)", t.map.len()),
            Def::Func(_) => "fn".to_string(),
            Def::Combined(def) => format!("⊗({} operands)", def.operands.len()),
            Def::Divided(_) => "÷".to_string(),
        };
        let mut s = f.debug_struct("Constraint");
        if let Some(label) = &self.label {
            s.field("label", label);
        }
        s.field("scope", &self.scope).field("def", &kind).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Domain;
    use softsoa_semiring::{Boolean, WeightedInt};

    fn x() -> Var {
        Var::new("x")
    }

    fn y() -> Var {
        Var::new("y")
    }

    #[test]
    fn constant_constraints() {
        let one = Constraint::always(WeightedInt);
        let zero = Constraint::never(WeightedInt);
        let eta = Assignment::new();
        assert_eq!(one.eval(&eta), 0); // weighted one is cost 0
        assert_eq!(zero.eval(&eta), u64::MAX);
        assert!(one.is_constant());
        assert_eq!(one.as_constant(), Some(&0));
    }

    #[test]
    fn table_reorders_to_sorted_scope() {
        // Declare with vars in (y, x) order; scope must sort to (x, y).
        let c = Constraint::table(
            WeightedInt,
            &[y(), x()],
            vec![(vec![Val::Int(1), Val::Int(2)], 7u64)], // y=1, x=2
            0,
        );
        assert_eq!(c.scope(), &[x(), y()]);
        let eta = Assignment::new().bind("x", 2).bind("y", 1);
        assert_eq!(c.eval(&eta), 7);
        // eval_tuple takes sorted scope order: (x, y).
        assert_eq!(c.eval_tuple(&[Val::Int(2), Val::Int(1)]), 7);
    }

    #[test]
    fn function_constraints_respect_param_order() {
        // f(x, y) = x - y, declared with params (y, x) swapped.
        let c = Constraint::from_fn(WeightedInt, &[y(), x()], |vals| {
            let yv = vals[0].as_int().unwrap();
            let xv = vals[1].as_int().unwrap();
            (xv - yv).unsigned_abs()
        });
        let eta = Assignment::new().bind("x", 5).bind("y", 2);
        assert_eq!(c.eval(&eta), 3);
        assert_eq!(c.eval_tuple(&[Val::Int(5), Val::Int(2)]), 3);
    }

    #[test]
    fn unbound_variable_error() {
        let c = Constraint::unary(WeightedInt, "x", |_| 1);
        let err = c.try_eval(&Assignment::new()).unwrap_err();
        assert_eq!(err.var(), &x());
    }

    #[test]
    fn crisp_and_diagonal() {
        let d = Constraint::diagonal(Boolean, "x", "y");
        let same = Assignment::new().bind("x", 1).bind("y", 1);
        let diff = Assignment::new().bind("x", 1).bind("y", 2);
        assert!(d.eval(&same));
        assert!(!d.eval(&diff));

        let c = Constraint::crisp(WeightedInt, &[x()], |vals| vals[0].as_int().unwrap() > 0);
        assert_eq!(c.eval(&Assignment::new().bind("x", 1)), 0);
        assert_eq!(c.eval(&Assignment::new().bind("x", -1)), u64::MAX);
    }

    #[test]
    fn materialize_agrees_with_function() {
        let doms = Domains::new().with("x", Domain::ints(0..=5));
        let c = Constraint::unary(WeightedInt, "x", |v| v.as_int().unwrap() as u64 + 3);
        let t = c.materialize(&doms).unwrap();
        for v in 0..=5 {
            let eta = Assignment::new().bind("x", v);
            assert_eq!(c.eval(&eta), t.eval(&eta));
        }
    }

    #[test]
    #[should_panic(expected = "duplicate variables")]
    fn duplicate_scope_rejected() {
        let _ = Constraint::from_fn(WeightedInt, &[x(), x()], |_| 0);
    }

    #[test]
    fn rename_preserves_semantics() {
        let c = Constraint::binary(WeightedInt, "x", "y", |a, b| {
            (2 * a.as_int().unwrap() + b.as_int().unwrap()) as u64
        });
        let r = c.rename(&x(), &Var::new("z"));
        assert_eq!(r.scope(), &[y(), Var::new("z")]);
        let eta = Assignment::new().bind("z", 3).bind("y", 1);
        assert_eq!(r.eval(&eta), 7);
        // Renaming an absent variable is the identity.
        let same = c.rename(&Var::new("w"), &Var::new("q"));
        assert_eq!(same.scope(), c.scope());
    }

    #[test]
    #[should_panic(expected = "capture")]
    fn rename_rejects_capture() {
        let c = Constraint::binary(WeightedInt, "x", "y", |_, _| 0);
        let _ = c.rename(&x(), &y());
    }

    #[test]
    fn debug_shows_label() {
        let c = Constraint::always(Boolean).with_label("Memory");
        let dbg = format!("{c:?}");
        assert!(dbg.contains("Memory"));
    }
}
