//! Property tests for the propagation-and-decomposition layer: soft
//! arc-consistency, estimate-driven ordering and connected-component
//! decomposition are pure accelerations.
//!
//! The contract, in two strengths:
//!
//! - **Witness identity** — root or full propagation under the input
//!   order reproduces the blind run's `blevel` *and* witness exactly:
//!   a value is pruned only when its best completion cannot strictly
//!   beat the current floor, so the lexicographically first optimum is
//!   never cut. Inexact semirings (floating-point `×`) keep only the
//!   always-sound zero-prune and the identity still holds.
//! - **Witness validity** — estimate ordering and decomposition may
//!   legitimately return a *different equally best* assignment (the
//!   fuzzy `×` is idempotent; components merge in component order), so
//!   for them we assert the reported `blevel` is unchanged and the
//!   returned witness actually evaluates to it.

use proptest::prelude::*;
use softsoa_core::generate::{
    random_fuzzy, random_probabilistic, random_weighted, union_weighted, RandomScsp, UnionScsp,
};
use softsoa_core::solve::{
    BranchAndBound, Parallelism, PropagationMode, Solver, SolverConfig, VarOrder,
};
use softsoa_core::{Assignment, Scsp, Var};
use softsoa_semiring::Semiring;

fn sequential() -> SolverConfig {
    SolverConfig::default().with_parallelism(Parallelism::Sequential)
}

/// The blind reference configuration: no propagation, no
/// decomposition.
fn blind() -> SolverConfig {
    sequential()
        .with_propagation(PropagationMode::Off)
        .with_decompose(false)
}

fn project(eta: &Assignment, con: &[Var]) -> Assignment {
    let mut out = Assignment::new();
    for v in con {
        out = out.bind(v.clone(), eta.get(v).expect("complete").clone());
    }
    out
}

/// Exhaustively enumerates the problem and returns, per projection
/// onto the interest variables, the best achievable level — the
/// ground truth a solver's witness is checked against.
fn projected_optima<S: Semiring>(p: &Scsp<S>) -> Vec<(Assignment, S::Value)> {
    let semiring = p.semiring().clone();
    let vars = p.problem_vars();
    let doms = p.domains().clone();
    let mut out: Vec<(Assignment, S::Value)> = Vec::new();
    for tuple in doms.tuples(&vars).expect("domains declared") {
        let mut eta = Assignment::new();
        for (v, val) in vars.iter().zip(&tuple) {
            eta = eta.bind(v.clone(), val.clone());
        }
        let mut level = semiring.one();
        for c in p.constraints() {
            level = semiring.times(&level, &c.eval(&eta));
        }
        let proj = project(&eta, p.con());
        match out.iter_mut().find(|(a, _)| a == &proj) {
            Some((_, best)) => *best = semiring.plus(best, &level),
            None => out.push((proj, level)),
        }
    }
    out
}

fn nodes<S: Semiring>(solution: &softsoa_core::solve::Solution<S>) -> u64 {
    solution.stats().map_or(0, |s| s.nodes)
}

/// Root and full propagation under the input order: identical
/// `blevel`, identical witness, never more nodes.
fn assert_propagation_preserves_the_witness<S: Semiring>(p: &Scsp<S>) {
    let reference = BranchAndBound::with_config(VarOrder::Input, blind())
        .solve(p)
        .unwrap();
    for mode in [PropagationMode::Root, PropagationMode::Full] {
        let solved = BranchAndBound::with_config(
            VarOrder::Input,
            sequential().with_propagation(mode).with_decompose(false),
        )
        .solve(p)
        .unwrap();
        assert_eq!(solved.blevel(), reference.blevel(), "{mode:?}");
        assert_eq!(
            solved.best_assignment(),
            reference.best_assignment(),
            "{mode:?} changed the witness"
        );
        assert!(
            nodes(&solved) <= nodes(&reference),
            "{mode:?} explored more nodes ({} > {})",
            nodes(&solved),
            nodes(&reference)
        );
    }
}

fn engine_configs() -> [(&'static str, VarOrder, SolverConfig); 3] {
    [
        (
            "estimate",
            VarOrder::Estimate,
            sequential().with_decompose(false),
        ),
        ("decomposed", VarOrder::Input, sequential()),
        (
            "all-on",
            VarOrder::Estimate,
            sequential().with_propagation(PropagationMode::Full),
        ),
    ]
}

/// Estimate ordering, decomposition, and everything combined: the
/// `blevel` matches the enumerated optimum and the witness is the
/// projection of an assignment that actually achieves it.
fn assert_engine_preserves_the_blevel<S: Semiring>(p: &Scsp<S>) {
    let semiring = p.semiring().clone();
    let optima = projected_optima(p);
    let global = optima.iter().fold(semiring.zero(), |acc, (_, level)| {
        semiring.plus(&acc, level)
    });
    for (name, order, config) in engine_configs() {
        let solved = BranchAndBound::with_config(order, config).solve(p).unwrap();
        assert_eq!(solved.blevel(), &global, "{name}");
        match solved.best_assignment() {
            Some(eta) => {
                let achieved = optima
                    .iter()
                    .find(|(a, _)| a == eta)
                    .map(|(_, level)| level)
                    .expect("witness lies in the assignment space");
                assert_eq!(achieved, solved.blevel(), "{name} witness");
            }
            None => assert!(
                semiring.is_zero(solved.blevel()),
                "{name}: no witness above zero"
            ),
        }
    }
}

/// The probabilistic variant: `×` is floating-point multiplication, so
/// re-associated products (different variable orders, per-component
/// factors) may differ from the enumerated optimum in the last ulp.
/// `blevel` and the witness's achievable level are compared within
/// `1e-9`.
fn assert_engine_preserves_the_blevel_approximately(p: &Scsp<softsoa_semiring::Probabilistic>) {
    let optima = projected_optima(p);
    let global = optima
        .iter()
        .map(|(_, level)| level.get())
        .fold(0.0f64, f64::max);
    for (name, order, config) in engine_configs() {
        let solved = BranchAndBound::with_config(order, config).solve(p).unwrap();
        let got = solved.blevel().get();
        assert!((got - global).abs() <= 1e-9, "{name}: {got} vs {global}");
        if let Some(eta) = solved.best_assignment() {
            let achieved = optima
                .iter()
                .find(|(a, _)| a == eta)
                .map(|(_, level)| level.get())
                .expect("witness lies in the assignment space");
            assert!(
                (achieved - got).abs() <= 1e-9,
                "{name} witness: {achieved} vs {got}"
            );
        }
    }
}

fn cfg_strategy() -> impl Strategy<Value = RandomScsp> {
    (3usize..=5, 2usize..=3, 4usize..=9, any::<u64>()).prop_map(
        |(vars, domain_size, constraints, seed)| RandomScsp {
            vars,
            domain_size,
            constraints,
            arity: 2,
            seed,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn propagation_matches_blind_on_weighted(cfg in cfg_strategy()) {
        assert_propagation_preserves_the_witness(&random_weighted(&cfg));
    }

    #[test]
    fn propagation_matches_blind_on_fuzzy(cfg in cfg_strategy()) {
        assert_propagation_preserves_the_witness(&random_fuzzy(&cfg));
    }

    #[test]
    fn propagation_matches_blind_on_probabilistic(cfg in cfg_strategy()) {
        assert_propagation_preserves_the_witness(&random_probabilistic(&cfg));
    }

    #[test]
    fn engine_preserves_blevel_on_weighted(cfg in cfg_strategy()) {
        assert_engine_preserves_the_blevel(&random_weighted(&cfg));
    }

    #[test]
    fn engine_preserves_blevel_on_fuzzy(cfg in cfg_strategy()) {
        assert_engine_preserves_the_blevel(&random_fuzzy(&cfg));
    }

    #[test]
    fn engine_preserves_blevel_on_probabilistic(cfg in cfg_strategy()) {
        assert_engine_preserves_the_blevel_approximately(&random_probabilistic(&cfg));
    }
}

/// Pinned regression: seeding an inexact-`×` solve with the exact
/// optimum used to wipe the root out — re-associated float products
/// put the support bound an ulp below the floor. Inexact semirings now
/// keep only the zero-prune, so the hardest valid seed is survivable.
#[test]
fn inexact_semirings_survive_an_exact_seed() {
    for seed in 0..8 {
        let cfg = RandomScsp {
            vars: 4,
            domain_size: 3,
            constraints: 6,
            arity: 2,
            seed,
        };
        let p = random_probabilistic(&cfg);
        let cold = BranchAndBound::with_config(VarOrder::Input, blind())
            .solve(&p)
            .unwrap();
        let warm = BranchAndBound::with_config(VarOrder::Input, sequential().with_decompose(false))
            .solve_seeded(&p, *cold.blevel())
            .unwrap();
        assert_eq!(warm.blevel(), cold.blevel(), "seed {seed}");
        assert_eq!(
            warm.best_assignment(),
            cold.best_assignment(),
            "seed {seed}"
        );
    }
}

/// The deterministic CI smoke check: on the structured k-component
/// union family, root propagation alone explores strictly fewer nodes
/// than the blind solver while reporting the identical `blevel` and
/// witness, and the decomposed run splits into exactly `k` parts.
#[test]
fn structured_union_family_prunes_and_decomposes() {
    let cfg = UnionScsp {
        components: 3,
        vars_per_component: 4,
        domain_size: 3,
        band: 2,
        seed: 7,
    };
    let p = union_weighted(&cfg);

    let reference = BranchAndBound::with_config(VarOrder::Input, blind())
        .solve(&p)
        .unwrap();
    let propagated = BranchAndBound::with_config(
        VarOrder::Input,
        sequential()
            .with_propagation(PropagationMode::Root)
            .with_decompose(false),
    )
    .solve(&p)
    .unwrap();
    assert_eq!(propagated.blevel(), reference.blevel());
    assert_eq!(propagated.best_assignment(), reference.best_assignment());
    assert!(
        nodes(&propagated) < nodes(&reference),
        "expected strictly fewer nodes: {} vs {}",
        nodes(&propagated),
        nodes(&reference)
    );

    let decomposed = BranchAndBound::with_config(VarOrder::Input, sequential())
        .solve(&p)
        .unwrap();
    assert_eq!(decomposed.blevel(), reference.blevel());
    assert_eq!(
        decomposed.stats().map(|s| s.components),
        Some(cfg.components)
    );
    // WeightedInt `×` is strictly monotone, so each component's lex
    // first optimum is unique-per-level and the merged witness is the
    // blind one.
    assert_eq!(decomposed.best_assignment(), reference.best_assignment());
}
