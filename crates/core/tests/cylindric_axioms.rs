//! Property tests of the cylindric-algebra structure (Sec. 2,
//! "a general notion of existential quantifier is introduced by using
//! notions similar to those used in cylindric algebras").
//!
//! These are the axioms the `nmsccp` language's hiding and parameter
//! passing rest on:
//!
//! 1. `c ⊑ ∃x c` (hiding only improves);
//! 2. `∃x (c ⊗ ∃x d) ≡ ∃x c ⊗ ∃x d`;
//! 3. `∃x ∃y c ≡ ∃y ∃x c`;
//! 4. `d_xx ≡ 1̄` and `d_xy ≡ ∃z (d_xz ⊗ d_zy)` for `z ∉ {x, y}`;
//! 5. `∃x (d_xy ⊗ c)` is the substitution `c[x := y]`.

use proptest::prelude::*;
use softsoa_core::{Assignment, Constraint, Domain, Domains, Val, Var};
use softsoa_semiring::{Semiring, WeightedInt};

const DOM: i64 = 2;

fn doms() -> Domains {
    Domains::new()
        .with("x", Domain::ints(0..DOM))
        .with("y", Domain::ints(0..DOM))
        .with("z", Domain::ints(0..DOM))
}

fn x() -> Var {
    Var::new("x")
}

fn y() -> Var {
    Var::new("y")
}

fn z() -> Var {
    Var::new("z")
}

/// A random extensional constraint over a subset of {x, y, z}.
fn constraint_strategy() -> impl Strategy<Value = Constraint<WeightedInt>> {
    let scope_strategy = prop_oneof![
        Just(vec![x()]),
        Just(vec![y()]),
        Just(vec![x(), y()]),
        Just(vec![x(), y(), z()]),
    ];
    scope_strategy.prop_flat_map(|scope| {
        let arity = scope.len() as u32;
        let rows = DOM.pow(arity) as usize;
        proptest::collection::vec(prop_oneof![4 => 0u64..8, 1 => Just(u64::MAX)], rows).prop_map(
            move |levels| {
                let doms = doms();
                let entries: Vec<(Vec<Val>, u64)> =
                    doms.tuples(&scope).unwrap().zip(levels).collect();
                Constraint::table(WeightedInt, &scope, entries, u64::MAX)
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Axiom: hiding only improves — `c ⊑ ∃x c`.
    #[test]
    fn hiding_improves(c in constraint_strategy()) {
        let doms = doms();
        let hidden = c.hide(&x(), &doms).unwrap();
        prop_assert!(c.leq(&hidden, &doms).unwrap());
    }

    /// Axiom: `∃x (c ⊗ ∃x d) ≡ (∃x c) ⊗ (∃x d)`.
    #[test]
    fn hiding_distributes(c in constraint_strategy(), d in constraint_strategy()) {
        let doms = doms();
        let left = c.combine(&d.hide(&x(), &doms).unwrap()).hide(&x(), &doms).unwrap();
        let right = c.hide(&x(), &doms).unwrap().combine(&d.hide(&x(), &doms).unwrap());
        prop_assert!(left.equivalent(&right, &doms).unwrap());
    }

    /// Axiom: hiding commutes — `∃x ∃y c ≡ ∃y ∃x c`.
    #[test]
    fn hiding_commutes(c in constraint_strategy()) {
        let doms = doms();
        let xy = c.hide(&x(), &doms).unwrap().hide(&y(), &doms).unwrap();
        let yx = c.hide(&y(), &doms).unwrap().hide(&x(), &doms).unwrap();
        prop_assert!(xy.equivalent(&yx, &doms).unwrap());
    }

    /// Hiding twice over the same variable is hiding once.
    #[test]
    fn hiding_is_idempotent(c in constraint_strategy()) {
        let doms = doms();
        let once = c.hide(&x(), &doms).unwrap();
        let twice = once.hide(&x(), &doms).unwrap();
        prop_assert!(once.equivalent(&twice, &doms).unwrap());
    }

    /// `∃x (d_xy ⊗ c)` is `c[x := y]`: evaluating it under η equals
    /// evaluating `c` under `η[x := η(y)]` — the parameter-passing
    /// reading the paper uses for procedure calls.
    #[test]
    fn diagonal_substitutes(c in constraint_strategy()) {
        let doms = doms();
        let dxy = Constraint::diagonal(WeightedInt, x(), y());
        let substituted = dxy.combine(&c).hide(&x(), &doms).unwrap();
        for vy in 0..DOM {
            for vz in 0..DOM {
                let eta = Assignment::new().bind("y", vy).bind("z", vz);
                let direct = c.eval(&eta.clone().bind("x", vy));
                prop_assert_eq!(substituted.eval(&eta), direct);
            }
        }
    }
}

/// Axiom: `d_xx ≡ 1̄` (in spirit — our constructor rejects a repeated
/// variable, so the check is that `d_xy` restricted to `x = y` is `1`).
#[test]
fn diagonal_is_reflexive_on_the_diagonal() {
    let dxy = Constraint::diagonal(WeightedInt, x(), y());
    for v in 0..DOM {
        let eta = Assignment::new().bind("x", v).bind("y", v);
        assert_eq!(dxy.eval(&eta), WeightedInt.one());
    }
}

/// Axiom: `d_xy ≡ ∃z (d_xz ⊗ d_zy)` for `z ∉ {x, y}` (diagonal
/// composition — transitivity of parameter passing).
#[test]
fn diagonals_compose_through_a_third_variable() {
    let doms = doms();
    let dxy = Constraint::diagonal(WeightedInt, x(), y());
    let dxz = Constraint::diagonal(WeightedInt, x(), z());
    let dzy = Constraint::diagonal(WeightedInt, z(), y());
    let composed = dxz.combine(&dzy).hide(&z(), &doms).unwrap();
    assert!(composed.equivalent(&dxy, &doms).unwrap());
}
