//! Property tests for the bounds-driven search machinery: mini-bucket
//! completion bounds and warm-started incumbents are pure
//! accelerations — on random weighted, fuzzy and probabilistic
//! problems the bounded and the warm-started branch-and-bound report
//! the **identical** `blevel` and witness as the blind, cold run, and
//! both agree with exhaustive enumeration.
//!
//! The strictness discipline that makes this hold: a subtree is cut
//! only when `partial ⊗ bound(depth)` cannot *strictly* beat the
//! incumbent, and a warm seed only raises the pruning floor — the
//! prefix of the first optimal assignment always evaluates at or
//! above the seed, so it is never cut.

use proptest::prelude::*;
use softsoa_core::generate::{random_fuzzy, random_probabilistic, random_weighted, RandomScsp};
use softsoa_core::solve::{
    BranchAndBound, EnumerationSolver, Parallelism, Solver, SolverConfig, VarOrder,
};
use softsoa_core::Scsp;
use softsoa_semiring::Semiring;

fn sequential() -> SolverConfig {
    SolverConfig::default().with_parallelism(Parallelism::Sequential)
}

/// Blind vs mini-bucket-bounded: same order, same config, the bound
/// being the only difference — `blevel` and witness must match, and
/// (when `×` is exact) the bound must never cut below the enumerated
/// optimum. `check_reference` is off for the probabilistic semiring:
/// its `×` is floating-point multiplication, and the two engines
/// associate the product differently, so enumeration and search can
/// legitimately differ in the last ulp — independent of the bound.
fn assert_bounds_are_pure_acceleration<S: Semiring>(p: &Scsp<S>, check_reference: bool) {
    let blind = BranchAndBound::with_config(VarOrder::Input, sequential())
        .solve(p)
        .unwrap();
    if check_reference {
        let reference = EnumerationSolver::new().solve(p).unwrap();
        assert_eq!(blind.blevel(), reference.blevel());
    }
    for ibound in [1usize, 2, 3] {
        let bounded =
            BranchAndBound::with_config(VarOrder::Input, sequential().with_ibound(Some(ibound)))
                .solve(p)
                .unwrap();
        assert_eq!(bounded.blevel(), blind.blevel(), "ibound {ibound}");
        assert_eq!(
            bounded.best_assignment(),
            blind.best_assignment(),
            "ibound {ibound} changed the witness"
        );
    }
}

/// Cold vs warm-seeded: seeding the incumbent with the cold optimum —
/// the hardest valid seed — must leave `blevel` and witness untouched
/// on both the compiled and the lazy engine.
fn assert_warm_start_is_pure_acceleration<S: Semiring>(p: &Scsp<S>) {
    let cold = BranchAndBound::with_config(VarOrder::Input, sequential())
        .solve(p)
        .unwrap();
    let warm = BranchAndBound::with_config(VarOrder::Input, sequential())
        .solve_seeded(p, cold.blevel().clone())
        .unwrap();
    assert_eq!(warm.blevel(), cold.blevel());
    assert_eq!(warm.best_assignment(), cold.best_assignment());

    let cold_lazy = BranchAndBound::with_config(VarOrder::Input, SolverConfig::reference())
        .solve(p)
        .unwrap();
    let warm_lazy = BranchAndBound::with_config(VarOrder::Input, SolverConfig::reference())
        .solve_seeded(p, cold_lazy.blevel().clone())
        .unwrap();
    assert_eq!(warm_lazy.blevel(), cold_lazy.blevel());
    assert_eq!(warm_lazy.best_assignment(), cold_lazy.best_assignment());
}

fn cfg_strategy() -> impl Strategy<Value = RandomScsp> {
    (3usize..=5, 2usize..=3, 4usize..=9, any::<u64>()).prop_map(
        |(vars, domain_size, constraints, seed)| RandomScsp {
            vars,
            domain_size,
            constraints,
            arity: 2,
            seed,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn bounded_search_matches_blind_on_weighted(cfg in cfg_strategy()) {
        assert_bounds_are_pure_acceleration(&random_weighted(&cfg), true);
    }

    #[test]
    fn bounded_search_matches_blind_on_fuzzy(cfg in cfg_strategy()) {
        assert_bounds_are_pure_acceleration(&random_fuzzy(&cfg), true);
    }

    #[test]
    fn bounded_search_matches_blind_on_probabilistic(cfg in cfg_strategy()) {
        assert_bounds_are_pure_acceleration(&random_probabilistic(&cfg), false);
    }

    #[test]
    fn warm_start_matches_cold_on_weighted(cfg in cfg_strategy()) {
        assert_warm_start_is_pure_acceleration(&random_weighted(&cfg));
    }

    #[test]
    fn warm_start_matches_cold_on_fuzzy(cfg in cfg_strategy()) {
        assert_warm_start_is_pure_acceleration(&random_fuzzy(&cfg));
    }

    #[test]
    fn warm_start_matches_cold_on_probabilistic(cfg in cfg_strategy()) {
        assert_warm_start_is_pure_acceleration(&random_probabilistic(&cfg));
    }

    #[test]
    fn warm_plus_bound_compose_on_weighted(cfg in cfg_strategy()) {
        // The two accelerations stack: seed *and* bound together still
        // reproduce the blind result.
        let p = random_weighted(&cfg);
        let blind = BranchAndBound::with_config(VarOrder::Input, sequential())
            .solve(&p)
            .unwrap();
        let both =
            BranchAndBound::with_config(VarOrder::Input, sequential().with_ibound(Some(2)))
                .solve_seeded(&p, *blind.blevel())
                .unwrap();
        prop_assert_eq!(both.blevel(), blind.blevel());
        prop_assert_eq!(both.best_assignment(), blind.best_assignment());
    }
}
