//! JSON problem formats for the command-line suite.
//!
//! Three document kinds, all `serde`-backed:
//!
//! - [`ProblemSpec`] — an SCSP: semiring, domains, constraints, `con`;
//! - [`NegotiationSpec`] — an `nmsccp` scenario: named constraints and
//!   levels, the agent text, policy and fuel;
//! - [`CoalitionSpec`] — a trust matrix plus formation options.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};
use softsoa_core::{Constraint, Domain, Scsp, Val, Var};
use softsoa_semiring::{Semiring, Unit, Weight};
use softsoa_soa::QosOffer;

/// An error while reading or interpreting a specification.
#[derive(Debug)]
pub enum FormatError {
    /// The document is not valid JSON for the expected schema.
    Json(serde_json::Error),
    /// The document is schema-valid but semantically wrong.
    Invalid(String),
}

impl fmt::Display for FormatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FormatError::Json(e) => write!(f, "malformed document: {e}"),
            FormatError::Invalid(msg) => write!(f, "invalid specification: {msg}"),
        }
    }
}

impl std::error::Error for FormatError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FormatError::Json(e) => Some(e),
            FormatError::Invalid(_) => None,
        }
    }
}

impl From<serde_json::Error> for FormatError {
    fn from(e: serde_json::Error) -> FormatError {
        FormatError::Json(e)
    }
}

fn invalid(msg: impl Into<String>) -> FormatError {
    FormatError::Invalid(msg.into())
}

/// The semiring a document is valued in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum SemiringKind {
    /// `⟨ℝ⁺∪{∞}, min, +, ∞, 0⟩` — additive costs.
    Weighted,
    /// `⟨[0,1], max, min, 0, 1⟩` — fuzzy preference.
    Fuzzy,
    /// `⟨[0,1], max, ·, 0, 1⟩` — probabilities.
    Probabilistic,
    /// `⟨{0,1}, ∨, ∧, 0, 1⟩` — crisp.
    Boolean,
}

/// A variable domain.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum DomainSpec {
    /// An inclusive integer range `[lo, hi]`.
    Ints([i64; 2]),
    /// A stepped integer range `[lo, hi, step]`.
    Stepped([i64; 3]),
    /// Symbolic values.
    Syms(Vec<String>),
}

/// The largest domain a specification may materialise (number of
/// values). Domains are enumerated eagerly, so an unchecked
/// `{"ints": [0, 10000000000]}` would exhaust memory before the solver
/// ever ran.
pub const MAX_DOMAIN_SIZE: i64 = 1 << 20;

impl DomainSpec {
    /// Builds the concrete domain.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::Invalid`] for empty or inverted ranges,
    /// or ranges spanning more than [`MAX_DOMAIN_SIZE`] values.
    pub fn to_domain(&self) -> Result<Domain, FormatError> {
        match self {
            DomainSpec::Ints([lo, hi]) => {
                if lo > hi {
                    return Err(invalid(format!("empty int range [{lo}, {hi}]")));
                }
                check_domain_size(*lo, *hi, 1)?;
                Ok(Domain::ints(*lo..=*hi))
            }
            DomainSpec::Stepped([lo, hi, step]) => {
                if *step <= 0 {
                    return Err(invalid("step must be positive"));
                }
                if lo > hi {
                    return Err(invalid(format!("empty int range [{lo}, {hi}]")));
                }
                check_domain_size(*lo, *hi, *step)?;
                Ok(Domain::ints_stepped(*lo, *hi, *step))
            }
            DomainSpec::Syms(names) => {
                if names.is_empty() {
                    return Err(invalid("empty symbolic domain"));
                }
                Ok(Domain::syms(names))
            }
        }
    }
}

fn check_domain_size(lo: i64, hi: i64, step: i64) -> Result<(), FormatError> {
    let size = hi
        .checked_sub(lo)
        .map(|span| span / step.max(1) + 1)
        .unwrap_or(i64::MAX);
    if size > MAX_DOMAIN_SIZE {
        return Err(invalid(format!(
            "domain [{lo}, {hi}] holds {size} values, more than the {MAX_DOMAIN_SIZE} limit"
        )));
    }
    Ok(())
}

/// A domain value in a table entry.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(untagged)]
pub enum ValSpec {
    /// An integer.
    Int(i64),
    /// A symbol.
    Sym(String),
}

impl ValSpec {
    fn to_val(&self) -> Val {
        match self {
            ValSpec::Int(n) => Val::Int(*n),
            ValSpec::Sym(s) => Val::sym(s),
        }
    }
}

/// A constraint definition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum ConstraintSpec {
    /// An extensional table.
    Table {
        /// Scope variables, fixing entry tuple order.
        scope: Vec<String>,
        /// `(tuple, level)` rows.
        entries: Vec<(Vec<ValSpec>, f64)>,
        /// Level of unlisted tuples (defaults to the semiring zero).
        #[serde(default)]
        default: Option<f64>,
        /// Optional label for reports.
        #[serde(default)]
        label: Option<String>,
    },
    /// The paper's linear policies: `level = slope · var + intercept`.
    Linear {
        /// The single scope variable (must have an integer domain).
        var: String,
        /// Level change per unit.
        slope: f64,
        /// Level at zero.
        intercept: f64,
        /// Optional label for reports.
        #[serde(default)]
        label: Option<String>,
    },
}

impl ConstraintSpec {
    /// Builds the constraint over a concrete semiring, converting raw
    /// `f64` levels through `level`.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::Invalid`] when a level is outside the
    /// semiring carrier or a table row is malformed.
    pub fn to_constraint<S, L>(&self, semiring: S, level: L) -> Result<Constraint<S>, FormatError>
    where
        S: Semiring,
        L: Fn(f64) -> Result<S::Value, FormatError> + Send + Sync + 'static,
    {
        match self {
            ConstraintSpec::Table {
                scope,
                entries,
                default,
                label,
            } => {
                let vars: Vec<Var> = scope.iter().map(Var::new).collect();
                let mut rows = Vec::with_capacity(entries.len());
                for (tuple, raw) in entries {
                    if tuple.len() != vars.len() {
                        return Err(invalid(format!(
                            "table row arity {} does not match scope arity {}",
                            tuple.len(),
                            vars.len()
                        )));
                    }
                    let vals: Vec<Val> = tuple.iter().map(ValSpec::to_val).collect();
                    rows.push((vals, level(*raw)?));
                }
                let default_level = match default {
                    Some(raw) => level(*raw)?,
                    None => semiring.zero(),
                };
                let mut c = Constraint::table(semiring, &vars, rows, default_level);
                if let Some(label) = label {
                    c = c.with_label(label);
                }
                Ok(c)
            }
            ConstraintSpec::Linear {
                var,
                slope,
                intercept,
                label,
            } => {
                let (slope, intercept) = (*slope, *intercept);
                let zero = semiring.zero();
                let c = Constraint::unary(semiring, Var::new(var), move |v| {
                    let Some(x) = v.as_int() else {
                        return zero.clone();
                    };
                    level(slope * x as f64 + intercept).unwrap_or_else(|_| zero.clone())
                });
                Ok(match label {
                    Some(label) => c.with_label(label),
                    None => c,
                })
            }
        }
    }
}

/// An SCSP document for `softsoa solve`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProblemSpec {
    /// The semiring of the problem.
    pub semiring: SemiringKind,
    /// Variable domains.
    pub domains: BTreeMap<String, DomainSpec>,
    /// The constraint set.
    pub constraints: Vec<ConstraintSpec>,
    /// The variables of interest.
    pub con: Vec<String>,
}

impl ProblemSpec {
    /// Parses a document from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::Json`] on malformed input.
    pub fn from_json(text: &str) -> Result<ProblemSpec, FormatError> {
        Ok(serde_json::from_str(text)?)
    }

    /// Builds the problem over a concrete semiring.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::Invalid`] on bad domains or levels.
    pub fn build<S, L>(&self, semiring: S, level: L) -> Result<Scsp<S>, FormatError>
    where
        S: Semiring,
        L: Fn(f64) -> Result<S::Value, FormatError> + Clone + Send + Sync + 'static,
    {
        let mut problem = Scsp::new(semiring.clone());
        for (name, spec) in &self.domains {
            problem.add_domain(Var::new(name), spec.to_domain()?);
        }
        for spec in &self.constraints {
            problem.add_constraint(spec.to_constraint(semiring.clone(), level.clone())?);
        }
        Ok(problem.of_interest(self.con.iter().map(Var::new)))
    }
}

/// Level conversion for the weighted semiring.
///
/// # Errors
///
/// Returns [`FormatError::Invalid`] for NaN or negative levels.
pub fn weight_level(raw: f64) -> Result<Weight, FormatError> {
    Weight::new(raw).map_err(|_| invalid(format!("{raw} is not a valid weight")))
}

/// Level conversion for the `[0, 1]` semirings.
///
/// # Errors
///
/// Returns [`FormatError::Invalid`] for levels outside `[0, 1]`.
pub fn unit_level(raw: f64) -> Result<Unit, FormatError> {
    Unit::new(raw).map_err(|_| invalid(format!("{raw} is not in [0, 1]")))
}

/// Level conversion for the classical semiring (`0.0` or `1.0`).
///
/// # Errors
///
/// Returns [`FormatError::Invalid`] for anything but 0 and 1.
pub fn bool_level(raw: f64) -> Result<bool, FormatError> {
    match raw {
        0.0 => Ok(false),
        1.0 => Ok(true),
        other => Err(invalid(format!("{other} is not a crisp level (0 or 1)"))),
    }
}

/// Scheduling policy for a negotiation run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum PolicySpec {
    /// Left-most enabled transition.
    First,
    /// Fair rotation.
    RoundRobin,
    /// Seeded uniform choice.
    Random(u64),
}

/// An `nmsccp` negotiation document for `softsoa negotiate`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NegotiationSpec {
    /// The semiring of the store.
    pub semiring: SemiringKind,
    /// Variable domains.
    pub domains: BTreeMap<String, DomainSpec>,
    /// Named constraints referenced by the agent text.
    pub constraints: BTreeMap<String, ConstraintSpec>,
    /// Named threshold levels referenced by interval bounds.
    #[serde(default)]
    pub levels: BTreeMap<String, f64>,
    /// The agent, in the textual syntax of `softsoa-nmsccp` (may
    /// include clause declarations). Unused (and may be omitted) when
    /// a [`BrokerSpec`] section is present: the broker builds the
    /// client and provider agents itself.
    #[serde(default)]
    pub agent: String,
    /// The scheduling policy (defaults to `first`).
    #[serde(default = "default_policy")]
    pub policy: PolicySpec,
    /// The step budget (defaults to 10 000).
    #[serde(default = "default_fuel")]
    pub max_steps: usize,
    /// Relaxation ladder for chaos mode: names from `constraints`,
    /// retracted in order when a chaos run deadlocks or leaves its
    /// invariant (ignored outside chaos mode).
    #[serde(default)]
    pub relaxations: Vec<String>,
    /// Dependability invariant for chaos mode, as `[lower, upper]`
    /// threshold levels (the paper's C1–C4 interval; ignored outside
    /// chaos mode).
    #[serde(default)]
    pub invariant: Option<[f64; 2]>,
    /// Optional QoS-broker section. When present, `negotiate` runs the
    /// Sec. 4 five-step broker protocol against the declared providers
    /// (and, under `--chaos-*`, [`softsoa_soa::Broker::negotiate_resilient`])
    /// instead of interpreting `agent`.
    #[serde(default)]
    pub broker: Option<BrokerSpec>,
}

/// The broker section of a [`NegotiationSpec`]: a client request plus
/// the providers to register, turning `softsoa negotiate` into the
/// paper's Fig. 6 protocol.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BrokerSpec {
    /// The capability the client requests (discovery key).
    pub capability: String,
    /// The negotiation variable; must name an entry in `domains`.
    pub variable: String,
    /// The client's policy: the name of an entry in `constraints`.
    pub client: String,
    /// The client's acceptance interval, as `[lower, upper]` raw
    /// levels (Fig. 3 checked transition).
    pub acceptance: [f64; 2],
    /// The providers to publish in the broker's registry.
    pub providers: Vec<ProviderSpec>,
}

/// One provider in a [`BrokerSpec`]: a service with its QoS offers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProviderSpec {
    /// The service identifier.
    pub id: String,
    /// The provider name (defaults to the service id).
    #[serde(default)]
    pub provider: Option<String>,
    /// Concurrent-binding capacity (`negotiate --contend` contention;
    /// omitted means uncapped).
    #[serde(default)]
    pub capacity: Option<u32>,
    /// The service's QoS offers (`softsoa-soa` documents verbatim).
    pub offers: Vec<QosOffer>,
}

fn default_policy() -> PolicySpec {
    PolicySpec::First
}

fn default_fuel() -> usize {
    10_000
}

impl NegotiationSpec {
    /// Parses a document from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::Json`] on malformed input.
    pub fn from_json(text: &str) -> Result<NegotiationSpec, FormatError> {
        Ok(serde_json::from_str(text)?)
    }
}

/// A coalition-formation document for `softsoa coalitions`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoalitionSpec {
    /// The row-major trust matrix (`trust[i][j]` = trust of `i` in
    /// `j`), entries in `[0, 1]`.
    pub trust: Vec<Vec<f64>>,
    /// The `◦` operator: `min`, `max` or `avg`.
    #[serde(default = "default_compose")]
    pub compose: String,
    /// Whether Def. 4 stability is required.
    #[serde(default)]
    pub require_stability: bool,
    /// Optional upper bound on the number of coalitions.
    #[serde(default)]
    pub max_coalitions: Option<usize>,
    /// The algorithm: `exact`, `individual`, `social` or `local`.
    #[serde(default = "default_algorithm")]
    pub algorithm: String,
}

fn default_compose() -> String {
    "avg".into()
}

fn default_algorithm() -> String {
    "exact".into()
}

impl CoalitionSpec {
    /// Parses a document from JSON.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::Json`] on malformed input.
    pub fn from_json(text: &str) -> Result<CoalitionSpec, FormatError> {
        Ok(serde_json::from_str(text)?)
    }

    /// Builds the trust network.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::Invalid`] for ragged, oversized or
    /// out-of-range matrices.
    pub fn network(&self) -> Result<softsoa_coalition::TrustNetwork, FormatError> {
        const MAX_AGENTS: usize = 512;
        let n = self.trust.len();
        if n > MAX_AGENTS {
            return Err(invalid(format!(
                "trust matrix has {n} agents, more than the {MAX_AGENTS} limit"
            )));
        }
        let mut net = softsoa_coalition::TrustNetwork::new(n as u32, Unit::MIN);
        for (i, row) in self.trust.iter().enumerate() {
            if row.len() != n {
                return Err(invalid(format!(
                    "trust matrix row {i} has {} entries, expected {n}",
                    row.len()
                )));
            }
            for (j, raw) in row.iter().enumerate() {
                net.set(i as u32, j as u32, unit_level(*raw)?);
            }
        }
        Ok(net)
    }

    /// Resolves the `◦` operator.
    ///
    /// # Errors
    ///
    /// Returns [`FormatError::Invalid`] for an unknown name.
    pub fn composition(&self) -> Result<softsoa_coalition::TrustComposition, FormatError> {
        match self.compose.as_str() {
            "min" => Ok(softsoa_coalition::TrustComposition::Min),
            "max" => Ok(softsoa_coalition::TrustComposition::Max),
            "avg" | "average" => Ok(softsoa_coalition::TrustComposition::Average),
            other => Err(invalid(format!("unknown composition `{other}`"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use softsoa_semiring::WeightedInt;

    #[test]
    fn problem_roundtrip_and_build() {
        let text = r#"{
            "semiring": "weighted",
            "domains": {"x": {"syms": ["a", "b"]}, "y": {"syms": ["a", "b"]}},
            "constraints": [
                {"table": {"scope": ["x"], "entries": [[["a"], 1.0], [["b"], 9.0]]}},
                {"table": {"scope": ["x", "y"], "entries": [
                    [["a", "a"], 5.0], [["a", "b"], 1.0],
                    [["b", "a"], 2.0], [["b", "b"], 2.0]]}},
                {"table": {"scope": ["y"], "entries": [[["a"], 5.0], [["b"], 5.0]]}}
            ],
            "con": ["x"]
        }"#;
        let spec = ProblemSpec::from_json(text).unwrap();
        assert_eq!(spec.semiring, SemiringKind::Weighted);
        let p = spec
            .build(softsoa_semiring::Weighted, weight_level)
            .unwrap();
        assert_eq!(p.blevel().unwrap(), Weight::new(7.0).unwrap());
    }

    #[test]
    fn linear_constraints_build() {
        let spec = ConstraintSpec::Linear {
            var: "x".into(),
            slope: 2.0,
            intercept: 3.0,
            label: Some("c".into()),
        };
        let c = spec
            .to_constraint(softsoa_semiring::Weighted, weight_level)
            .unwrap();
        let eta = softsoa_core::Assignment::new().bind("x", 4);
        assert_eq!(c.eval(&eta), Weight::new(11.0).unwrap());
        assert_eq!(c.label(), Some("c"));
    }

    #[test]
    fn bad_levels_are_rejected() {
        assert!(weight_level(-1.0).is_err());
        assert!(unit_level(1.5).is_err());
        assert!(bool_level(0.5).is_err());
        assert!(bool_level(1.0).unwrap());
    }

    #[test]
    fn arity_mismatch_is_reported() {
        let spec = ConstraintSpec::Table {
            scope: vec!["x".into(), "y".into()],
            entries: vec![(vec![ValSpec::Int(0)], 1.0)],
            default: None,
            label: None,
        };
        let err = spec
            .to_constraint(WeightedInt, |v| Ok(v as u64))
            .unwrap_err();
        assert!(err.to_string().contains("arity"));
    }

    #[test]
    fn domain_specs() {
        assert_eq!(DomainSpec::Ints([0, 3]).to_domain().unwrap().len(), 4);
        assert_eq!(
            DomainSpec::Stepped([0, 10, 5]).to_domain().unwrap().len(),
            3
        );
        assert!(DomainSpec::Ints([3, 0]).to_domain().is_err());
        assert!(DomainSpec::Syms(vec![]).to_domain().is_err());
        assert!(DomainSpec::Stepped([0, 10, 0]).to_domain().is_err());
    }

    #[test]
    fn oversized_domains_are_rejected_before_materialising() {
        // A naive `Domain::ints` here would try to allocate 2^40
        // values; the cap turns that into a format error.
        assert!(DomainSpec::Ints([0, 1 << 40]).to_domain().is_err());
        // Overflowing spans (full i64 range) must not wrap around.
        assert!(DomainSpec::Ints([i64::MIN, i64::MAX]).to_domain().is_err());
        assert!(DomainSpec::Stepped([0, i64::MAX, 2]).to_domain().is_err());
        // Stepping can bring an otherwise oversized range under the cap.
        assert!(DomainSpec::Stepped([0, 1 << 24, 1 << 10])
            .to_domain()
            .is_ok());
        assert!(DomainSpec::Ints([0, MAX_DOMAIN_SIZE - 1])
            .to_domain()
            .is_ok());
    }

    #[test]
    fn oversized_trust_matrices_are_rejected() {
        let n = 600;
        let spec = CoalitionSpec {
            trust: vec![vec![0.5; n]; n],
            compose: "avg".into(),
            require_stability: false,
            max_coalitions: None,
            algorithm: "local".into(),
        };
        assert!(spec.network().is_err());
    }

    #[test]
    fn broker_section_roundtrips() {
        let text = r#"{
            "semiring": "weighted",
            "domains": {"x": {"ints": [0, 10]}},
            "constraints": {"c4": {"linear": {"var": "x", "slope": 1.0, "intercept": 1.0}}},
            "broker": {
                "capability": "compute",
                "variable": "x",
                "client": "c4",
                "acceptance": [6.0, 1.0],
                "providers": [{"id": "svc", "offers": []}]
            }
        }"#;
        let spec = NegotiationSpec::from_json(text).unwrap();
        let broker = spec.broker.as_ref().unwrap();
        assert_eq!(broker.capability, "compute");
        assert_eq!(broker.providers.len(), 1);
        assert!(broker.providers[0].provider.is_none());
        // `agent` may be omitted in broker documents.
        assert!(spec.agent.is_empty());
    }

    #[test]
    fn coalition_spec_builds_network() {
        let text = r#"{
            "trust": [[1.0, 0.5], [0.25, 1.0]],
            "compose": "min",
            "algorithm": "exact"
        }"#;
        let spec = CoalitionSpec::from_json(text).unwrap();
        let net = spec.network().unwrap();
        assert_eq!(net.len(), 2);
        assert_eq!(net.get(0, 1), Unit::new(0.5).unwrap());
        assert!(matches!(
            spec.composition().unwrap(),
            softsoa_coalition::TrustComposition::Min
        ));
    }

    #[test]
    fn ragged_matrix_is_rejected() {
        let spec = CoalitionSpec {
            trust: vec![vec![1.0, 0.5], vec![0.25]],
            compose: "min".into(),
            require_stability: false,
            max_coalitions: None,
            algorithm: "exact".into(),
        };
        assert!(spec.network().is_err());
    }
}
