//! The command implementations, as pure functions from specification
//! text to report text (the binary in `main.rs` is a thin shell).

use std::fmt::Write as _;
use std::io::{Read as _, Write as _};
use std::net::ToSocketAddrs;
use std::sync::Arc;
use std::time::Duration;

use softsoa_coalition::{
    exact_formation_instrumented, individually_oriented, local_search, scsp_formation_with,
    socially_oriented, FormationConfig, MAX_EXACT_AGENTS,
};
use softsoa_core::solve::{
    BranchAndBound, BucketElimination, EliminationOrder, Engine, EnumerationSolver, Parallelism,
    PropagationMode, Solver, SolverConfig, VarOrder,
};
use softsoa_core::{Constraint, Domain, Domains, Scsp, Var};
use softsoa_dependability::{check_refinement, photo};
use softsoa_nmsccp::{
    parse_program, FaultPalette, FaultPlan, Interpreter, Interval, ParseEnv, Policy,
    RecoveryPolicy, ResilientInterpreter, Store,
};
use softsoa_semiring::{Boolean, Fuzzy, Probabilistic, Semiring, Weighted};
use softsoa_soa::server::loadgen::{self, ContentionConfig, LoadConfig};
use softsoa_soa::server::protocol::WireSemiring;
use softsoa_soa::server::transport::TransportChaos;
use softsoa_soa::{
    Broker, ChaosConfig, ContendedRequest, ContentionOutcome, Fairness, NegotiationRequest,
    NegotiationServer, QosDocument, QosOffer, Registry, ServerConfig, ServiceDescription,
    StoreChaos,
};
use softsoa_telemetry::{MemorySink, Telemetry};

use crate::format::{
    bool_level, unit_level, weight_level, BrokerSpec, CoalitionSpec, FormatError, NegotiationSpec,
    PolicySpec, ProblemSpec, SemiringKind,
};

/// An error from a command.
#[derive(Debug)]
pub enum CommandError {
    /// The specification was malformed or invalid.
    Format(FormatError),
    /// An unknown option value was supplied.
    Usage(String),
    /// The underlying engine failed.
    Engine(String),
}

impl std::fmt::Display for CommandError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommandError::Format(e) => write!(f, "{e}"),
            CommandError::Usage(msg) => write!(f, "usage error: {msg}"),
            CommandError::Engine(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for CommandError {}

impl From<FormatError> for CommandError {
    fn from(e: FormatError) -> CommandError {
        CommandError::Format(e)
    }
}

/// The solver to use for `solve`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverChoice {
    /// Exhaustive reference solver.
    #[default]
    Enumeration,
    /// Branch-and-bound (totally ordered semirings).
    BranchAndBound,
    /// Bucket elimination.
    Bucket,
}

impl SolverChoice {
    /// Parses a `--solver` value.
    ///
    /// # Errors
    ///
    /// Returns [`CommandError::Usage`] for unknown names.
    pub fn parse(name: &str) -> Result<SolverChoice, CommandError> {
        match name {
            "enum" | "enumeration" => Ok(SolverChoice::Enumeration),
            "bnb" | "branch-and-bound" => Ok(SolverChoice::BranchAndBound),
            "bucket" | "elimination" => Ok(SolverChoice::Bucket),
            other => Err(CommandError::Usage(format!("unknown solver `{other}`"))),
        }
    }

    /// The label this solver carries in telemetry snapshots.
    pub fn label(self) -> &'static str {
        match self {
            SolverChoice::Enumeration => "enumeration",
            SolverChoice::BranchAndBound => "branch-and-bound",
            SolverChoice::Bucket => "bucket",
        }
    }
}

/// Output format for the `--metrics` flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MetricsFormat {
    /// The deterministic one-line JSON snapshot (no wall-clock data),
    /// appended as the report's final line.
    #[default]
    Json,
    /// A human-readable table, including wall-clock timings.
    Pretty,
}

impl MetricsFormat {
    /// Parses a `--metrics=<format>` value.
    ///
    /// # Errors
    ///
    /// Returns [`CommandError::Usage`] for unknown names.
    pub fn parse(name: &str) -> Result<MetricsFormat, CommandError> {
        match name {
            "json" => Ok(MetricsFormat::Json),
            "pretty" => Ok(MetricsFormat::Pretty),
            other => Err(CommandError::Usage(format!(
                "unknown metrics format `{other}` (expected `json` or `pretty`)"
            ))),
        }
    }
}

/// A telemetry handle paired with the sink it records into; disabled
/// (and free) when `--metrics` was not requested.
fn metrics_recorder(
    format: Option<MetricsFormat>,
) -> (Telemetry, Option<(Arc<MemorySink>, MetricsFormat)>) {
    match format {
        None => (Telemetry::disabled(), None),
        Some(format) => {
            let (telemetry, sink) = Telemetry::recording();
            (telemetry, Some((sink, format)))
        }
    }
}

/// Appends the recorded snapshot to a report: JSON as one final line
/// (so scripts can `tail -n 1`), pretty as a trailing block.
fn append_metrics(out: &mut String, recorder: Option<(Arc<MemorySink>, MetricsFormat)>) {
    if let Some((sink, format)) = recorder {
        let snapshot = sink.snapshot();
        match format {
            MetricsFormat::Json => {
                let _ = writeln!(out, "{}", snapshot.to_json());
            }
            MetricsFormat::Pretty => out.push_str(&snapshot.render_pretty()),
        }
    }
}

/// Preprocessing knobs shared by `solve`, `negotiate` and
/// `coalitions` (`--propagate`, `--decompose`, `--no-decompose`).
///
/// `None` keeps the [`SolverConfig`] default (root propagation,
/// decomposition on); the flags exist to force a mode or switch the
/// machinery off for comparison runs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineOptions {
    /// Soft arc-consistency mode (`--propagate=off|root|full`).
    pub propagate: Option<PropagationMode>,
    /// Solve independent constraint-graph components separately
    /// (`--decompose` / `--no-decompose`).
    pub decompose: Option<bool>,
    /// Exact engine per component (`--engine auto|bnb|treedec`).
    pub engine: Option<Engine>,
    /// Separator-width cap for the tree engine (`--width-cap`).
    pub width_cap: Option<usize>,
    /// Route broker binding solves through the persistent incremental
    /// re-solve engine (`--incremental`); work avoided is reported on
    /// the `solver.incremental.*` telemetry family. `solve` and
    /// `coalitions` runs (one-shot problems) ignore it.
    pub incremental: bool,
}

impl EngineOptions {
    /// Applies the requested overrides to a base configuration.
    #[must_use]
    pub fn apply(&self, mut config: SolverConfig) -> SolverConfig {
        if let Some(mode) = self.propagate {
            config = config.with_propagation(mode);
        }
        if let Some(decompose) = self.decompose {
            config = config.with_decompose(decompose);
        }
        if let Some(engine) = self.engine {
            config = config.with_engine(engine);
        }
        if let Some(cap) = self.width_cap {
            config = config.with_width_cap(cap);
        }
        config
    }
}

/// Parses an `--engine` value into an [`Engine`].
///
/// # Errors
///
/// Returns the list of accepted names for anything else.
pub fn parse_engine(name: &str) -> Result<Engine, String> {
    match name {
        "bnb" | "branch-and-bound" => Ok(Engine::BranchBound),
        "auto" => Ok(Engine::Auto),
        "treedec" | "tree" => Ok(Engine::TreeDecompose),
        other => Err(format!(
            "unknown engine `{other}` (expected auto, bnb or treedec)"
        )),
    }
}

/// Parses a `--propagate` value into a [`PropagationMode`].
///
/// # Errors
///
/// Returns the list of accepted names for anything else.
pub fn parse_propagation(name: &str) -> Result<PropagationMode, String> {
    match name {
        "off" => Ok(PropagationMode::Off),
        "root" => Ok(PropagationMode::Root),
        "full" => Ok(PropagationMode::Full),
        other => Err(format!(
            "unknown propagation mode `{other}` (expected off, root or full)"
        )),
    }
}

/// Engine options shared by every `solve` invocation.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolveOptions {
    /// Worker threads (`--jobs`); `None` picks the host parallelism.
    pub jobs: Option<usize>,
    /// Use the lazy reference evaluator instead of the compiled one
    /// (`--lazy`).
    pub lazy: bool,
    /// Append the engine statistics to the report (`--stats`).
    pub stats: bool,
    /// Append a telemetry snapshot to the report (`--metrics`).
    pub metrics: Option<MetricsFormat>,
    /// Variable order for branch-and-bound (`--order`); `None` keeps
    /// the default most-constrained-first heuristic.
    pub order: Option<VarOrder>,
    /// Mini-bucket joint-scope cap (`--ibound`): precompute per-depth
    /// admissible completion bounds and prune against them.
    pub ibound: Option<usize>,
    /// Seed the branch-and-bound incumbent from a greedy probe of the
    /// first full assignment (`--warm-start`).
    pub warm_start: bool,
    /// Propagation and decomposition overrides (`--propagate`,
    /// `--decompose`, `--no-decompose`).
    pub engine: EngineOptions,
}

impl SolveOptions {
    fn config(&self) -> SolverConfig {
        let parallelism = match self.jobs {
            Some(n) => Parallelism::Threads(n.max(1)),
            None => Parallelism::Auto,
        };
        self.engine.apply(
            SolverConfig::default()
                .with_parallelism(parallelism)
                .with_compiled(!self.lazy)
                .with_ibound(self.ibound),
        )
    }
}

/// Parses a `--order` value into a [`VarOrder`].
///
/// # Errors
///
/// Returns the list of accepted names for anything else.
pub fn parse_var_order(name: &str) -> Result<VarOrder, String> {
    match name {
        "input" => Ok(VarOrder::Input),
        "smallest" | "smallest-domain" => Ok(VarOrder::SmallestDomain),
        "most-constrained" => Ok(VarOrder::MostConstrained),
        "dynamic" => Ok(VarOrder::Dynamic),
        "estimate" => Ok(VarOrder::Estimate),
        other => Err(format!(
            "unknown variable order `{other}` (expected input, smallest, most-constrained, dynamic or estimate)"
        )),
    }
}

/// An achievable seed level for `--warm-start`: the combined level of
/// the lexicographically first complete assignment. Any complete
/// assignment's level is a sound incumbent seed (the search only cuts
/// branches strictly below it), and this one costs a single sweep over
/// the constraints.
fn greedy_probe_level<S: Semiring>(problem: &Scsp<S>) -> Option<S::Value> {
    let semiring = problem.semiring().clone();
    let mut eta = softsoa_core::Assignment::new();
    for v in problem.problem_vars() {
        let first = problem.domains().get(&v).ok()?.values().first()?.clone();
        eta = eta.bind(v, first);
    }
    let mut level = semiring.one();
    for c in problem.constraints() {
        level = semiring.times(&level, &c.eval(&eta));
    }
    Some(level)
}

fn solve_generic<S: Semiring>(
    problem: &Scsp<S>,
    solver: SolverChoice,
    options: SolveOptions,
    fmt_level: impl Fn(&S::Value) -> String,
) -> Result<String, CommandError> {
    let config = options.config();
    let solution = match solver {
        SolverChoice::Enumeration => EnumerationSolver::with_config(config).solve(problem),
        SolverChoice::BranchAndBound => {
            let order = options.order.unwrap_or(VarOrder::MostConstrained);
            let bnb = BranchAndBound::with_config(order, config);
            match options
                .warm_start
                .then(|| greedy_probe_level(problem))
                .flatten()
            {
                Some(seed) => bnb.solve_seeded(problem, seed),
                None => bnb.solve(problem),
            }
        }
        SolverChoice::Bucket => {
            BucketElimination::with_config(EliminationOrder::default(), config).solve(problem)
        }
    }
    .map_err(|e| CommandError::Engine(e.to_string()))?;
    let (telemetry, recorder) = metrics_recorder(options.metrics);
    if let Some(stats) = solution.stats() {
        stats.emit(&telemetry, solver.label());
    }

    let mut out = String::new();
    let _ = writeln!(out, "blevel: {}", fmt_level(solution.blevel()));
    if solution.best().is_empty() {
        let _ = writeln!(out, "no solution above the semiring zero");
    }
    for (eta, level) in solution.best() {
        let _ = writeln!(out, "best: {eta} at {}", fmt_level(level));
    }
    if let Some(table) = solution.solution_constraint() {
        let _ = writeln!(out, "solution table over {:?}:", table.scope());
        let doms = problem.domains();
        if let Ok(tuples) = doms.tuples(table.scope()) {
            for tuple in tuples {
                let level = table.eval_tuple(&tuple);
                let row: Vec<String> = tuple.iter().map(ToString::to_string).collect();
                let _ = writeln!(out, "  ⟨{}⟩ → {}", row.join(", "), fmt_level(&level));
            }
        }
    }
    if options.stats {
        if let Some(stats) = solution.stats() {
            let _ = writeln!(out, "engine: {stats}");
        }
    }
    append_metrics(&mut out, recorder);
    Ok(out)
}

/// `softsoa solve`: parse an SCSP document and solve it.
///
/// # Errors
///
/// Returns [`CommandError`] for malformed documents, bad levels or
/// solver failures.
pub fn solve(text: &str, solver: SolverChoice) -> Result<String, CommandError> {
    solve_with(text, solver, SolveOptions::default())
}

/// [`solve`] with explicit engine options (thread count, lazy
/// evaluation, statistics).
///
/// # Errors
///
/// Returns [`CommandError`] for malformed documents, bad levels or
/// solver failures.
pub fn solve_with(
    text: &str,
    solver: SolverChoice,
    options: SolveOptions,
) -> Result<String, CommandError> {
    let spec = ProblemSpec::from_json(text)?;
    match spec.semiring {
        SemiringKind::Weighted => {
            let p = spec.build(Weighted, weight_level)?;
            solve_generic(&p, solver, options, ToString::to_string)
        }
        SemiringKind::Fuzzy => {
            let p = spec.build(Fuzzy, unit_level)?;
            solve_generic(&p, solver, options, ToString::to_string)
        }
        SemiringKind::Probabilistic => {
            let p = spec.build(Probabilistic, unit_level)?;
            solve_generic(&p, solver, options, ToString::to_string)
        }
        SemiringKind::Boolean => {
            let p = spec.build(Boolean, bool_level)?;
            solve_generic(&p, solver, options, ToString::to_string)
        }
    }
}

fn negotiate_generic<S, L>(
    spec: &NegotiationSpec,
    semiring: S,
    level: L,
    fmt_level: impl Fn(&S::Value) -> String,
    metrics: Option<MetricsFormat>,
) -> Result<String, CommandError>
where
    S: softsoa_semiring::Residuated,
    L: Fn(f64) -> Result<S::Value, FormatError> + Clone + Send + Sync + 'static,
{
    let mut env = ParseEnv::new(semiring.clone());
    for (name, cspec) in &spec.constraints {
        env = env.with_constraint(name, cspec.to_constraint(semiring.clone(), level.clone())?);
    }
    for (name, raw) in &spec.levels {
        env = env.with_level(name, level(*raw)?);
    }
    let (program, agent) = parse_program(&spec.agent, &env)
        .map_err(|e| CommandError::Engine(format!("agent syntax: {e}")))?;

    let mut domains = Domains::new();
    for (name, dspec) in &spec.domains {
        domains.insert(Var::new(name), dspec.to_domain()?);
    }
    let policy = match spec.policy {
        PolicySpec::First => Policy::First,
        PolicySpec::RoundRobin => Policy::RoundRobin,
        PolicySpec::Random(seed) => Policy::Random(seed),
    };
    let (telemetry, recorder) = metrics_recorder(metrics);
    let report = Interpreter::new(program)
        .with_policy(policy)
        .with_max_steps(spec.max_steps)
        .with_telemetry(telemetry)
        .run(agent, Store::empty(semiring, domains))
        .map_err(|e| CommandError::Engine(e.to_string()))?;

    let mut out = String::new();
    for entry in &report.trace {
        let _ = writeln!(
            out,
            "step {:3}  {:12} {:24} σ⇓∅ = {}",
            entry.step,
            entry.rule.to_string(),
            entry.note,
            fmt_level(&entry.consistency)
        );
    }
    let level = report
        .final_consistency()
        .map_err(|e| CommandError::Engine(e.to_string()))?;
    let _ = writeln!(
        out,
        "outcome: {} at σ⇓∅ = {}",
        report.outcome,
        fmt_level(&level)
    );
    append_metrics(&mut out, recorder);
    Ok(out)
}

/// `softsoa negotiate`: run an `nmsccp` scenario and report the trace
/// and outcome. Documents with a `broker` section run the Sec. 4
/// broker protocol instead.
///
/// # Errors
///
/// Returns [`CommandError`] for malformed documents, agent syntax
/// errors or engine failures.
pub fn negotiate(text: &str) -> Result<String, CommandError> {
    negotiate_with(text, None)
}

/// [`negotiate`] with an optional telemetry snapshot appended
/// (`--metrics`).
///
/// # Errors
///
/// Returns [`CommandError`] for malformed documents, agent syntax
/// errors or engine failures.
pub fn negotiate_with(text: &str, metrics: Option<MetricsFormat>) -> Result<String, CommandError> {
    negotiate_with_options(text, metrics, EngineOptions::default())
}

/// [`negotiate_with`] with explicit propagation and decomposition
/// overrides for the broker's binding solver (`--propagate`,
/// `--decompose`, `--no-decompose`). Store-based (`nmsccp`) scenarios
/// ignore the overrides: their consistency checks are projections, not
/// branch-and-bound searches.
///
/// # Errors
///
/// Returns [`CommandError`] for malformed documents, agent syntax
/// errors or engine failures.
pub fn negotiate_with_options(
    text: &str,
    metrics: Option<MetricsFormat>,
    engine: EngineOptions,
) -> Result<String, CommandError> {
    let spec = NegotiationSpec::from_json(text)?;
    match spec.semiring {
        SemiringKind::Weighted => match spec.broker.clone() {
            Some(broker) => broker_generic(
                &spec,
                &broker,
                None,
                Weighted,
                weight_level,
                QosOffer::to_weighted,
                ToString::to_string,
                metrics,
                engine,
            ),
            None => negotiate_generic(&spec, Weighted, weight_level, ToString::to_string, metrics),
        },
        SemiringKind::Fuzzy => match spec.broker.clone() {
            Some(broker) => broker_generic(
                &spec,
                &broker,
                None,
                Fuzzy,
                unit_level,
                QosOffer::to_fuzzy,
                ToString::to_string,
                metrics,
                engine,
            ),
            None => negotiate_generic(&spec, Fuzzy, unit_level, ToString::to_string, metrics),
        },
        SemiringKind::Probabilistic => match spec.broker.clone() {
            Some(broker) => broker_generic(
                &spec,
                &broker,
                None,
                Probabilistic,
                unit_level,
                QosOffer::to_probabilistic,
                ToString::to_string,
                metrics,
                engine,
            ),
            None => negotiate_generic(
                &spec,
                Probabilistic,
                unit_level,
                ToString::to_string,
                metrics,
            ),
        },
        SemiringKind::Boolean => match spec.broker.clone() {
            Some(broker) => broker_generic(
                &spec,
                &broker,
                None,
                Boolean,
                bool_level,
                QosOffer::to_crisp,
                ToString::to_string,
                metrics,
                engine,
            ),
            None => negotiate_generic(&spec, Boolean, bool_level, ToString::to_string, metrics),
        },
    }
}

/// Chaos-mode options for `negotiate` (`--chaos-*` flags).
#[derive(Debug, Clone, Copy)]
pub struct ChaosOptions {
    /// RNG seed for the fault plan (`--chaos-seed`); equal seeds give
    /// bit-identical runs.
    pub seed: u64,
    /// Per-step fault probability (`--chaos-rate`).
    pub rate: f64,
    /// Steps covered by the fault plan (`--chaos-horizon`).
    pub horizon: usize,
    /// Retry budget for blocked configurations (`--chaos-retries`).
    pub retries: usize,
    /// Idle steps before each retry (`--chaos-deadline`).
    pub deadline: usize,
    /// Base of the exponential retry backoff (`--chaos-backoff`).
    pub backoff: usize,
    /// Append a telemetry snapshot to the report (`--metrics`).
    pub metrics: Option<MetricsFormat>,
    /// Propagation and decomposition overrides for broker binding
    /// solves (`--propagate`, `--decompose`, `--no-decompose`).
    pub engine: EngineOptions,
}

impl Default for ChaosOptions {
    fn default() -> ChaosOptions {
        ChaosOptions {
            seed: 0,
            rate: 0.1,
            horizon: 16,
            retries: 3,
            deadline: 4,
            backoff: 2,
            metrics: None,
            engine: EngineOptions::default(),
        }
    }
}

fn negotiate_chaos_generic<S, L>(
    spec: &NegotiationSpec,
    options: ChaosOptions,
    semiring: S,
    level: L,
    fmt_level: impl Fn(&S::Value) -> String,
) -> Result<String, CommandError>
where
    S: softsoa_semiring::Residuated,
    L: Fn(f64) -> Result<S::Value, FormatError> + Clone + Send + Sync + 'static,
{
    let mut env = ParseEnv::new(semiring.clone());
    let mut named = std::collections::BTreeMap::new();
    for (name, cspec) in &spec.constraints {
        let mut c = cspec.to_constraint(semiring.clone(), level.clone())?;
        if c.label().is_none() {
            // Fault and recovery trace notes name constraints by label.
            c = c.with_label(name.clone());
        }
        env = env.with_constraint(name, c.clone());
        named.insert(name.clone(), c);
    }
    for (name, raw) in &spec.levels {
        env = env.with_level(name, level(*raw)?);
    }
    let (program, agent) = parse_program(&spec.agent, &env)
        .map_err(|e| CommandError::Engine(format!("agent syntax: {e}")))?;
    let mut domains = Domains::new();
    for (name, dspec) in &spec.domains {
        domains.insert(Var::new(name), dspec.to_domain()?);
    }

    // Faults draw from the scenario's own vocabulary: any named
    // constraint may be forcibly retracted, and chosen transitions may
    // be dropped.
    let palette = FaultPalette {
        retractions: named.values().cloned().collect(),
        drop_transitions: true,
        ..FaultPalette::default()
    };
    let plan = FaultPlan::seeded(options.seed, options.horizon, options.rate, &palette);

    let relaxations = spec
        .relaxations
        .iter()
        .map(|name| {
            named.get(name).cloned().ok_or_else(|| {
                CommandError::Usage(format!("relaxation `{name}` names no constraint"))
            })
        })
        .collect::<Result<Vec<_>, _>>()?;
    let invariant = spec
        .invariant
        .map(|[lo, hi]| Ok::<_, FormatError>(Interval::levels(level(lo)?, level(hi)?)))
        .transpose()?;
    let recovery = RecoveryPolicy {
        guard_deadline: options.deadline,
        max_retries: options.retries,
        backoff_base: options.backoff,
        relaxations,
        invariant,
        deadline: None,
    };

    let policy = match spec.policy {
        PolicySpec::First => Policy::First,
        PolicySpec::RoundRobin => Policy::RoundRobin,
        PolicySpec::Random(seed) => Policy::Random(seed),
    };
    let (telemetry, recorder) = metrics_recorder(options.metrics);
    let report = ResilientInterpreter::new(program)
        .with_plan(plan)
        .with_recovery(recovery)
        .with_policy(policy)
        .with_max_steps(spec.max_steps)
        .with_telemetry(telemetry)
        .run(agent, Store::empty(semiring, domains))
        .map_err(|e| CommandError::Engine(e.to_string()))?;

    let mut out = String::new();
    for entry in &report.report.trace {
        let _ = writeln!(
            out,
            "step {:3}  {:8} {:12} {:40} σ⇓∅ = {}",
            entry.step,
            entry.origin.to_string(),
            entry.rule.to_string(),
            entry.note,
            fmt_level(&entry.consistency)
        );
    }
    let _ = writeln!(
        out,
        "faults: {} injected, {} transitions dropped",
        report.faults_injected, report.dropped_transitions
    );
    let _ = writeln!(
        out,
        "recovery: {} retries, {} rollbacks, {} relaxations, {} interval violations",
        report.retries, report.rollbacks, report.relaxations_applied, report.invariant_violations
    );
    let _ = writeln!(
        out,
        "outcome: {} at σ⇓∅ = {}",
        report.report.outcome,
        fmt_level(&report.final_consistency)
    );
    append_metrics(&mut out, recorder);
    Ok(out)
}

/// `softsoa negotiate --chaos-*`: run an `nmsccp` scenario under
/// deterministic fault injection with retry, rollback and relaxation
/// recovery. Same seed, same report, bit for bit. Documents with a
/// `broker` section negotiate resiliently against every declared
/// provider instead.
///
/// # Errors
///
/// Returns [`CommandError`] for malformed documents, unknown
/// relaxation names, agent syntax errors or engine failures.
pub fn negotiate_chaos(text: &str, options: ChaosOptions) -> Result<String, CommandError> {
    let spec = NegotiationSpec::from_json(text)?;
    match spec.semiring {
        SemiringKind::Weighted => match spec.broker.clone() {
            Some(broker) => broker_generic(
                &spec,
                &broker,
                Some(options),
                Weighted,
                weight_level,
                QosOffer::to_weighted,
                ToString::to_string,
                options.metrics,
                options.engine,
            ),
            None => {
                negotiate_chaos_generic(&spec, options, Weighted, weight_level, ToString::to_string)
            }
        },
        SemiringKind::Fuzzy => match spec.broker.clone() {
            Some(broker) => broker_generic(
                &spec,
                &broker,
                Some(options),
                Fuzzy,
                unit_level,
                QosOffer::to_fuzzy,
                ToString::to_string,
                options.metrics,
                options.engine,
            ),
            None => negotiate_chaos_generic(&spec, options, Fuzzy, unit_level, ToString::to_string),
        },
        SemiringKind::Probabilistic => match spec.broker.clone() {
            Some(broker) => broker_generic(
                &spec,
                &broker,
                Some(options),
                Probabilistic,
                unit_level,
                QosOffer::to_probabilistic,
                ToString::to_string,
                options.metrics,
                options.engine,
            ),
            None => negotiate_chaos_generic(
                &spec,
                options,
                Probabilistic,
                unit_level,
                ToString::to_string,
            ),
        },
        SemiringKind::Boolean => match spec.broker.clone() {
            Some(broker) => broker_generic(
                &spec,
                &broker,
                Some(options),
                Boolean,
                bool_level,
                QosOffer::to_crisp,
                ToString::to_string,
                options.metrics,
                options.engine,
            ),
            None => {
                negotiate_chaos_generic(&spec, options, Boolean, bool_level, ToString::to_string)
            }
        },
    }
}

/// Publishes a broker section's declared providers into a fresh
/// registry, carrying any declared concurrent-binding capacities.
fn broker_registry(broker_spec: &BrokerSpec) -> Registry {
    let mut registry = Registry::new();
    for provider in &broker_spec.providers {
        let mut doc = QosDocument::new(&provider.id);
        for offer in &provider.offers {
            doc = doc.with_offer(offer.clone());
        }
        let mut description = ServiceDescription::new(
            provider.id.as_str(),
            provider.provider.as_deref().unwrap_or(&provider.id),
            broker_spec.capability.as_str(),
            doc,
        );
        if let Some(slots) = provider.capacity {
            description = description.with_capacity(slots);
        }
        registry.publish(description);
    }
    registry
}

/// Builds the client-side negotiation request a broker section
/// describes (variable domain, policy constraint, acceptance band).
fn broker_request<S, L>(
    spec: &NegotiationSpec,
    broker_spec: &BrokerSpec,
    semiring: &S,
    level: &L,
) -> Result<NegotiationRequest<S>, CommandError>
where
    S: softsoa_semiring::Residuated,
    L: Fn(f64) -> Result<S::Value, FormatError> + Clone + Send + Sync + 'static,
{
    let domain = spec
        .domains
        .get(&broker_spec.variable)
        .ok_or_else(|| {
            CommandError::Usage(format!(
                "broker variable `{}` has no domain",
                broker_spec.variable
            ))
        })?
        .to_domain()?;
    let client = spec
        .constraints
        .get(&broker_spec.client)
        .ok_or_else(|| {
            CommandError::Usage(format!(
                "broker client policy `{}` names no constraint",
                broker_spec.client
            ))
        })?
        .to_constraint(semiring.clone(), level.clone())?;
    let [lo, hi] = broker_spec.acceptance;
    Ok(NegotiationRequest {
        capability: broker_spec.capability.clone(),
        variable: Var::new(&broker_spec.variable),
        domain,
        constraint: client,
        acceptance: Interval::levels(level(lo)?, level(hi)?),
    })
}

/// Runs the broker section of a negotiation document: publishes the
/// declared providers, builds the client request and negotiates —
/// plainly, or resiliently under `--chaos-*` options.
#[allow(clippy::too_many_arguments)]
fn broker_generic<S, L, F>(
    spec: &NegotiationSpec,
    broker_spec: &BrokerSpec,
    chaos: Option<ChaosOptions>,
    semiring: S,
    level: L,
    translate: F,
    fmt_level: impl Fn(&S::Value) -> String,
    metrics: Option<MetricsFormat>,
    engine: EngineOptions,
) -> Result<String, CommandError>
where
    S: softsoa_semiring::Residuated,
    L: Fn(f64) -> Result<S::Value, FormatError> + Clone + Send + Sync + 'static,
    F: Fn(&QosOffer) -> Constraint<S>,
{
    let registry = broker_registry(broker_spec);
    let request = broker_request(spec, broker_spec, &semiring, &level)?;

    let (telemetry, recorder) = metrics_recorder(metrics);
    let broker = Broker::new(semiring.clone(), registry)
        .with_telemetry(telemetry)
        .with_incremental(engine.incremental)
        .with_solver_config(
            engine.apply(SolverConfig::default().with_parallelism(Parallelism::Sequential)),
        );
    let mut out = String::new();
    match chaos {
        None => {
            let sla = broker
                .negotiate(&request, &translate)
                .map_err(|e| CommandError::Engine(e.to_string()))?;
            write_sla(&mut out, &sla, &fmt_level);
        }
        Some(options) => {
            let relaxations = spec
                .relaxations
                .iter()
                .map(|name| {
                    spec.constraints
                        .get(name)
                        .ok_or_else(|| {
                            CommandError::Usage(format!("relaxation `{name}` names no constraint"))
                        })
                        .and_then(|cspec| Ok(cspec.to_constraint(semiring.clone(), level.clone())?))
                })
                .collect::<Result<Vec<_>, _>>()?;
            let config = ChaosConfig {
                seed: options.seed,
                fault_rate: options.rate,
                horizon: options.horizon,
                guard_deadline: options.deadline,
                max_retries: options.retries,
                backoff_base: options.backoff,
                ..ChaosConfig::default()
            };
            let report = broker
                .negotiate_resilient(&request, &relaxations, &config, &translate)
                .map_err(|e| CommandError::Engine(e.to_string()))?;
            for (service, session) in &report.sessions {
                let _ = writeln!(
                    out,
                    "session {:12} {:10} faults {} retries {} rollbacks {} relaxations {}",
                    service.as_str(),
                    session.report.outcome.to_string(),
                    session.faults_injected,
                    session.retries,
                    session.rollbacks,
                    session.relaxations_applied,
                );
            }
            let _ = writeln!(
                out,
                "faults: {} injected, {} transitions dropped",
                report.faults_injected, report.dropped_transitions
            );
            let _ = writeln!(
                out,
                "recovery: {} retries, {} rollbacks, {} relaxations, {} interval violations",
                report.retries,
                report.rollbacks,
                report.relaxations_applied,
                report.invariant_violations
            );
            match &report.sla {
                Some(sla) => write_sla(&mut out, sla, &fmt_level),
                None => {
                    let _ = writeln!(out, "outcome: no agreement survived the chaos run");
                }
            }
        }
    }
    append_metrics(&mut out, recorder);
    Ok(out)
}

fn write_sla<S: Semiring>(
    out: &mut String,
    sla: &softsoa_soa::Sla<S>,
    fmt_level: &impl Fn(&S::Value) -> String,
) {
    let _ = writeln!(
        out,
        "sla: {} from {} at {}",
        sla.service.as_str(),
        sla.provider.as_str(),
        fmt_level(&sla.agreed_level)
    );
    if let Some((eta, level)) = &sla.binding {
        let _ = writeln!(out, "binding: {eta} at {}", fmt_level(level));
    }
}

/// Options for `negotiate --contend` (contended broker scenarios).
#[derive(Debug, Clone, Copy)]
pub struct ContendOptions {
    /// Contending clients to replicate the scenario's request into
    /// (`--contend <n>`).
    pub contenders: usize,
    /// The allocation objective (`--fairness`).
    pub fairness: Fairness,
    /// Append a telemetry snapshot to the report (`--metrics`).
    pub metrics: Option<MetricsFormat>,
    /// Propagation and decomposition overrides for binding solves.
    pub engine: EngineOptions,
}

impl Default for ContendOptions {
    fn default() -> ContendOptions {
        ContendOptions {
            contenders: 4,
            fairness: Fairness::default(),
            metrics: None,
            engine: EngineOptions::default(),
        }
    }
}

/// `softsoa negotiate --contend <n>`: replicates a broker scenario's
/// request into `n` contending clients and allocates them jointly
/// under the configured fairness objective, reporting each client's
/// typed outcome and the batch fairness metrics.
///
/// # Errors
///
/// Returns [`CommandError::Usage`] for documents without a `broker`
/// section or for the boolean semiring (contention ranks agreements by
/// graded softness), [`CommandError::Format`] for malformed documents.
pub fn negotiate_contend(text: &str, options: &ContendOptions) -> Result<String, CommandError> {
    let spec = NegotiationSpec::from_json(text)?;
    let broker_spec = spec.broker.clone().ok_or_else(|| {
        CommandError::Usage("--contend: the document has no `broker` section".into())
    })?;
    match spec.semiring {
        SemiringKind::Weighted => contend_generic(
            &spec,
            &broker_spec,
            options,
            Weighted,
            weight_level,
            QosOffer::to_weighted,
            ToString::to_string,
        ),
        SemiringKind::Fuzzy => contend_generic(
            &spec,
            &broker_spec,
            options,
            Fuzzy,
            unit_level,
            QosOffer::to_fuzzy,
            ToString::to_string,
        ),
        SemiringKind::Probabilistic => contend_generic(
            &spec,
            &broker_spec,
            options,
            Probabilistic,
            unit_level,
            QosOffer::to_probabilistic,
            ToString::to_string,
        ),
        SemiringKind::Boolean => Err(CommandError::Usage(
            "--contend: contention ranks agreements by graded softness — \
             use weighted, fuzzy or probabilistic"
                .into(),
        )),
    }
}

fn contend_generic<S, L, F>(
    spec: &NegotiationSpec,
    broker_spec: &BrokerSpec,
    options: &ContendOptions,
    semiring: S,
    level: L,
    translate: F,
    fmt_level: impl Fn(&S::Value) -> String,
) -> Result<String, CommandError>
where
    S: WireSemiring,
    L: Fn(f64) -> Result<S::Value, FormatError> + Clone + Send + Sync + 'static,
    F: Fn(&QosOffer) -> Constraint<S>,
{
    let registry = broker_registry(broker_spec);
    let request = broker_request(spec, broker_spec, &semiring, &level)?;
    let (telemetry, recorder) = metrics_recorder(options.metrics);
    let broker = Broker::new(semiring, registry)
        .with_telemetry(telemetry)
        .with_incremental(options.engine.incremental)
        .with_solver_config(
            options
                .engine
                .apply(SolverConfig::default().with_parallelism(Parallelism::Sequential)),
        );
    let contended: Vec<ContendedRequest<S>> = (0..options.contenders.max(1))
        .map(|i| ContendedRequest {
            client: format!("client-{i:02}"),
            request: request.clone(),
        })
        .collect();
    let allocation = broker.negotiate_contended(&contended, options.fairness, &translate);

    let mut out = String::new();
    let _ = writeln!(
        out,
        "contended: {} clients for `{}`, objective {}, epoch {}",
        contended.len(),
        broker_spec.capability,
        allocation.fairness,
        allocation.epoch,
    );
    for (client, outcome) in &allocation.outcomes {
        match outcome {
            ContentionOutcome::Granted(sla) => {
                let _ = writeln!(
                    out,
                    "{client:12} granted     {} from {} at {}",
                    sla.service.as_str(),
                    sla.provider.as_str(),
                    fmt_level(&sla.agreed_level)
                );
            }
            ContentionOutcome::Preempted => {
                let _ = writeln!(out, "{client:12} preempted   (fcfs would have granted)");
            }
            ContentionOutcome::Waitlisted { age } => {
                let _ = writeln!(out, "{client:12} waitlisted  (denied {age} rounds running)");
            }
            ContentionOutcome::Unserved => {
                let _ = writeln!(out, "{client:12} unserved    (no provider agreed)");
            }
        }
    }
    let report = &allocation.report;
    let _ = writeln!(
        out,
        "fairness: jain {:.3} min-utility {:.3} spread {:.3} sum-softness {:.3} \
         max-starvation {}",
        report.jain,
        report.min_utility,
        report.spread,
        report.sum_softness,
        report.max_starvation_age,
    );
    append_metrics(&mut out, recorder);
    Ok(out)
}

fn explore_generic<S, L>(
    spec: &NegotiationSpec,
    semiring: S,
    level: L,
) -> Result<String, CommandError>
where
    S: softsoa_semiring::Residuated,
    L: Fn(f64) -> Result<S::Value, FormatError> + Clone + Send + Sync + 'static,
{
    let mut env = ParseEnv::new(semiring.clone());
    for (name, cspec) in &spec.constraints {
        env = env.with_constraint(name, cspec.to_constraint(semiring.clone(), level.clone())?);
    }
    for (name, raw) in &spec.levels {
        env = env.with_level(name, level(*raw)?);
    }
    let (program, agent) = parse_program(&spec.agent, &env)
        .map_err(|e| CommandError::Engine(format!("agent syntax: {e}")))?;
    let mut domains = Domains::new();
    for (name, dspec) in &spec.domains {
        domains.insert(Var::new(name), dspec.to_domain()?);
    }
    let verdict = softsoa_nmsccp::Explorer::new(program)
        .explore(agent, Store::empty(semiring, domains))
        .map_err(|e| CommandError::Engine(e.to_string()))?;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "configurations: {} ({} transitions{})",
        verdict.configurations,
        verdict.transitions,
        if verdict.truncated { ", TRUNCATED" } else { "" }
    );
    let _ = writeln!(
        out,
        "agreement possible:   {}",
        if verdict.success_reachable {
            "YES"
        } else {
            "NO"
        }
    );
    let _ = writeln!(
        out,
        "agreement guaranteed: {}",
        if verdict.always_succeeds && !verdict.truncated {
            "YES"
        } else {
            "NO"
        }
    );
    let _ = writeln!(
        out,
        "deadlock reachable:   {}",
        if verdict.deadlock_reachable {
            "YES"
        } else {
            "NO"
        }
    );
    Ok(out)
}

/// `softsoa explore`: model-check a negotiation — can it succeed under
/// some schedule, and must it under every one?
///
/// # Errors
///
/// Returns [`CommandError`] for malformed documents, agent syntax
/// errors or engine failures.
pub fn explore(text: &str) -> Result<String, CommandError> {
    let spec = NegotiationSpec::from_json(text)?;
    match spec.semiring {
        SemiringKind::Weighted => explore_generic(&spec, Weighted, weight_level),
        SemiringKind::Fuzzy => explore_generic(&spec, Fuzzy, unit_level),
        SemiringKind::Probabilistic => explore_generic(&spec, Probabilistic, unit_level),
        SemiringKind::Boolean => explore_generic(&spec, Boolean, bool_level),
    }
}

/// `softsoa coalitions`: form trustworthy coalitions from a trust
/// matrix.
///
/// # Errors
///
/// Returns [`CommandError`] for malformed documents, unknown
/// algorithm names, or an `exact` request beyond the Bell-number
/// ceiling of [`MAX_EXACT_AGENTS`] agents.
pub fn coalitions(text: &str) -> Result<String, CommandError> {
    coalitions_with(text, None)
}

/// [`coalitions`] with an optional telemetry snapshot appended
/// (`--metrics`).
///
/// # Errors
///
/// Same as [`coalitions`].
pub fn coalitions_with(text: &str, metrics: Option<MetricsFormat>) -> Result<String, CommandError> {
    coalitions_with_options(text, metrics, EngineOptions::default())
}

/// [`coalitions_with`] with explicit propagation and decomposition
/// overrides for the `scsp` algorithm's branch-and-bound solver
/// (`--propagate`, `--decompose`, `--no-decompose`); the other
/// algorithms do not search an SCSP and ignore the overrides.
///
/// # Errors
///
/// Same as [`coalitions`], plus an `scsp` request beyond the encoding's
/// five-agent ceiling.
pub fn coalitions_with_options(
    text: &str,
    metrics: Option<MetricsFormat>,
    engine: EngineOptions,
) -> Result<String, CommandError> {
    let spec = CoalitionSpec::from_json(text)?;
    let network = spec.network()?;
    let compose = spec.composition()?;
    let cfg = FormationConfig {
        compose,
        require_stability: spec.require_stability,
        max_coalitions: spec.max_coalitions,
    };
    let (telemetry, recorder) = metrics_recorder(metrics);
    let result = match spec.algorithm.as_str() {
        "exact" => {
            // The exact solver runs an O(3^n) subset DP and asserts
            // its ceiling; turn that panic into a usage error before
            // it is reachable.
            if network.len() > MAX_EXACT_AGENTS {
                return Err(CommandError::Usage(format!(
                    "exact formation handles at most {MAX_EXACT_AGENTS} agents, got {} \
                     (use `local`, `individual` or `social`)",
                    network.len()
                )));
            }
            exact_formation_instrumented(&network, cfg, Parallelism::Sequential, &telemetry)
                .ok_or_else(|| CommandError::Engine("no feasible partition".into()))?
        }
        "individual" => individually_oriented(&network, compose),
        "social" => socially_oriented(&network, compose),
        "local" => local_search(&network, cfg, 0, 2_000),
        "scsp" => {
            // The Sec. 6.1 encoding enumerates (2^n)^n tuples; its
            // builder asserts the ceiling, so report it as a usage
            // error before it is reachable.
            if network.len() > 5 {
                return Err(CommandError::Usage(format!(
                    "the scsp encoding handles at most 5 agents, got {} \
                     (use `exact`, `local`, `individual` or `social`)",
                    network.len()
                )));
            }
            let config = engine.apply(SolverConfig::default());
            scsp_formation_with(&network, compose, spec.require_stability, &config)
                .map_err(|e| CommandError::Engine(e.to_string()))?
                .ok_or_else(|| CommandError::Engine("no feasible partition".into()))?
        }
        other => {
            return Err(CommandError::Usage(format!("unknown algorithm `{other}`")));
        }
    };
    let mut out = String::new();
    let _ = writeln!(out, "partition: {}", result.partition);
    let _ = writeln!(out, "objective (min coalition trust): {}", result.score);
    let stable = softsoa_coalition::is_stable(&network, &result.partition, compose);
    let _ = writeln!(out, "stable: {stable}");
    append_metrics(&mut out, recorder);
    Ok(out)
}

/// `softsoa integrity`: the Sec. 5 photo-editing integrity analysis at
/// a chosen domain resolution.
///
/// # Errors
///
/// Returns [`CommandError::Usage`] for a non-positive step.
pub fn integrity(step: i64) -> Result<String, CommandError> {
    if step <= 0 {
        return Err(CommandError::Usage("step must be positive".into()));
    }
    let doms = photo::domains(4096, step);
    let mut out = String::new();
    for (name, imp) in [("Imp1", photo::imp1()), ("Imp2", photo::imp2())] {
        let report = check_refinement(&imp, &photo::memory(), &photo::interface(), &doms)
            .map_err(|e| CommandError::Engine(e.to_string()))?;
        if report.holds() {
            let _ = writeln!(out, "{name} ⇓ {{incomp, outcomp}} ⊑ Memory: HOLDS");
        } else {
            let ce = report.counterexample().ok_or_else(|| {
                CommandError::Engine("refinement check failed without a counterexample".into())
            })?;
            let _ = writeln!(
                out,
                "{name} ⇓ {{incomp, outcomp}} ⊑ Memory: VIOLATED at {}",
                ce.assignment
            );
        }
    }
    let _ = writeln!(
        out,
        "c1(4096 Kb, 1024 Kb) = {}",
        photo::stage_reliability(4096, 1024)
    );
    Ok(out)
}

/// Shared daemon knobs for the `serve` and `load` commands: plain
/// values as parsed from flags, lowered onto a [`ServerConfig`] by
/// [`DaemonOptions::server_config`].
#[derive(Debug, Clone)]
pub struct DaemonOptions {
    /// Bind address (`127.0.0.1:0` picks an ephemeral port).
    pub addr: String,
    /// Semiring the daemon negotiates in (`boolean` is rejected:
    /// the wire protocol carries graded QoS levels).
    pub semiring: SemiringKind,
    /// Synthetic `compute` providers seeded into the registry
    /// (`None` keeps each workload's own default).
    pub providers: Option<usize>,
    /// Worker threads (`None` keeps the server default).
    pub workers: Option<usize>,
    /// Accept-queue bound (`None` keeps the server default).
    pub queue_limit: Option<usize>,
    /// Per-session wall-clock budget in milliseconds.
    pub session_deadline_ms: Option<u64>,
    /// Drain deadline applied at shutdown, milliseconds.
    pub drain_ms: u64,
    /// Store-level chaos seed (setting either chaos knob enables it).
    pub store_chaos_seed: Option<u64>,
    /// Store-level chaos fault rate.
    pub store_chaos_rate: Option<f64>,
    /// Server-side transport chaos seed.
    pub wire_chaos_seed: Option<u64>,
    /// Server-side transport chaos fault rate.
    pub wire_chaos_rate: Option<f64>,
    /// Whether binding solves use the incremental engine.
    pub incremental: bool,
    /// Contention objective for negotiate batching (`None` keeps the
    /// historical per-session FCFS path).
    pub fairness: Option<Fairness>,
}

impl Default for DaemonOptions {
    fn default() -> DaemonOptions {
        DaemonOptions {
            addr: "127.0.0.1:0".to_string(),
            semiring: SemiringKind::Fuzzy,
            providers: None,
            workers: None,
            queue_limit: None,
            session_deadline_ms: None,
            drain_ms: 2_000,
            store_chaos_seed: None,
            store_chaos_rate: None,
            wire_chaos_seed: None,
            wire_chaos_rate: None,
            incremental: true,
            fairness: None,
        }
    }
}

impl DaemonOptions {
    /// Providers to seed for the independent-session workloads.
    fn providers(&self) -> usize {
        self.providers.unwrap_or(8)
    }

    /// Lowers the flag values onto a concrete server configuration.
    fn server_config(&self) -> ServerConfig {
        let mut config = ServerConfig {
            addr: self.addr.clone(),
            incremental: self.incremental,
            fairness: self.fairness,
            ..ServerConfig::default()
        };
        if let Some(workers) = self.workers {
            config.workers = workers;
        }
        if let Some(limit) = self.queue_limit {
            config.queue_limit = limit;
        }
        if let Some(ms) = self.session_deadline_ms {
            config.session_deadline = Duration::from_millis(ms);
        }
        if self.store_chaos_seed.is_some() || self.store_chaos_rate.is_some() {
            config.store_chaos = Some(StoreChaos {
                seed: self.store_chaos_seed.unwrap_or(7),
                fault_rate: self.store_chaos_rate.unwrap_or(0.2),
            });
        }
        if self.wire_chaos_seed.is_some() || self.wire_chaos_rate.is_some() {
            config.transport_chaos = Some(TransportChaos {
                seed: self.wire_chaos_seed.unwrap_or(7),
                fault_rate: self.wire_chaos_rate.unwrap_or(0.1),
                ..TransportChaos::default()
            });
        }
        config
    }

    /// The drain deadline as a duration.
    fn drain(&self) -> Duration {
        Duration::from_millis(self.drain_ms)
    }
}

/// Parses a `--semiring` flag value.
///
/// # Errors
///
/// Returns [`CommandError::Usage`] for an unknown name.
pub fn parse_semiring(name: &str) -> Result<SemiringKind, CommandError> {
    match name {
        "weighted" => Ok(SemiringKind::Weighted),
        "fuzzy" => Ok(SemiringKind::Fuzzy),
        "probabilistic" => Ok(SemiringKind::Probabilistic),
        "boolean" => Ok(SemiringKind::Boolean),
        other => Err(CommandError::Usage(format!(
            "unknown semiring `{other}` (expected weighted, fuzzy or probabilistic)"
        ))),
    }
}

/// Parses a `--fairness` flag value.
///
/// # Errors
///
/// Returns [`CommandError::Usage`] for an unknown objective name.
pub fn parse_fairness(name: &str) -> Result<Fairness, CommandError> {
    Fairness::parse(name).ok_or_else(|| {
        CommandError::Usage(format!(
            "unknown fairness objective `{name}` (expected fcfs, utilitarian, leximin or nash)"
        ))
    })
}

/// `softsoa serve`: runs the negotiation daemon until stdin reaches
/// EOF, then drains gracefully and reports what the drain saw.
///
/// The listening address is printed (and flushed) as soon as the
/// daemon is up, so scripts can scrape the ephemeral port.
///
/// # Errors
///
/// Returns [`CommandError::Usage`] for the boolean semiring and
/// [`CommandError::Engine`] for bind/spawn failures.
pub fn serve(options: &DaemonOptions) -> Result<String, CommandError> {
    match options.semiring {
        SemiringKind::Weighted => serve_on(Weighted, options),
        SemiringKind::Fuzzy => serve_on(Fuzzy, options),
        SemiringKind::Probabilistic => serve_on(Probabilistic, options),
        SemiringKind::Boolean => Err(CommandError::Usage(
            "serve: the daemon negotiates graded QoS — use weighted, fuzzy or probabilistic".into(),
        )),
    }
}

fn serve_on<S: WireSemiring>(semiring: S, options: &DaemonOptions) -> Result<String, CommandError> {
    let registry = loadgen::seed_providers(options.providers());
    let handle = NegotiationServer::start(
        semiring,
        registry,
        options.server_config(),
        Telemetry::disabled(),
    )
    .map_err(|e| CommandError::Engine(format!("serve: {e}")))?;
    println!(
        "listening on {} ({}, {} workers, queue {}, {} providers)",
        handle.local_addr(),
        S::NAME,
        handle.config().workers,
        handle.config().queue_limit,
        options.providers(),
    );
    println!("serving until stdin closes (EOF drains and stops)");
    let _ = std::io::stdout().flush();

    // Block until the operator closes stdin; every other thread in the
    // daemon is already bounded, so this is the only open-ended wait.
    let mut stdin = std::io::stdin();
    let mut buffer = [0u8; 256];
    loop {
        match stdin.read(&mut buffer) {
            Ok(0) | Err(_) => break,
            Ok(_) => {}
        }
    }

    let report = handle.shutdown(options.drain());
    Ok(format!(
        "drained: served {} aborted {} shed {} in {:.0} ms (within deadline: {})\n",
        report.drained,
        report.aborted,
        report.shed,
        report.elapsed.as_secs_f64() * 1e3,
        report.within_deadline,
    ))
}

/// Options for the `load` command.
#[derive(Debug, Clone, Default)]
pub struct LoadOptions {
    /// Attach to an already-running daemon instead of self-hosting.
    pub attach: Option<String>,
    /// Daemon knobs (self-hosted mode; in attach mode only
    /// `session_deadline_ms` is read, to size the hang detector).
    pub daemon: DaemonOptions,
    /// Client sessions to run.
    pub clients: Option<usize>,
    /// Concurrent client threads.
    pub concurrency: Option<usize>,
    /// Fraction of clients that misbehave at the transport level.
    pub fault_rate: Option<f64>,
    /// Fraction of well-behaved clients that churn the registry.
    pub churn_rate: Option<f64>,
    /// Seed for the deterministic client plans.
    pub seed: Option<u64>,
    /// Run the contended multi-client workload instead of the
    /// independent-session one (`--contended`).
    pub contended: bool,
    /// Contended waves to run (`--waves`).
    pub waves: Option<usize>,
    /// Clients racing in each contended wave (`--wave-clients`).
    pub wave_clients: Option<usize>,
    /// Concurrent-binding slots per seeded provider (`--slots`).
    pub slots: Option<u32>,
}

impl LoadOptions {
    fn load_config(&self) -> LoadConfig {
        let mut config = LoadConfig::default();
        if let Some(clients) = self.clients {
            config.clients = clients;
        }
        if let Some(concurrency) = self.concurrency {
            config.concurrency = concurrency;
        }
        if let Some(rate) = self.fault_rate {
            config.transport_fault_rate = rate;
        }
        if let Some(rate) = self.churn_rate {
            config.churn_rate = rate;
        }
        if let Some(seed) = self.seed {
            config.seed = seed;
        }
        config
    }

    fn contention_config(&self) -> ContentionConfig {
        let mut config = ContentionConfig {
            fairness: self.daemon.fairness.unwrap_or_default(),
            ..ContentionConfig::default()
        };
        if let Some(providers) = self.daemon.providers {
            config.providers = providers;
        }
        if let Some(waves) = self.waves {
            config.waves = waves;
        }
        if let Some(clients) = self.wave_clients {
            config.clients_per_wave = clients;
        }
        if let Some(slots) = self.slots {
            config.slots_per_provider = slots;
        }
        if let Some(rate) = self.fault_rate {
            config.transport_fault_rate = rate;
        }
        if let Some(seed) = self.seed {
            config.seed = seed;
        }
        config
    }
}

/// `softsoa load`: drives the deterministic load generator — against a
/// self-hosted daemon (default; the report includes the drain) or an
/// already-running one (`--attach`).
///
/// # Errors
///
/// Returns [`CommandError::Usage`] for the boolean semiring or an
/// unresolvable `--attach` address, [`CommandError::Engine`] for
/// bind/spawn failures.
pub fn load(options: &LoadOptions) -> Result<String, CommandError> {
    if options.contended {
        return load_contended(options);
    }
    let config = options.load_config();
    if let Some(addr) = &options.attach {
        let addr = resolve_attach(addr)?;
        let deadline = Duration::from_millis(options.daemon.session_deadline_ms.unwrap_or(2_000));
        let report = loadgen::run(addr, &config, deadline);
        return Ok(report.to_json() + "\n");
    }
    match options.daemon.semiring {
        SemiringKind::Weighted => load_self_hosted(Weighted, options, &config),
        SemiringKind::Fuzzy => load_self_hosted(Fuzzy, options, &config),
        SemiringKind::Probabilistic => load_self_hosted(Probabilistic, options, &config),
        SemiringKind::Boolean => Err(CommandError::Usage(
            "load: the daemon negotiates graded QoS — use weighted, fuzzy or probabilistic".into(),
        )),
    }
}

fn resolve_attach(addr: &str) -> Result<std::net::SocketAddr, CommandError> {
    addr.to_socket_addrs()
        .map_err(|e| CommandError::Usage(format!("--attach `{addr}`: {e}")))?
        .next()
        .ok_or_else(|| CommandError::Usage(format!("--attach `{addr}`: resolved to nothing")))
}

/// `softsoa load --contended`: waves of stable-identity clients race
/// for capacity-limited slots through the server's batching window;
/// the report carries the starvation and fairness tallies.
fn load_contended(options: &LoadOptions) -> Result<String, CommandError> {
    let config = options.contention_config();
    if let Some(addr) = &options.attach {
        let addr = resolve_attach(addr)?;
        let deadline = Duration::from_millis(options.daemon.session_deadline_ms.unwrap_or(2_000));
        let report = loadgen::run_contended(addr, &config, deadline);
        return Ok(report.to_json() + "\n");
    }
    match options.daemon.semiring {
        SemiringKind::Weighted => load_contended_self_hosted(Weighted, &config, options),
        SemiringKind::Fuzzy => load_contended_self_hosted(Fuzzy, &config, options),
        SemiringKind::Probabilistic => load_contended_self_hosted(Probabilistic, &config, options),
        SemiringKind::Boolean => Err(CommandError::Usage(
            "load: the daemon negotiates graded QoS — use weighted, fuzzy or probabilistic".into(),
        )),
    }
}

fn load_contended_self_hosted<S: WireSemiring>(
    semiring: S,
    config: &ContentionConfig,
    options: &LoadOptions,
) -> Result<String, CommandError> {
    let (report, _drain) =
        loadgen::run_contended_self_hosted(semiring, config, options.daemon.drain())
            .map_err(|e| CommandError::Engine(format!("load: {e}")))?;
    Ok(report.to_json() + "\n")
}

fn load_self_hosted<S: WireSemiring>(
    semiring: S,
    options: &LoadOptions,
    config: &LoadConfig,
) -> Result<String, CommandError> {
    let report = loadgen::run_self_hosted(
        semiring,
        loadgen::seed_providers(options.daemon.providers()),
        options.daemon.server_config(),
        config,
        options.daemon.drain(),
    )
    .map_err(|e| CommandError::Engine(format!("load: {e}")))?;
    Ok(report.to_json() + "\n")
}

/// Resolves domains for display in `solve` reports (kept for parity
/// with the library API; unused variables are reported as-is).
#[allow(dead_code)]
fn domain_summary(domains: &Domains) -> String {
    domains
        .iter()
        .map(|(v, d): (&Var, &Domain)| format!("{v}: {d}"))
        .collect::<Vec<_>>()
        .join(", ")
}

#[cfg(test)]
mod tests {
    use super::*;

    const FIG1: &str = r#"{
        "semiring": "weighted",
        "domains": {"x": {"syms": ["a", "b"]}, "y": {"syms": ["a", "b"]}},
        "constraints": [
            {"table": {"scope": ["x"], "entries": [[["a"], 1.0], [["b"], 9.0]], "label": "c1"}},
            {"table": {"scope": ["x", "y"], "entries": [
                [["a", "a"], 5.0], [["a", "b"], 1.0],
                [["b", "a"], 2.0], [["b", "b"], 2.0]], "label": "c2"}},
            {"table": {"scope": ["y"], "entries": [[["a"], 5.0], [["b"], 5.0]], "label": "c3"}}
        ],
        "con": ["x"]
    }"#;

    #[test]
    fn solve_fig1_via_every_solver() {
        for solver in [
            SolverChoice::Enumeration,
            SolverChoice::BranchAndBound,
            SolverChoice::Bucket,
        ] {
            let report = solve(FIG1, solver).unwrap();
            assert!(report.contains("blevel: 7"), "{solver:?}: {report}");
            assert!(report.contains("[x:=a]"), "{solver:?}: {report}");
        }
    }

    #[test]
    fn engine_choices_agree_on_fig1() {
        // `--engine auto` and `--engine treedec` must never differ
        // from the default branch-and-bound on a committed instance.
        let blind = solve(FIG1, SolverChoice::BranchAndBound).unwrap();
        for engine in [Engine::Auto, Engine::TreeDecompose] {
            for width_cap in [None, Some(1)] {
                let options = SolveOptions {
                    engine: EngineOptions {
                        engine: Some(engine),
                        width_cap,
                        ..EngineOptions::default()
                    },
                    ..SolveOptions::default()
                };
                let report = solve_with(FIG1, SolverChoice::BranchAndBound, options).unwrap();
                assert_eq!(report, blind, "{engine:?} cap {width_cap:?}");
            }
        }
    }

    #[test]
    fn parse_engine_names() {
        assert_eq!(parse_engine("bnb"), Ok(Engine::BranchBound));
        assert_eq!(parse_engine("branch-and-bound"), Ok(Engine::BranchBound));
        assert_eq!(parse_engine("auto"), Ok(Engine::Auto));
        assert_eq!(parse_engine("treedec"), Ok(Engine::TreeDecompose));
        assert_eq!(parse_engine("tree"), Ok(Engine::TreeDecompose));
        let err = parse_engine("magic").unwrap_err();
        assert!(err.contains("magic"), "{err}");
    }

    #[test]
    fn malformed_specs_are_diagnosed_not_panics() {
        // Regression guard for the user-input audit: every malformed
        // document must surface as a typed diagnostic. A panic here
        // means a `solve` input path regressed to unwrap/expect.
        let cases: &[(&str, &str)] = &[
            ("truncated json", r#"{"semiring": "weighted", "domains""#),
            (
                "unknown semiring",
                r#"{"semiring": "tropical", "domains": {}, "constraints": []}"#,
            ),
            (
                "oversized domain",
                r#"{"semiring": "weighted",
                    "domains": {"x": {"ints": [0, 99999999]}},
                    "constraints": []}"#,
            ),
            (
                "arity mismatch",
                r#"{"semiring": "weighted",
                    "domains": {"x": {"syms": ["a"]}},
                    "constraints": [{"table": {"scope": ["x"],
                        "entries": [[["a", "a"], 1.0]], "label": "bad"}}]}"#,
            ),
            (
                "negative weight level",
                r#"{"semiring": "weighted",
                    "domains": {"x": {"syms": ["a"]}},
                    "constraints": [{"table": {"scope": ["x"],
                        "entries": [[["a"], -3.0]], "label": "bad"}}]}"#,
            ),
            (
                "probability above one",
                r#"{"semiring": "probabilistic",
                    "domains": {"x": {"syms": ["a"]}},
                    "constraints": [{"table": {"scope": ["x"],
                        "entries": [[["a"], 1.5]], "label": "bad"}}]}"#,
            ),
            (
                "constraint over unknown variable",
                r#"{"semiring": "weighted",
                    "domains": {"x": {"syms": ["a"]}},
                    "constraints": [{"table": {"scope": ["ghost"],
                        "entries": [[["a"], 1.0]], "label": "bad"}}]}"#,
            ),
        ];
        for (what, text) in cases {
            for solver in [SolverChoice::Enumeration, SolverChoice::BranchAndBound] {
                let err = solve(text, solver)
                    .expect_err(&format!("{what} should be rejected by {solver:?}"));
                assert!(!err.to_string().is_empty(), "{what}: empty diagnostic");
            }
        }
    }

    #[test]
    fn solve_options_control_engine_and_stats() {
        for solver in [
            SolverChoice::Enumeration,
            SolverChoice::BranchAndBound,
            SolverChoice::Bucket,
        ] {
            for options in [
                SolveOptions {
                    jobs: Some(2),
                    lazy: false,
                    stats: true,
                    ..SolveOptions::default()
                },
                SolveOptions {
                    jobs: Some(1),
                    lazy: true,
                    stats: true,
                    ..SolveOptions::default()
                },
            ] {
                let report = solve_with(FIG1, solver, options).unwrap();
                assert!(report.contains("blevel: 7"), "{solver:?}: {report}");
                assert!(report.contains("[x:=a]"), "{solver:?}: {report}");
                assert!(report.contains("engine: nodes:"), "{solver:?}: {report}");
            }
        }
        // Without --stats the engine line is absent.
        let quiet = solve(FIG1, SolverChoice::Enumeration).unwrap();
        assert!(!quiet.contains("engine:"), "{quiet}");
    }

    #[test]
    fn bounded_warm_dynamic_solves_agree_with_blind() {
        // Every combination of variable order, mini-bucket bound and
        // warm start reports the same blevel and witness as the plain
        // branch-and-bound run.
        let blind = solve(FIG1, SolverChoice::BranchAndBound).unwrap();
        for order in ["input", "smallest", "most-constrained", "dynamic"] {
            for ibound in [None, Some(1), Some(2)] {
                for warm_start in [false, true] {
                    let options = SolveOptions {
                        order: Some(parse_var_order(order).unwrap()),
                        ibound,
                        warm_start,
                        ..SolveOptions::default()
                    };
                    let report = solve_with(FIG1, SolverChoice::BranchAndBound, options).unwrap();
                    assert!(
                        report.contains("blevel: 7"),
                        "{order}/{ibound:?}/{warm_start}: {report}"
                    );
                    assert!(
                        report.contains("[x:=a]"),
                        "{order}/{ibound:?}/{warm_start}: {report}"
                    );
                    assert_eq!(
                        report, blind,
                        "{order}/{ibound:?}/{warm_start} diverged from the blind run"
                    );
                }
            }
        }
        // Bound statistics surface in the engine line when requested.
        let stats = solve_with(
            FIG1,
            SolverChoice::BranchAndBound,
            SolveOptions {
                ibound: Some(2),
                stats: true,
                ..SolveOptions::default()
            },
        )
        .unwrap();
        assert!(stats.contains("bound)"), "{stats}");
    }

    #[test]
    fn parse_var_order_rejects_unknown_names() {
        assert_eq!(parse_var_order("input").unwrap(), VarOrder::Input);
        assert_eq!(parse_var_order("dynamic").unwrap(), VarOrder::Dynamic);
        assert_eq!(parse_var_order("estimate").unwrap(), VarOrder::Estimate);
        assert!(parse_var_order("random").is_err());
    }

    #[test]
    fn parse_propagation_rejects_unknown_names() {
        assert_eq!(parse_propagation("off").unwrap(), PropagationMode::Off);
        assert_eq!(parse_propagation("root").unwrap(), PropagationMode::Root);
        assert_eq!(parse_propagation("full").unwrap(), PropagationMode::Full);
        assert!(parse_propagation("eager").is_err());
    }

    #[test]
    fn propagated_and_decomposed_solves_agree_with_blind() {
        // Every --propagate/--decompose combination (and the estimate
        // order, which rides on the root propagation pass) reports the
        // same blevel and witness as the fully blind run.
        let blind = solve_with(
            FIG1,
            SolverChoice::BranchAndBound,
            SolveOptions {
                engine: EngineOptions {
                    propagate: Some(PropagationMode::Off),
                    decompose: Some(false),
                    incremental: false,
                    ..EngineOptions::default()
                },
                ..SolveOptions::default()
            },
        )
        .unwrap();
        assert!(blind.contains("blevel: 7"), "{blind}");
        for propagate in [
            None,
            Some(PropagationMode::Off),
            Some(PropagationMode::Root),
            Some(PropagationMode::Full),
        ] {
            for decompose in [None, Some(false), Some(true)] {
                for order in [None, Some(VarOrder::Estimate)] {
                    let options = SolveOptions {
                        order,
                        engine: EngineOptions {
                            propagate,
                            decompose,
                            incremental: false,
                            ..EngineOptions::default()
                        },
                        ..SolveOptions::default()
                    };
                    let report = solve_with(FIG1, SolverChoice::BranchAndBound, options).unwrap();
                    assert_eq!(
                        report, blind,
                        "{propagate:?}/{decompose:?}/{order:?} diverged from the blind run"
                    );
                }
            }
        }
    }

    #[test]
    fn propagation_counters_surface_in_stats_and_metrics() {
        let options = SolveOptions {
            stats: true,
            metrics: Some(MetricsFormat::Json),
            ..SolveOptions::default()
        };
        let report = solve_with(FIG1, SolverChoice::BranchAndBound, options).unwrap();
        assert!(report.contains("propagation:"), "{report}");
        let last = report.lines().last().unwrap();
        let json: serde::Value = serde_json::from_str(last).unwrap();
        let counters = json.get("counters").unwrap();
        assert!(
            counters.get("solver.propagation.revisions").is_some(),
            "{last}"
        );
        // Propagation off keeps the report clean.
        let off = solve_with(
            FIG1,
            SolverChoice::BranchAndBound,
            SolveOptions {
                stats: true,
                engine: EngineOptions {
                    propagate: Some(PropagationMode::Off),
                    decompose: None,
                    incremental: false,
                    ..EngineOptions::default()
                },
                ..SolveOptions::default()
            },
        )
        .unwrap();
        assert!(!off.contains("propagation:"), "{off}");
    }

    #[test]
    fn solve_rejects_bad_documents() {
        assert!(matches!(
            solve("{not json", SolverChoice::Enumeration),
            Err(CommandError::Format(_))
        ));
        let bad_level = FIG1.replace("9.0", "-9.0");
        assert!(matches!(
            solve(&bad_level, SolverChoice::Enumeration),
            Err(CommandError::Format(FormatError::Invalid(_)))
        ));
    }

    #[test]
    fn negotiate_example2_from_document() {
        let doc = r#"{
            "semiring": "weighted",
            "domains": {"x": {"ints": [0, 10]}},
            "constraints": {
                "c1": {"linear": {"var": "x", "slope": 1.0, "intercept": 3.0}},
                "c3": {"linear": {"var": "x", "slope": 2.0, "intercept": 0.0}},
                "c4": {"linear": {"var": "x", "slope": 1.0, "intercept": 5.0}},
                "one": {"linear": {"var": "x", "slope": 0.0, "intercept": 0.0}}
            },
            "levels": {"two": 2.0, "four": 4.0, "ten": 10.0},
            "agent": "tell(c4) retract(c1) ->[ten, two] success || tell(c3) ask(one) ->[four, two] success",
            "policy": {"random": 3}
        }"#;
        let report = negotiate(doc).unwrap();
        assert!(report.contains("SUCCESS"), "{report}");
        assert!(report.contains("σ⇓∅ = 2"), "{report}");
    }

    #[test]
    fn negotiate_reports_deadlocks() {
        let doc = r#"{
            "semiring": "weighted",
            "domains": {"x": {"ints": [0, 10]}},
            "constraints": {
                "c3": {"linear": {"var": "x", "slope": 2.0, "intercept": 0.0}},
                "c4": {"linear": {"var": "x", "slope": 1.0, "intercept": 5.0}},
                "one": {"linear": {"var": "x", "slope": 0.0, "intercept": 0.0}}
            },
            "levels": {"two": 2.0, "four": 4.0},
            "agent": "tell(c4) success || tell(c3) ask(one) ->[four, two] success"
        }"#;
        let report = negotiate(doc).unwrap();
        assert!(report.contains("DEADLOCK"), "{report}");
        assert!(report.contains("σ⇓∅ = 5"), "{report}");
    }

    const DEADLOCKED: &str = r#"{
        "semiring": "weighted",
        "domains": {"x": {"ints": [0, 10]}},
        "constraints": {
            "c1": {"linear": {"var": "x", "slope": 1.0, "intercept": 3.0}},
            "c3": {"linear": {"var": "x", "slope": 2.0, "intercept": 0.0}},
            "c4": {"linear": {"var": "x", "slope": 1.0, "intercept": 5.0}},
            "one": {"linear": {"var": "x", "slope": 0.0, "intercept": 0.0}}
        },
        "levels": {"two": 2.0, "four": 4.0},
        "agent": "tell(c4) success || tell(c3) ask(one) ->[four, two] success",
        "relaxations": ["c1"],
        "invariant": [10.0, 0.0]
    }"#;

    #[test]
    fn negotiate_chaos_rescues_a_deadlock() {
        // Naively the same scenario deadlocks (see
        // `negotiate_reports_deadlocks`); under chaos mode the
        // relaxation ladder concedes c1 and the ask is granted.
        let options = ChaosOptions {
            rate: 0.0,
            ..ChaosOptions::default()
        };
        let report = negotiate_chaos(DEADLOCKED, options).unwrap();
        assert!(report.contains("SUCCESS"), "{report}");
        assert!(report.contains("σ⇓∅ = 2"), "{report}");
        assert!(report.contains("relax(c1)"), "{report}");
    }

    #[test]
    fn negotiate_chaos_is_bit_reproducible() {
        let options = ChaosOptions {
            seed: 7,
            rate: 0.3,
            ..ChaosOptions::default()
        };
        let a = negotiate_chaos(DEADLOCKED, options).unwrap();
        let b = negotiate_chaos(DEADLOCKED, options).unwrap();
        assert_eq!(a, b);
        // A different seed perturbs the run.
        let c = negotiate_chaos(DEADLOCKED, ChaosOptions { seed: 8, ..options }).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn negotiate_chaos_rejects_unknown_relaxations() {
        let doc = DEADLOCKED.replace("\"relaxations\": [\"c1\"]", "\"relaxations\": [\"c9\"]");
        assert!(matches!(
            negotiate_chaos(&doc, ChaosOptions::default()),
            Err(CommandError::Usage(_))
        ));
    }

    #[test]
    fn explore_distinguishes_possibility_from_guarantee() {
        let doc = r#"{
            "semiring": "weighted",
            "domains": {"x": {"ints": [0, 10]}},
            "constraints": {
                "c1": {"linear": {"var": "x", "slope": 1.0, "intercept": 3.0}},
                "c3": {"linear": {"var": "x", "slope": 2.0, "intercept": 0.0}},
                "c4": {"linear": {"var": "x", "slope": 1.0, "intercept": 5.0}},
                "one": {"linear": {"var": "x", "slope": 0.0, "intercept": 0.0}}
            },
            "levels": {"two": 2.0, "four": 4.0, "ten": 10.0},
            "agent": "tell(c4) retract(c1) ->[ten, two] success || tell(c3) ask(one) ->[four, two] success"
        }"#;
        let report = explore(doc).unwrap();
        assert!(report.contains("agreement possible:   YES"), "{report}");
        assert!(report.contains("agreement guaranteed: YES"), "{report}");
        // Example 1 (no retract): impossible.
        let doc1 = doc.replace(
            "tell(c4) retract(c1) ->[ten, two] success",
            "tell(c4) success",
        );
        let report1 = explore(&doc1).unwrap();
        assert!(report1.contains("agreement possible:   NO"), "{report1}");
        assert!(report1.contains("deadlock reachable:   YES"), "{report1}");
    }

    #[test]
    fn solve_metrics_json_is_deterministic_and_parses() {
        let options = SolveOptions {
            metrics: Some(MetricsFormat::Json),
            ..SolveOptions::default()
        };
        let a = solve_with(FIG1, SolverChoice::Enumeration, options).unwrap();
        let b = solve_with(FIG1, SolverChoice::Enumeration, options).unwrap();
        assert_eq!(a, b);
        let last = a.lines().last().unwrap();
        let json: serde::Value = serde_json::from_str(last).unwrap();
        let counters = json.get("counters").unwrap();
        assert!(counters.get("solve.nodes").is_some(), "{last}");
        assert!(counters.get("solve.prunings").is_some(), "{last}");
        assert!(counters.get("solve.runs{enumeration}").is_some(), "{last}");
        // The pretty format is a block, not a JSON line.
        let pretty = solve_with(
            FIG1,
            SolverChoice::Enumeration,
            SolveOptions {
                metrics: Some(MetricsFormat::Pretty),
                ..SolveOptions::default()
            },
        )
        .unwrap();
        assert!(pretty.contains("solve.nodes"), "{pretty}");
    }

    #[test]
    fn negotiate_metrics_include_rule_counts() {
        let doc = r#"{
            "semiring": "weighted",
            "domains": {"x": {"ints": [0, 10]}},
            "constraints": {
                "c4": {"linear": {"var": "x", "slope": 1.0, "intercept": 5.0}},
                "one": {"linear": {"var": "x", "slope": 0.0, "intercept": 0.0}}
            },
            "levels": {"ten": 10.0, "zero": 0.0},
            "agent": "tell(c4) ask(one) ->[ten, zero] success"
        }"#;
        let a = negotiate_with(doc, Some(MetricsFormat::Json)).unwrap();
        let b = negotiate_with(doc, Some(MetricsFormat::Json)).unwrap();
        assert_eq!(a, b);
        let last = a.lines().last().unwrap();
        let json: serde::Value = serde_json::from_str(last).unwrap();
        let counters = json.get("counters").unwrap();
        assert!(counters.get("nmsccp.runs").is_some(), "{last}");
        let has_rule = counters
            .as_obj()
            .unwrap()
            .iter()
            .any(|(k, _)| k.starts_with("nmsccp.rule{"));
        assert!(has_rule, "{last}");
    }

    fn broker_doc() -> String {
        use softsoa_dependability::Attribute;
        use softsoa_soa::OfferShape;
        let offer = QosOffer {
            attribute: Attribute::Reliability,
            variable: "x".into(),
            shape: OfferShape::Linear {
                slope: 2.0,
                intercept: 0.0,
            },
        };
        format!(
            r#"{{
            "semiring": "weighted",
            "domains": {{"x": {{"ints": [0, 10]}}}},
            "constraints": {{
                "c4": {{"linear": {{"var": "x", "slope": 1.0, "intercept": 1.0}}}},
                "c1": {{"linear": {{"var": "x", "slope": 0.0, "intercept": 1.0}}}}
            }},
            "relaxations": ["c1"],
            "broker": {{
                "capability": "compute",
                "variable": "x",
                "client": "c4",
                "acceptance": [6.0, 1.0],
                "providers": [{{"id": "svc-w", "offers": [{}]}}]
            }}
        }}"#,
            serde_json::to_string(&offer).unwrap()
        )
    }

    #[test]
    fn negotiate_broker_section_runs_the_protocol() {
        // Provider charges 2x, client charges x + 1; the broker binds
        // x = 0 at total cost 1 (within the [1, 6] acceptance).
        let report = negotiate(&broker_doc()).unwrap();
        assert!(report.contains("sla: svc-w from svc-w at 1"), "{report}");
        assert!(report.contains("binding: [x:=0] at 1"), "{report}");
    }

    #[test]
    fn negotiate_chaos_broker_reports_sessions() {
        let options = ChaosOptions {
            rate: 0.0,
            ..ChaosOptions::default()
        };
        let report = negotiate_chaos(&broker_doc(), options).unwrap();
        assert!(report.contains("session svc-w"), "{report}");
        assert!(report.contains("sla: svc-w"), "{report}");
        assert!(report.contains("recovery: 0 retries"), "{report}");
    }

    #[test]
    fn negotiate_chaos_broker_metrics_are_deterministic() {
        // The acceptance bar for the observability layer: a fixed-seed
        // chaos negotiation with --metrics=json is byte-for-byte
        // reproducible and carries per-rule transition counts,
        // per-provider recovery counters and solver node totals.
        let options = ChaosOptions {
            seed: 7,
            rate: 0.0,
            metrics: Some(MetricsFormat::Json),
            ..ChaosOptions::default()
        };
        let a = negotiate_chaos(&broker_doc(), options).unwrap();
        let b = negotiate_chaos(&broker_doc(), options).unwrap();
        assert_eq!(a, b);
        let last = a.lines().last().unwrap();
        let json: serde::Value = serde_json::from_str(last).unwrap();
        let counters = json.get("counters").unwrap();
        let keys: Vec<&str> = counters
            .as_obj()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        assert!(keys.iter().any(|k| k.starts_with("nmsccp.rule{")), "{last}");
        assert!(keys.contains(&"broker.provider.retries{svc-w}"), "{last}");
        assert!(
            keys.contains(&"broker.provider.degradation_rung{svc-w}"),
            "{last}"
        );
        assert!(keys.contains(&"solve.nodes"), "{last}");
        // A hostile run stays deterministic too.
        let hostile = ChaosOptions {
            rate: 0.4,
            ..options
        };
        let c = negotiate_chaos(&broker_doc(), hostile).unwrap();
        let d = negotiate_chaos(&broker_doc(), hostile).unwrap();
        assert_eq!(c, d);
    }

    #[test]
    fn broker_engine_flags_leave_the_agreement_unchanged() {
        // Binding solves are single-variable problems: any
        // propagation/decomposition configuration negotiates the same
        // SLA, byte for byte.
        let reference = negotiate(&broker_doc()).unwrap();
        for engine in [
            EngineOptions {
                propagate: Some(PropagationMode::Off),
                decompose: Some(false),
                incremental: false,
                ..EngineOptions::default()
            },
            EngineOptions {
                propagate: Some(PropagationMode::Full),
                decompose: Some(true),
                incremental: false,
                ..EngineOptions::default()
            },
            EngineOptions {
                propagate: None,
                decompose: None,
                incremental: true,
                ..EngineOptions::default()
            },
        ] {
            let report = negotiate_with_options(&broker_doc(), None, engine).unwrap();
            assert_eq!(report, reference, "{engine:?}");
        }
    }

    fn contended_doc() -> String {
        r#"{
            "semiring": "fuzzy",
            "domains": {"x": {"ints": [1, 9]}},
            "constraints": {
                "want": {"linear": {"var": "x", "slope": 0.1, "intercept": 0.0}}
            },
            "broker": {
                "capability": "compute",
                "variable": "x",
                "client": "want",
                "acceptance": [0.1, 1.0],
                "providers": [
                    {"id": "svc-gold", "capacity": 1, "offers": [
                        {"attribute": "Reliability", "variable": "x",
                         "shape": {"Constant": {"level": 0.9}}}]},
                    {"id": "svc-silver", "capacity": 1, "offers": [
                        {"attribute": "Reliability", "variable": "x",
                         "shape": {"Constant": {"level": 0.6}}}]}
                ]
            }
        }"#
        .to_string()
    }

    #[test]
    fn negotiate_contend_respects_declared_capacities() {
        // Four identical clients over two capacity-1 providers: every
        // client gets a typed line, and exactly two slots are granted.
        let options = ContendOptions {
            contenders: 4,
            fairness: Fairness::Leximin,
            ..ContendOptions::default()
        };
        let report = negotiate_contend(&contended_doc(), &options).unwrap();
        for client in ["client-00", "client-01", "client-02", "client-03"] {
            assert!(report.contains(client), "{report}");
        }
        let granted = report.matches(" granted ").count();
        assert_eq!(granted, 2, "{report}");
        assert!(report.contains("objective leximin"), "{report}");
        assert!(report.contains("fairness: jain"), "{report}");
    }

    #[test]
    fn negotiate_contend_without_capacities_grants_everyone() {
        let options = ContendOptions {
            contenders: 3,
            ..ContendOptions::default()
        };
        let report = negotiate_contend(&broker_doc(), &options).unwrap();
        assert_eq!(report.matches(" granted ").count(), 3, "{report}");
    }

    #[test]
    fn negotiate_contend_rejects_boolean_and_brokerless_documents() {
        let boolean = contended_doc().replace("\"fuzzy\"", "\"boolean\"");
        assert!(matches!(
            negotiate_contend(&boolean, &ContendOptions::default()),
            Err(CommandError::Usage(_))
        ));
        let no_broker = r#"{
            "semiring": "fuzzy",
            "domains": {},
            "constraints": {},
            "agent": "success"
        }"#;
        assert!(matches!(
            negotiate_contend(no_broker, &ContendOptions::default()),
            Err(CommandError::Usage(_))
        ));
    }

    #[test]
    fn broker_section_rejects_dangling_names() {
        let bad_client = broker_doc().replace("\"client\": \"c4\"", "\"client\": \"c9\"");
        assert!(matches!(
            negotiate(&bad_client),
            Err(CommandError::Usage(_))
        ));
        let bad_var = broker_doc().replace("\"variable\": \"x\"", "\"variable\": \"y\"");
        assert!(matches!(negotiate(&bad_var), Err(CommandError::Usage(_))));
    }

    #[test]
    fn exact_coalitions_beyond_the_ceiling_are_rejected() {
        let n = 19;
        let trust: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..n).map(|j| if i == j { 1.0 } else { 0.5 }).collect())
            .collect();
        let spec = CoalitionSpec {
            trust,
            compose: "avg".into(),
            require_stability: false,
            max_coalitions: None,
            algorithm: "exact".into(),
        };
        let doc = serde_json::to_string(&spec).unwrap();
        let err = coalitions(&doc).unwrap_err();
        assert!(matches!(err, CommandError::Usage(_)), "{err}");
        assert!(err.to_string().contains("18"), "{err}");
        // The heuristics still handle the same matrix.
        let local = serde_json::to_string(&CoalitionSpec {
            algorithm: "local".into(),
            ..spec
        })
        .unwrap();
        assert!(coalitions(&local).is_ok());
    }

    #[test]
    fn coalitions_metrics_report_exploration() {
        let doc = r#"{
            "trust": [[1.0, 0.9], [0.9, 1.0]],
            "algorithm": "exact"
        }"#;
        let report = coalitions_with(doc, Some(MetricsFormat::Json)).unwrap();
        let last = report.lines().last().unwrap();
        let json: serde::Value = serde_json::from_str(last).unwrap();
        assert!(
            json.get("counters")
                .unwrap()
                .get("formation.explored")
                .is_some(),
            "{last}"
        );
    }

    #[test]
    fn coalitions_from_matrix() {
        let doc = r#"{
            "trust": [
                [1.0, 0.9, 0.1, 0.1],
                [0.9, 1.0, 0.1, 0.1],
                [0.1, 0.1, 1.0, 0.9],
                [0.1, 0.1, 0.9, 1.0]
            ],
            "compose": "avg",
            "algorithm": "exact",
            "max_coalitions": 2
        }"#;
        let report = coalitions(doc).unwrap();
        assert!(report.contains("{0,1} | {2,3}"), "{report}");
    }

    #[test]
    fn coalitions_unknown_algorithm() {
        let doc = r#"{"trust": [[1.0]], "algorithm": "quantum"}"#;
        assert!(matches!(coalitions(doc), Err(CommandError::Usage(_))));
    }

    #[test]
    fn coalitions_scsp_algorithm_matches_exact_objective() {
        let doc = |algorithm: &str| {
            format!(
                r#"{{
                    "trust": [
                        [1.0, 0.9, 0.1, 0.1],
                        [0.9, 1.0, 0.1, 0.1],
                        [0.1, 0.1, 1.0, 0.9],
                        [0.1, 0.1, 0.9, 1.0]
                    ],
                    "compose": "avg",
                    "require_stability": true,
                    "algorithm": "{algorithm}"
                }}"#
            )
        };
        let objective = |report: &str| {
            report
                .lines()
                .find(|l| l.starts_with("objective"))
                .map(String::from)
                .unwrap()
        };
        let exact = coalitions(&doc("exact")).unwrap();
        // Any engine configuration reaches the same formation score
        // (the fuzzy semiring is idempotent, so the partition itself
        // may be a different equally trustworthy one).
        for engine in [
            EngineOptions::default(),
            EngineOptions {
                propagate: Some(PropagationMode::Off),
                decompose: Some(false),
                incremental: false,
                ..EngineOptions::default()
            },
        ] {
            let scsp = coalitions_with_options(&doc("scsp"), None, engine).unwrap();
            assert_eq!(objective(&scsp), objective(&exact), "{engine:?}");
            assert!(scsp.contains("stable: true"), "{scsp}");
        }
        // Beyond five agents the encoding is refused up front.
        let big: Vec<Vec<f64>> = (0..6)
            .map(|i| (0..6).map(|j| if i == j { 1.0 } else { 0.5 }).collect())
            .collect();
        let spec = CoalitionSpec {
            trust: big,
            compose: "avg".into(),
            require_stability: false,
            max_coalitions: None,
            algorithm: "scsp".into(),
        };
        let err = coalitions(&serde_json::to_string(&spec).unwrap()).unwrap_err();
        assert!(matches!(err, CommandError::Usage(_)), "{err}");
    }

    #[test]
    fn integrity_reproduces_the_paper() {
        let report = integrity(512).unwrap();
        assert!(report.contains("Imp1 ⇓ {incomp, outcomp} ⊑ Memory: HOLDS"));
        assert!(report.contains("Imp2 ⇓ {incomp, outcomp} ⊑ Memory: VIOLATED"));
        assert!(report.contains("0.96"));
        assert!(integrity(0).is_err());
    }
}
