//! Command-line suite for the `softsoa` framework.
//!
//! The paper's conclusion calls for the models "implemented and
//! integrated together in a suite of tools, in order to manage and
//! monitor dependability while building SOAs"; this crate is that
//! suite. Every command is a pure function from a JSON specification
//! to a textual report (see [`commands`]), with the `softsoa` binary
//! as a thin shell:
//!
//! ```console
//! $ softsoa solve problem.json --solver bucket
//! $ softsoa negotiate scenario.json
//! $ softsoa negotiate scenario.json --chaos-seed 7 --chaos-rate 0.2
//! $ softsoa explore scenario.json
//! $ softsoa coalitions trust.json
//! $ softsoa integrity --step 512
//! $ softsoa serve --workers 8 --session-deadline-ms 2000
//! $ softsoa load --clients 200 --fault-rate 0.15 --store-chaos-rate 0.3
//! ```
//!
//! Document formats are defined in the [`mod@format`]
//! module; see the repository's
//! `examples/specs/` directory for ready-to-run samples.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod commands;
pub mod format;

pub use commands::{
    coalitions, coalitions_with, coalitions_with_options, explore, integrity, load, negotiate,
    negotiate_chaos, negotiate_contend, negotiate_with, negotiate_with_options, parse_engine,
    parse_fairness, parse_propagation, parse_semiring, parse_var_order, serve, solve, solve_with,
    ChaosOptions, CommandError, ContendOptions, DaemonOptions, EngineOptions, LoadOptions,
    MetricsFormat, SolveOptions, SolverChoice,
};
pub use format::{
    BrokerSpec, CoalitionSpec, ConstraintSpec, DomainSpec, FormatError, NegotiationSpec,
    PolicySpec, ProblemSpec, ProviderSpec, SemiringKind, ValSpec, MAX_DOMAIN_SIZE,
};
