//! The `softsoa` command-line binary.

use std::process::ExitCode;

use softsoa_cli::{
    coalitions_with_options, explore, integrity, load, negotiate_chaos, negotiate_contend,
    negotiate_with_options, parse_engine, parse_fairness, parse_propagation, parse_semiring,
    parse_var_order, serve, solve_with, ChaosOptions, ContendOptions, DaemonOptions, EngineOptions,
    LoadOptions, MetricsFormat, SolveOptions, SolverChoice,
};

const USAGE: &str = "softsoa — soft constraints for dependable SOAs

USAGE:
    softsoa solve <problem.json> [--solver enum|bnb|bucket]
                  [--jobs <n>] [--lazy] [--stats] [--metrics[=json|pretty]]
                  [--order input|smallest|most-constrained|dynamic|estimate]
                  [--ibound <n>] [--warm-start]
                  [--propagate[=off|root|full]] [--decompose|--no-decompose]
                  [--engine auto|bnb|treedec] [--width-cap <n>]
    softsoa negotiate <scenario.json> [--metrics[=json|pretty]]
                  [--propagate[=off|root|full]] [--decompose|--no-decompose]
                  [--engine auto|bnb|treedec] [--width-cap <n>]
                  [--incremental]
                  [--chaos-seed <n>] [--chaos-rate <p>] [--chaos-horizon <n>]
                  [--chaos-retries <n>] [--chaos-deadline <n>] [--chaos-backoff <n>]
                  [--contend <n>] [--fairness fcfs|utilitarian|leximin|nash]
    softsoa explore <scenario.json>
    softsoa coalitions <trust.json> [--metrics[=json|pretty]]
                  [--propagate[=off|root|full]] [--decompose|--no-decompose]
                  [--engine auto|bnb|treedec] [--width-cap <n>]
    softsoa integrity [--step <kb>]
    softsoa serve [--addr <host:port>] [--semiring weighted|fuzzy|probabilistic]
                  [--providers <n>] [--workers <n>] [--queue <n>]
                  [--session-deadline-ms <n>] [--drain-ms <n>]
                  [--store-chaos-seed <n>] [--store-chaos-rate <p>]
                  [--wire-chaos-seed <n>] [--wire-chaos-rate <p>]
                  [--no-incremental]
                  [--fairness fcfs|utilitarian|leximin|nash]
    softsoa load  [--attach <host:port>] [--clients <n>] [--concurrency <n>]
                  [--fault-rate <p>] [--churn-rate <p>] [--seed <n>]
                  [--contended] [--waves <n>] [--wave-clients <n>] [--slots <n>]
                  [... plus the serve daemon flags when self-hosting]

--metrics appends a telemetry snapshot to the report: json (the
default) is a deterministic final line without wall-clock data; pretty
is a human-readable table with timings.

--order, --ibound and --warm-start steer the bnb solver (other solvers
ignore them): --order picks the variable-ordering heuristic, --ibound
enables mini-bucket completion bounds with the given joint-scope cap,
and --warm-start seeds the incumbent from a greedy probe. All three
leave the reported blevel and witness unchanged.

--propagate sets the soft arc-consistency mode (default root: one
bounds-propagation pass before search; full re-propagates at every
node; off disables it) and --decompose/--no-decompose toggles solving
independent constraint-graph components separately (default on). Both
preserve the reported blevel and yield an equally best witness; they
steer bnb solves, broker bindings, and the coalitions `scsp`
algorithm.

--engine picks the exact per-component engine: bnb (the default)
searches with branch-and-bound, treedec solves by bucket-tree
elimination along a min-fill/min-degree elimination order, and auto
uses the tree engine exactly when the separator width fits under
--width-cap (default 8) and falls back to bnb otherwise. treedec
forced onto a too-wide component still falls back to search, seeded by
a greedy tree bound. All engines report the same blevel and an equally
best witness.

`serve` runs the negotiation daemon (line-JSON over TCP) until stdin
reaches EOF, then drains gracefully within --drain-ms. `load` drives
the deterministic load generator — self-hosting a daemon by default
(the JSON report then includes the drain), or against a running one
with --attach. --fault-rate makes that fraction of clients hostile at
the transport level (stalls, truncated frames, slow-loris,
disconnects); --store-chaos-* injects faults inside every negotiation;
--wire-chaos-* adds server-side transport chaos. Every session must
still terminate with a typed outcome — the report's `hung` tally is
the invariant to watch.

--fairness turns on capacity-aware contended allocation. On `serve`
and `load` it batches concurrent negotiate requests in a short window
and allocates the batch jointly under the named objective (leximin
maximises the worst-off client, nash the proportional-fair product,
utilitarian the total softness; fcfs reproduces arrival order).
`load --contended` drives waves of stable-identity clients racing for
`--slots` concurrent bindings per provider and reports starvation and
Jain-index tallies. `negotiate --contend <n>` replicates a broker
scenario's request into n contending clients and prints each client's
typed outcome (granted, preempted, waitlisted, unserved) plus the
batch fairness metrics; providers may declare a `capacity` slot count.

--incremental routes broker binding solves through the persistent
incremental re-solve engine: binding problems are kept alive across
negotiation rounds as constraint deltas, clean components are reused
and the previous optimum seeds the new search. Agreements are
unchanged; `--metrics` exposes the solver.incremental.* counters
(deltas applied, components re-searched, reuse ratio).

Document formats are described in the softsoa-cli crate docs.";

/// Parses a `--metrics` / `--metrics=<format>` flag; `None` if the
/// flag is something else.
fn parse_metrics_flag(flag: &str) -> Option<Result<MetricsFormat, String>> {
    if flag == "--metrics" {
        return Some(Ok(MetricsFormat::Json));
    }
    flag.strip_prefix("--metrics=")
        .map(|value| MetricsFormat::parse(value).map_err(|e| e.to_string()))
}

/// Parses a `--propagate [=]<mode>`, `--decompose` or `--no-decompose`
/// flag into `engine`; `None` if the flag is something else.
fn parse_engine_flag<'a>(
    flag: &str,
    it: &mut impl Iterator<Item = &'a String>,
    engine: &mut EngineOptions,
) -> Option<Result<(), String>> {
    let mode = if flag == "--propagate" {
        match it.next() {
            Some(value) => value.as_str(),
            None => return Some(Err("--propagate: missing value".to_string())),
        }
    } else if let Some(value) = flag.strip_prefix("--propagate=") {
        value
    } else {
        let name = if flag == "--engine" {
            match it.next() {
                Some(value) => Some(value.as_str()),
                None => return Some(Err("--engine: missing value".to_string())),
            }
        } else {
            flag.strip_prefix("--engine=")
        };
        if let Some(name) = name {
            return Some(match parse_engine(name) {
                Ok(choice) => {
                    engine.engine = Some(choice);
                    Ok(())
                }
                Err(e) => Err(format!("--engine: {e}")),
            });
        }
        match flag {
            "--decompose" => engine.decompose = Some(true),
            "--no-decompose" => engine.decompose = Some(false),
            "--incremental" => engine.incremental = true,
            "--width-cap" => {
                return Some(parse_num(flag, it.next()).map(|n| engine.width_cap = Some(n)))
            }
            _ => return None,
        }
        return Some(Ok(()));
    };
    Some(match parse_propagation(mode) {
        Ok(mode) => {
            engine.propagate = Some(mode);
            Ok(())
        }
        Err(e) => Err(format!("--propagate: {e}")),
    })
}

/// Parses the value following a numeric flag.
fn parse_num<T: std::str::FromStr>(flag: &str, value: Option<&String>) -> Result<T, String>
where
    T::Err: std::fmt::Display,
{
    let value = value.ok_or_else(|| format!("{flag}: missing value"))?;
    value
        .parse()
        .map_err(|e| format!("{flag}: invalid value: {e}"))
}

/// Parses one daemon flag (shared between `serve` and `load`) into
/// `daemon`; `None` if the flag is something else.
fn parse_daemon_flag<'a>(
    flag: &str,
    it: &mut impl Iterator<Item = &'a String>,
    daemon: &mut DaemonOptions,
) -> Option<Result<(), String>> {
    let parsed = match flag {
        "--addr" => match it.next() {
            Some(value) => {
                daemon.addr = value.clone();
                Ok(())
            }
            None => Err("--addr: missing value".to_string()),
        },
        "--semiring" => match it.next() {
            Some(name) => match parse_semiring(name) {
                Ok(kind) => {
                    daemon.semiring = kind;
                    Ok(())
                }
                Err(e) => Err(e.to_string()),
            },
            None => Err("--semiring: missing value".to_string()),
        },
        "--providers" => parse_num(flag, it.next()).map(|n| daemon.providers = Some(n)),
        "--workers" => parse_num(flag, it.next()).map(|n| daemon.workers = Some(n)),
        "--queue" => parse_num(flag, it.next()).map(|n| daemon.queue_limit = Some(n)),
        "--session-deadline-ms" => {
            parse_num(flag, it.next()).map(|n| daemon.session_deadline_ms = Some(n))
        }
        "--drain-ms" => parse_num(flag, it.next()).map(|n| daemon.drain_ms = n),
        "--store-chaos-seed" => {
            parse_num(flag, it.next()).map(|n| daemon.store_chaos_seed = Some(n))
        }
        "--store-chaos-rate" => {
            parse_num(flag, it.next()).map(|n| daemon.store_chaos_rate = Some(n))
        }
        "--wire-chaos-seed" => parse_num(flag, it.next()).map(|n| daemon.wire_chaos_seed = Some(n)),
        "--wire-chaos-rate" => parse_num(flag, it.next()).map(|n| daemon.wire_chaos_rate = Some(n)),
        "--no-incremental" => {
            daemon.incremental = false;
            Ok(())
        }
        "--fairness" => match it.next() {
            Some(name) => match parse_fairness(name) {
                Ok(objective) => {
                    daemon.fairness = Some(objective);
                    Ok(())
                }
                Err(e) => Err(e.to_string()),
            },
            None => Err("--fairness: missing value".to_string()),
        },
        _ => return None,
    };
    Some(parsed)
}

fn run() -> Result<String, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    let command = it.next().ok_or_else(|| USAGE.to_string())?;
    match command.as_str() {
        "solve" => {
            let path = it.next().ok_or("solve: missing <problem.json>")?;
            let mut solver = SolverChoice::default();
            let mut options = SolveOptions::default();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--solver" => {
                        let name = it.next().ok_or("--solver: missing value")?;
                        solver = SolverChoice::parse(name).map_err(|e| e.to_string())?;
                    }
                    "--jobs" => {
                        let value = it.next().ok_or("--jobs: missing value")?;
                        let jobs: usize = value
                            .parse()
                            .map_err(|e| format!("--jobs: not an integer: {e}"))?;
                        options.jobs = Some(jobs);
                    }
                    "--lazy" => options.lazy = true,
                    "--stats" => options.stats = true,
                    "--order" => {
                        let name = it.next().ok_or("--order: missing value")?;
                        options.order =
                            Some(parse_var_order(name).map_err(|e| format!("--order: {e}"))?);
                    }
                    "--ibound" => {
                        let value = it.next().ok_or("--ibound: missing value")?;
                        let ibound: usize = value
                            .parse()
                            .map_err(|e| format!("--ibound: not an integer: {e}"))?;
                        options.ibound = Some(ibound);
                    }
                    "--warm-start" => options.warm_start = true,
                    other => match parse_metrics_flag(other) {
                        Some(format) => options.metrics = Some(format?),
                        None => match parse_engine_flag(other, &mut it, &mut options.engine) {
                            Some(parsed) => parsed?,
                            None => return Err(format!("solve: unknown flag `{other}`")),
                        },
                    },
                }
            }
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
            solve_with(&text, solver, options).map_err(|e| e.to_string())
        }
        "negotiate" => {
            let path = it.next().ok_or("negotiate: missing <scenario.json>")?;
            let mut chaos = ChaosOptions::default();
            let mut chaos_mode = false;
            let mut contend = ContendOptions::default();
            let mut contend_mode = false;
            while let Some(flag) = it.next() {
                let flag = flag.as_str();
                // Only --chaos-* flags select chaos mode and only
                // --contend/--fairness select contended mode; --metrics
                // and the engine flags compose with any mode.
                match flag {
                    "--contend" => {
                        contend.contenders = parse_num(flag, it.next())?;
                        contend_mode = true;
                        continue;
                    }
                    "--fairness" => {
                        let name = it.next().ok_or("--fairness: missing value")?;
                        contend.fairness = parse_fairness(name).map_err(|e| e.to_string())?;
                        contend_mode = true;
                        continue;
                    }
                    "--chaos-seed" => chaos.seed = parse_num(flag, it.next())?,
                    "--chaos-rate" => chaos.rate = parse_num(flag, it.next())?,
                    "--chaos-horizon" => chaos.horizon = parse_num(flag, it.next())?,
                    "--chaos-retries" => chaos.retries = parse_num(flag, it.next())?,
                    "--chaos-deadline" => chaos.deadline = parse_num(flag, it.next())?,
                    "--chaos-backoff" => chaos.backoff = parse_num(flag, it.next())?,
                    other => match parse_metrics_flag(other) {
                        Some(format) => {
                            chaos.metrics = Some(format?);
                            continue;
                        }
                        None => match parse_engine_flag(other, &mut it, &mut chaos.engine) {
                            Some(parsed) => {
                                parsed?;
                                continue;
                            }
                            None => return Err(format!("negotiate: unknown flag `{other}`")),
                        },
                    },
                }
                chaos_mode = true;
            }
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
            if chaos_mode && contend_mode {
                return Err("negotiate: --contend/--fairness and --chaos-* are exclusive".into());
            }
            if contend_mode {
                contend.metrics = chaos.metrics;
                contend.engine = chaos.engine;
                negotiate_contend(&text, &contend).map_err(|e| e.to_string())
            } else if chaos_mode {
                negotiate_chaos(&text, chaos).map_err(|e| e.to_string())
            } else {
                negotiate_with_options(&text, chaos.metrics, chaos.engine)
                    .map_err(|e| e.to_string())
            }
        }
        "explore" => {
            let path = it.next().ok_or("explore: missing <scenario.json>")?;
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
            explore(&text).map_err(|e| e.to_string())
        }
        "coalitions" => {
            let path = it.next().ok_or("coalitions: missing <trust.json>")?;
            let mut metrics = None;
            let mut engine = EngineOptions::default();
            while let Some(flag) = it.next() {
                match parse_metrics_flag(flag) {
                    Some(format) => metrics = Some(format?),
                    None => match parse_engine_flag(flag, &mut it, &mut engine) {
                        Some(parsed) => parsed?,
                        None => return Err(format!("coalitions: unknown flag `{flag}`")),
                    },
                }
            }
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read `{path}`: {e}"))?;
            coalitions_with_options(&text, metrics, engine).map_err(|e| e.to_string())
        }
        "integrity" => {
            let mut step = 512i64;
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--step" => {
                        let value = it.next().ok_or("--step: missing value")?;
                        step = value
                            .parse()
                            .map_err(|e| format!("--step: not an integer: {e}"))?;
                    }
                    other => return Err(format!("integrity: unknown flag `{other}`")),
                }
            }
            integrity(step).map_err(|e| e.to_string())
        }
        "serve" => {
            let mut daemon = DaemonOptions::default();
            while let Some(flag) = it.next() {
                match parse_daemon_flag(flag, &mut it, &mut daemon) {
                    Some(parsed) => parsed?,
                    None => return Err(format!("serve: unknown flag `{flag}`")),
                }
            }
            serve(&daemon).map_err(|e| e.to_string())
        }
        "load" => {
            let mut options = LoadOptions::default();
            while let Some(flag) = it.next() {
                match flag.as_str() {
                    "--attach" => {
                        let addr = it.next().ok_or("--attach: missing value")?;
                        options.attach = Some(addr.clone());
                    }
                    "--clients" => options.clients = Some(parse_num(flag, it.next())?),
                    "--concurrency" => options.concurrency = Some(parse_num(flag, it.next())?),
                    "--fault-rate" => options.fault_rate = Some(parse_num(flag, it.next())?),
                    "--churn-rate" => options.churn_rate = Some(parse_num(flag, it.next())?),
                    "--seed" => options.seed = Some(parse_num(flag, it.next())?),
                    "--contended" => options.contended = true,
                    "--waves" => options.waves = Some(parse_num(flag, it.next())?),
                    "--wave-clients" => options.wave_clients = Some(parse_num(flag, it.next())?),
                    "--slots" => options.slots = Some(parse_num(flag, it.next())?),
                    other => match parse_daemon_flag(other, &mut it, &mut options.daemon) {
                        Some(parsed) => parsed?,
                        None => return Err(format!("load: unknown flag `{other}`")),
                    },
                }
            }
            if !options.contended
                && (options.waves.is_some()
                    || options.wave_clients.is_some()
                    || options.slots.is_some())
            {
                return Err("load: --waves/--wave-clients/--slots require --contended".into());
            }
            load(&options).map_err(|e| e.to_string())
        }
        "--help" | "-h" | "help" => Ok(USAGE.to_string()),
        other => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
