//! Quickstart: soft constraints, SCSPs and the paper's Fig. 1.
//!
//! Run with `cargo run --example quickstart`.

use softsoa::core::{Assignment, Constraint, Domain, Scsp, Val, Var};
use softsoa::semiring::{Residuated, Semiring, WeightedInt};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- Semiring levels ------------------------------------------------
    // The weighted semiring ⟨ℕ∪{∞}, min, +, ∞, 0⟩ models additive costs.
    let s = WeightedInt;
    println!("weighted semiring: 3 × 4 = {}", s.times(&3, &4)); // costs add
    println!("weighted semiring: 3 + 4 = {}", s.plus(&3, &4)); // best wins
    println!("weighted residuation: 7 ÷ 3 = {}", s.div(&7, &3));
    println!();

    // --- The Fig. 1 problem ---------------------------------------------
    // Two variables over {a, b}; c1 and c3 unary, c2 binary; con = {x}.
    let x = Var::new("x");
    let y = Var::new("y");
    let problem = Scsp::new(WeightedInt)
        .with_domain(x.clone(), Domain::syms(["a", "b"]))
        .with_domain(y.clone(), Domain::syms(["a", "b"]))
        .with_constraint(
            Constraint::table(
                WeightedInt,
                std::slice::from_ref(&x),
                [(vec![Val::sym("a")], 1), (vec![Val::sym("b")], 9)],
                u64::MAX,
            )
            .with_label("c1"),
        )
        .with_constraint(
            Constraint::table(
                WeightedInt,
                &[x.clone(), y.clone()],
                [
                    (vec![Val::sym("a"), Val::sym("a")], 5),
                    (vec![Val::sym("a"), Val::sym("b")], 1),
                    (vec![Val::sym("b"), Val::sym("a")], 2),
                    (vec![Val::sym("b"), Val::sym("b")], 2),
                ],
                u64::MAX,
            )
            .with_label("c2"),
        )
        .with_constraint(
            Constraint::table(
                WeightedInt,
                std::slice::from_ref(&y),
                [(vec![Val::sym("a")], 5), (vec![Val::sym("b")], 5)],
                u64::MAX,
            )
            .with_label("c3"),
        )
        .of_interest([x.clone()]);

    let solution = problem.solve()?;
    println!("Fig. 1 weighted SCSP");
    let table = solution.solution_constraint().expect("table solver");
    for val in ["a", "b"] {
        let eta = Assignment::new().bind("x", val);
        println!("  solution ⟨{val}⟩ → {}", table.eval(&eta));
    }
    println!("  blevel(P) = {}", solution.blevel());
    let best = solution.best_assignment().expect("consistent problem");
    println!("  best assignment: {best}");
    println!();

    // --- Operators at a glance -------------------------------------------
    // Combination ⊗, projection ⇓ and entailment on the same constraints.
    let c1 = &problem.constraints()[0];
    let c2 = &problem.constraints()[1];
    let combined = c1.combine(c2);
    println!("scope of c1 ⊗ c2 = {:?}", combined.scope());
    let projected = combined.project(std::slice::from_ref(&x), problem.domains())?;
    println!(
        "(c1 ⊗ c2) ⇓ x at ⟨a⟩ = {}",
        projected.eval(&Assignment::new().bind("x", "a"))
    );
    println!(
        "c1 ⊗ c2 entails c1? {}",
        softsoa::core::entails(WeightedInt, [c1, c2], c1, problem.domains())?
    );

    Ok(())
}
