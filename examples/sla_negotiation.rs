//! SLA negotiation through the QoS broker (Secs. 4 and 4.1).
//!
//! Reproduces, end to end:
//!
//! - the fuzzy agreement of Fig. 5 (client and provider preference
//!   curves intersecting at level 0.5);
//! - the three nmsccp negotiation scenarios of Sec. 4.1 (tell /
//!   retract / update), written in the textual agent syntax.
//!
//! Run with `cargo run --example sla_negotiation`.

use softsoa::core::{Constraint, Domain, Domains, Var};
use softsoa::nmsccp::{
    parse_agent, Interpreter, Interval, Outcome, ParseEnv, Policy, Program, Store,
};
use softsoa::semiring::{Fuzzy, Unit, WeightedInt};
use softsoa::soa::{
    Broker, NegotiationRequest, OfferShape, QosDocument, QosOffer, Registry, ServiceDescription,
};
use softsoa_dependability::Attribute;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    fig5_fuzzy_agreement()?;
    println!();
    sec41_negotiation_examples()?;
    Ok(())
}

/// Fig. 5: a provider and a client negotiate over a resource amount
/// `x ∈ [1, 9]`; the agreed level is the max-min intersection, 0.5.
fn fig5_fuzzy_agreement() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Fig. 5: fuzzy agreement through the broker ==");
    let mut registry = Registry::new();
    registry.publish(ServiceDescription::new(
        "web-service-1",
        "provider-p",
        "web-service",
        QosDocument::new("web-service-1").with_offer(QosOffer {
            attribute: Attribute::Reliability,
            variable: "x".into(),
            // Provider preference falls as the client asks for more.
            shape: OfferShape::Piecewise {
                points: vec![(1, 1.0), (9, 0.0)],
            },
        }),
    ));

    let request = NegotiationRequest {
        capability: "web-service".into(),
        variable: Var::new("x"),
        domain: Domain::ints(1..=9),
        constraint: Constraint::unary(Fuzzy, "x", |v| {
            Unit::clamped((v.as_int().unwrap() as f64 - 1.0) / 8.0)
        }),
        acceptance: Interval::levels(Unit::new(0.3)?, Unit::MAX),
    };

    let broker = Broker::new(Fuzzy, registry);
    let sla = broker.negotiate(&request, QosOffer::to_fuzzy)?;
    println!("  agreement with {} ({})", sla.service, sla.provider);
    println!("  agreed level (σ⇓∅): {}", sla.agreed_level);
    if let Some((eta, level)) = &sla.binding {
        println!("  binding: {eta} at level {level}");
    }
    Ok(())
}

/// The Sec. 4.1 examples, written in the nmsccp textual syntax. `x` is
/// the number of failures to absorb; levels are hours spent recovering.
fn sec41_negotiation_examples() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Sec. 4.1: nmsccp negotiation examples (weighted) ==");
    let lin = |a: u64, b: u64| {
        Constraint::unary(WeightedInt, "x", move |v| {
            a * v.as_int().unwrap() as u64 + b
        })
    };
    let env = ParseEnv::new(WeightedInt)
        .with_constraint("c1", lin(1, 3)) // x + 3
        .with_constraint("c3", lin(2, 0)) // 2x
        .with_constraint("c4", lin(1, 5)) // x + 5
        .with_constraint(
            "c2",
            Constraint::unary(WeightedInt, "y", |v| v.as_int().unwrap() as u64 + 1),
        )
        .with_constraint("one", Constraint::always(WeightedInt))
        .with_level("two", 2u64)
        .with_level("four", 4u64)
        .with_level("ten", 10u64);
    let doms = Domains::new()
        .with("x", Domain::ints(0..=10))
        .with("y", Domain::ints(0..=10));

    let run = |label: &str, text: &str| -> Result<(), Box<dyn std::error::Error>> {
        let agent = parse_agent(text, &env)?;
        let report = Interpreter::new(Program::new())
            .with_policy(Policy::Random(3))
            .run(agent, Store::empty(WeightedInt, doms.clone()))?;
        match &report.outcome {
            Outcome::Success { store } => println!(
                "  {label}: SUCCESS, σ⇓∅ = {} hours ({} steps)",
                store.consistency()?,
                report.steps
            ),
            Outcome::Deadlock { store, .. } => println!(
                "  {label}: NO AGREEMENT (deadlock), σ⇓∅ = {} hours",
                store.consistency()?
            ),
            Outcome::OutOfFuel { .. } => println!("  {label}: out of fuel"),
            Outcome::DeadlineExceeded { store, .. } => println!(
                "  {label}: DEADLINE EXCEEDED, best σ⇓∅ = {} hours",
                store.consistency()?
            ),
        }
        Ok(())
    };

    // Example 1: both providers present their policy; P2 demands an
    // agreement between 1 and 4 hours, but c4 ⊗ c3 needs 5 even with
    // zero failures → no shared agreement.
    run(
        "Example 1 (tell)   ",
        "tell(c4) success || tell(c3) ask(one) ->[four, two] success",
    )?;

    // Example 2: P1 relaxes its policy by retracting c1 (never told —
    // a partial removal), leaving 2x + 2 → both succeed at level 2.
    run(
        "Example 2 (retract)",
        "tell(c4) retract(c1) ->[ten, two] success || tell(c3) ask(one) ->[four, two] success",
    )?;

    // Example 3: update{x}(c2) refreshes x; the store becomes y + 4,
    // depending only on the number of reboots y.
    run("Example 3 (update) ", "tell(c1) update{x}(c2) success")?;

    Ok(())
}
