//! System integrity in the federated photo-editing pipeline (Sec. 5).
//!
//! A photo shop compresses photos and sends them through a remote
//! red filter and black-and-white filter (Fig. 8). Each module
//! publishes its policy as a soft constraint; the client's `Memory`
//! requirement (`incomp ≤ outcomp`) is checked against the composed
//! implementation by *refinement* through the service interface
//! (`Imp ⇓ {incomp, outcomp} ⊑ Memory`). The quantitative variant
//! scores each module's reliability in the probabilistic semiring.
//!
//! Run with `cargo run --example photo_editing_integrity`.

use softsoa::dependability::{
    check_refinement, locally_refines, meets_requirement, photo, single_fault_campaign,
};
use softsoa::semiring::Unit;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let doms = photo::domains(4096, 512);

    // --- Crisp integrity (Classical semiring) ---------------------------
    println!("== Crisp integrity (Sec. 5) ==");
    let imp1_ok = locally_refines(&photo::imp1(), &photo::memory(), &photo::interface(), &doms)?;
    println!("  Imp1 ⇓ {{incomp, outcomp}} ⊑ Memory ?  {imp1_ok}");

    let report = check_refinement(&photo::imp2(), &photo::memory(), &photo::interface(), &doms)?;
    println!(
        "  Imp2 (unreliable red filter) upholds Memory ?  {}",
        report.holds()
    );
    if let Some(ce) = report.counterexample() {
        println!("    counterexample: {}", ce.assignment);
    }

    // --- Single-fault campaign -------------------------------------------
    println!("\n== Single-fault campaign ==");
    let verdicts = single_fault_campaign(
        &[
            photo::red_filter(),
            photo::bw_filter(),
            photo::compression(),
        ],
        &photo::memory(),
        &photo::interface(),
        &doms,
    )?;
    for v in &verdicts {
        println!(
            "  faulting {:12} → integrity {}",
            v.label.as_deref().unwrap_or("?"),
            if v.still_safe { "SAFE" } else { "VIOLATED" }
        );
    }

    // --- Quantitative analysis (Probabilistic semiring) -------------------
    println!("\n== Quantitative reliability ==");
    println!(
        "  c1(4096 Kb → 1024 Kb) = {}  (the paper's 0.96)",
        photo::stage_reliability(4096, 1024)
    );
    let imp3 = photo::imp3();
    for min in [0.0, 0.5, 0.9] {
        let req = photo::memory_prob(Unit::clamped(min));
        println!(
            "  MemoryProb({min:.1}) ⊑ Imp3 ?  {}",
            meets_requirement(&imp3, &req, &doms)?
        );
    }

    // Best (most reliable) end-to-end configuration for a 2 Mb input.
    let coarse = photo::domains(4096, 1024);
    let (eta, level) = photo::best_configuration(2048, &coarse)?;
    println!("\n  best configuration for a 2048 Kb input: {eta}");
    println!("  end-to-end reliability (blevel) = {level}");

    Ok(())
}
