//! Chaos-mode negotiation with a fixed seed (reproducible end to end).
//!
//! Runs the paper's Example 2 negotiation through the broker while a
//! deterministic fault plan — derived from each provider's seeded
//! failure model — drops transitions and retracts told policies
//! mid-session. The resilient runtime answers with retries,
//! checkpoint rollbacks and the relaxation ladder (conceding `c1`,
//! exactly the paper's nonmonotonic step), and the whole report is a
//! pure function of the seed: run this example twice and the output is
//! bit-identical.
//!
//! Run with `cargo run --example chaos_negotiation`.

use softsoa::core::{Constraint, Domain, Var};
use softsoa::nmsccp::Interval;
use softsoa::semiring::{Weight, Weighted};
use softsoa::soa::{
    Broker, ChaosConfig, NegotiationRequest, OfferShape, QosDocument, QosOffer, Registry,
    ServiceDescription, ServiceQuery,
};
use softsoa_core::solve::SolverConfig;
use softsoa_dependability::Attribute;

const SEED: u64 = 2008;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    negotiation_under_chaos()?;
    println!();
    query_under_blackouts()?;
    Ok(())
}

fn offer(variable: &str, shape: OfferShape) -> QosOffer {
    QosOffer {
        attribute: Attribute::Reliability,
        variable: variable.into(),
        shape,
    }
}

/// Example 2 under chaos: the provider tells `c3 = 2x`; the client
/// tells `c4 = x + 5` and accepts failure-management times between 1
/// and 4 hours. Naively the combined store sits at level 5 — outside
/// the interval — and the session deadlocks; under chaos the runtime
/// additionally loses messages and retracts the provider's policy.
/// Retry plus the `c1` relaxation rung completes the agreement at
/// level 2 anyway.
fn negotiation_under_chaos() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Example 2 under deterministic chaos (seed {SEED}) ==");
    let mut registry = Registry::new();
    registry.publish(ServiceDescription::new(
        "failure-mgmt-1",
        "provider-p",
        "failure-mgmt",
        QosDocument::new("failure-mgmt-1").with_offer(offer(
            "x",
            OfferShape::Linear {
                slope: 2.0,
                intercept: 0.0,
            },
        )),
    ));
    let broker = Broker::new(Weighted, registry);

    let request = NegotiationRequest {
        capability: "failure-mgmt".into(),
        variable: Var::new("x"),
        domain: Domain::ints(0..=10),
        constraint: Constraint::unary(Weighted, "x", |v| {
            Weight::saturating(v.as_int().unwrap() as f64 + 5.0)
        })
        .with_label("c4"),
        acceptance: Interval::levels(Weight::new(4.0)?, Weight::new(1.0)?),
    };
    let relaxations = [Constraint::unary(Weighted, "x", |v| {
        Weight::saturating(v.as_int().unwrap() as f64 + 3.0)
    })
    .with_label("c1")];
    let chaos = ChaosConfig {
        seed: SEED,
        fault_rate: 0.6,
        ..ChaosConfig::default()
    };

    let report =
        broker.negotiate_resilient(&request, &relaxations, &chaos, QosOffer::to_weighted)?;
    for (service, session) in &report.sessions {
        println!("-- session with {service} --");
        for entry in &session.report.trace {
            println!(
                "step {:3}  {:8} {:40} σ⇓∅ = {}",
                entry.step, entry.origin, entry.note, entry.consistency
            );
        }
        println!(
            "   outcome: {} at σ⇓∅ = {}",
            session.report.outcome, session.final_consistency
        );
    }
    println!(
        "faults: {} injected, {} transitions dropped",
        report.faults_injected, report.dropped_transitions
    );
    println!(
        "recovery: {} retries, {} rollbacks, {} relaxations, {} interval violations",
        report.retries, report.rollbacks, report.relaxations_applied, report.invariant_violations
    );
    let sla = report.sla.as_ref().expect("chaos negotiation completes");
    println!(
        "SLA: {} from {} at level {}",
        sla.service, sla.provider, sla.agreed_level
    );
    assert_eq!(sla.agreed_level, Weight::new(2.0)?);
    Ok(())
}

/// A composite query under provider blackouts: with two redundant
/// compute providers and a 40% per-attempt outage probability, retries
/// find an attempt where the stage is coverable.
fn query_under_blackouts() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Composite query under provider blackouts (seed {SEED}) ==");
    let mut registry = Registry::new();
    for (id, level) in [("compute-fast", 1.0), ("compute-slow", 2.0)] {
        registry.publish(ServiceDescription::new(
            id,
            "provider-q",
            "compute",
            QosDocument::new(id).with_offer(offer("x", OfferShape::Constant { level })),
        ));
    }
    let broker = Broker::new(Weighted, registry);
    let query = ServiceQuery {
        stages: vec![softsoa::soa::QueryStage {
            capability: "compute".into(),
            variable: Var::new("x"),
            domain: Domain::ints(0..=1),
            requirement: Constraint::always(Weighted),
        }],
        cross_constraints: vec![],
        min_level: None,
    };
    let chaos: ChaosConfig<Weighted> = ChaosConfig {
        seed: SEED,
        fault_rate: 0.4,
        max_retries: 8,
        ..ChaosConfig::default()
    };
    let report = broker.query_resilient(
        &query,
        &chaos,
        QosOffer::to_weighted,
        &SolverConfig::default(),
    )?;
    for (attempt, down) in report.blackouts.iter().enumerate() {
        let names: Vec<&str> = down.iter().map(|id| id.as_str()).collect();
        println!(
            "attempt {}: blacked out [{}]",
            attempt + 1,
            names.join(", ")
        );
    }
    let plan = report.plan.as_ref().expect("some attempt succeeds");
    println!(
        "plan after {} attempt(s): level {} via {:?}",
        report.attempts, plan.level, plan.selections
    );
    Ok(())
}
