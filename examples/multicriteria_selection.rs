//! Multi-criteria service selection and SLA monitoring.
//!
//! Sec. 4 of the paper notes that "the cartesian product of multiple
//! c-semirings is still a c-semiring and, therefore, we can model also
//! a multicriteria optimization". This example scores providers on
//! *cost* (weighted semiring) and *reliability* (probabilistic
//! semiring) at once: the product order is partial, so the solver
//! returns the Pareto frontier of non-dominated offers. The chosen
//! binding is then monitored against a simulated service, as the
//! paper's composition monitoring requires.
//!
//! Run with `cargo run --example multicriteria_selection`.

use softsoa::core::{Constraint, Domain, Scsp, Var};
use softsoa::semiring::{Probabilistic, Product, Unit, Weight, Weighted};
use softsoa::soa::{SimConfig, SimService, SlaMonitor};

type CostRel = Product<Weighted, Probabilistic>;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let semiring = CostRel::new(Weighted, Probabilistic);

    // One decision variable: which provider to bind (0, 1, 2).
    let provider = Var::new("provider");
    // Each provider's offer: (cost in €/month, reliability).
    let offers: Vec<(f64, f64)> = vec![(10.0, 0.90), (25.0, 0.99), (40.0, 0.95)];
    println!("== Offers ==");
    for (i, (cost, rel)) in offers.iter().enumerate() {
        println!("  provider {i}: {cost:5.1} €/month, reliability {rel}");
    }

    let offers_for_constraint = offers.clone();
    let offer_constraint = Constraint::unary(semiring, provider.clone(), move |v| {
        let (cost, rel) = offers_for_constraint[v.as_int().unwrap() as usize];
        (Weight::saturating(cost), Unit::clamped(rel))
    });

    let problem = Scsp::new(semiring)
        .with_domain(provider.clone(), Domain::ints(0..3))
        .with_constraint(offer_constraint)
        .of_interest([provider.clone()]);

    let solution = problem.solve()?;
    println!("\n== Pareto frontier (non-dominated offers) ==");
    for (eta, level) in solution.best() {
        println!("  {eta} → cost {}, reliability {}", level.0, level.1);
    }
    // Provider 2 is dominated by provider 1 (more expensive AND less
    // reliable), so the frontier has exactly two entries.
    assert_eq!(solution.best().len(), 2);

    // blevel is the componentwise lub — the (unattainable) ideal point.
    let blevel = solution.blevel();
    println!(
        "\n  blevel (ideal point): cost {}, reliability {}",
        blevel.0, blevel.1
    );

    // --- Pick the cheapest frontier point meeting a reliability floor ----
    let floor = Unit::new(0.95)?;
    let choice = solution
        .best()
        .iter()
        .filter(|(_, (_, rel))| *rel >= floor)
        .min_by(|(_, (c1, _)), (_, (c2, _))| c1.cmp(c2))
        .expect("some offer meets the floor");
    let chosen = choice.0.get(&provider).unwrap().as_int().unwrap() as usize;
    println!("\n== Binding: provider {chosen} (cheapest with reliability ≥ {floor}) ==");

    // --- Monitor the SLA against the simulated service -------------------
    let agreed = Unit::clamped(offers[chosen].1);
    // The provider actually delivers slightly less than agreed.
    let mut service = SimService::new(SimConfig {
        reliability: offers[chosen].1 - 0.03,
        mean_latency_ms: 12.0,
        seed: 99,
    });
    let report = SlaMonitor {
        window: 5000,
        tolerance: 0.01,
    }
    .observe(&mut service, agreed);
    println!(
        "  monitored over {} invocations: agreed {:.3}, measured {:.3} → {}",
        report.window,
        report.agreed,
        report.measured,
        if report.violated {
            "SLA VIOLATED"
        } else {
            "within SLA"
        }
    );

    Ok(())
}
