//! Trustworthy coalitions of services (Sec. 6, Figs. 9–10).
//!
//! Seven service components rate each other on a directed trust
//! network. The orchestrator partitions them into coalitions,
//! maximising the minimum coalition trustworthiness (the Fuzzy
//! semiring objective of Sec. 6.1) subject to the stability condition
//! of Def. 4 — no agent may prefer another coalition that would also
//! gain by admitting it (the "blocking coalitions" of Fig. 10).
//!
//! Run with `cargo run --example trustworthy_coalitions`.

use softsoa::coalition::{
    coalition_trust, exact_formation, find_blocking, individually_oriented, local_search,
    propagate, scsp_formation, socially_oriented, stabilize, FormationConfig, Partition,
    TrustComposition, TrustNetwork,
};
use softsoa::semiring::{Probabilistic, Unit};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let compose = TrustComposition::Average;

    // --- The Fig. 10 blocking situation ----------------------------------
    println!("== Fig. 10: blocking coalitions ==");
    let net = TrustNetwork::fig10();
    let fig10 = Partition::new(
        7,
        vec![
            [0, 1, 2].into_iter().collect(),
            [3, 4, 5, 6].into_iter().collect(),
        ],
    )?;
    println!("  candidate partition: {fig10}");
    match find_blocking(&net, &fig10, compose) {
        Some(b) => println!(
            "  BLOCKED: agent x{} prefers coalition #{} over its own #{}",
            b.agent + 1,
            b.target + 1,
            b.source + 1
        ),
        None => println!("  stable"),
    }
    let (repaired, ok) = stabilize(&net, fig10, compose, 100);
    println!("  after best-response dynamics: {repaired} (stable: {ok})");
    println!(
        "  objective (min coalition trust): {}",
        repaired.score(&net, compose)
    );

    // --- Exact optimum (stability required) -------------------------------
    println!("\n== Exact optimum over all partitions ==");
    let cfg = FormationConfig {
        compose,
        require_stability: true,
        ..Default::default()
    };
    let best = exact_formation(&net, cfg).expect("a stable partition exists");
    println!(
        "  best stable partition: {} (score {}, {} partitions examined)",
        best.partition, best.score, best.explored
    );

    // --- The paper's SCSP encoding (small n) ------------------------------
    println!("\n== Sec. 6.1 SCSP encoding (4 components) ==");
    let small = TrustNetwork::random(4, 42);
    let scsp = scsp_formation(&small, compose, true)?.expect("feasible");
    let direct = exact_formation(&small, cfg).expect("feasible");
    println!(
        "  SCSP solution:   {} (score {})",
        scsp.partition, scsp.score
    );
    println!(
        "  direct search:   {} (score {})",
        direct.partition, direct.score
    );
    assert_eq!(scsp.score, direct.score, "encodings must agree");

    // --- Greedy baselines and local search on a larger network ------------
    println!("\n== Baselines on a 12-component clustered network ==");
    let big = TrustNetwork::clustered(12, 3, 0.85, 0.15, 7);
    let ind = individually_oriented(&big, compose);
    let soc = socially_oriented(&big, compose);
    let loc = local_search(
        &big,
        FormationConfig {
            compose,
            require_stability: false,
            ..Default::default()
        },
        7,
        2000,
    );
    println!(
        "  individually oriented: score {} ({})",
        ind.score, ind.partition
    );
    println!(
        "  socially oriented:     score {} ({})",
        soc.score, soc.partition
    );
    println!(
        "  local search:          score {} ({})",
        loc.score, loc.partition
    );

    // --- Semiring trust propagation ----------------------------------------
    println!("\n== Trust propagation (multitrust over the probabilistic semiring) ==");
    // Two strangers connected only through a broker component.
    let mut sparse = TrustNetwork::new(3, Unit::MIN);
    for i in 0..3 {
        sparse.set(i, i, Unit::MAX);
    }
    for (i, j) in [(0, 1), (1, 0), (1, 2), (2, 1)] {
        sparse.set(i, j, Unit::new(0.9)?);
    }
    let strangers: softsoa::coalition::Coalition = [0, 2].into_iter().collect();
    println!(
        "  direct trust of coalition {{x1, x3}}: {}",
        coalition_trust(&sparse, &strangers, TrustComposition::Min)
    );
    let closed = propagate(&sparse, &Probabilistic);
    println!(
        "  after propagation (referral chains decay ×): {}",
        coalition_trust(&closed, &strangers, TrustComposition::Min)
    );

    Ok(())
}
