//! The SOA query engine: composite-service queries answered by the
//! constraint solver (the paper's Sec. 8 future work, built).
//!
//! A travel-photo workflow needs three stages — storage, a filter and
//! a delivery CDN — under a *total monthly budget*. Greedy per-stage
//! selection overruns the budget; compiling the whole query into one
//! SCSP lets the solver trade stages off against each other.
//!
//! Run with `cargo run --example service_query`.

use softsoa::core::{vars, Constraint, Domain, Var};
use softsoa::semiring::{Weight, Weighted};
use softsoa::soa::{
    Broker, OfferShape, QosDocument, QosOffer, QueryStage, Registry, ServiceDescription,
    ServiceQuery,
};
use softsoa_dependability::Attribute;

fn publish(
    registry: &mut Registry,
    id: &str,
    capability: &str,
    variable: &str,
    slope: f64,
    intercept: f64,
) {
    registry.publish(ServiceDescription::new(
        id,
        format!("{id}-org").as_str(),
        capability,
        QosDocument::new(id).with_offer(QosOffer {
            attribute: Attribute::Availability,
            variable: variable.into(),
            // cost(€/month) = slope · tier + intercept
            shape: OfferShape::Linear { slope, intercept },
        }),
    ));
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut registry = Registry::new();
    // Two providers per stage with different pricing curves over the
    // service tier (0 = basic, 1 = standard, 2 = premium).
    publish(&mut registry, "store-a", "storage", "s", 4.0, 2.0);
    publish(&mut registry, "store-b", "storage", "s", 1.0, 5.0);
    publish(&mut registry, "filter-a", "filter", "f", 6.0, 1.0);
    publish(&mut registry, "filter-b", "filter", "f", 2.0, 4.0);
    publish(&mut registry, "cdn-a", "delivery", "d", 3.0, 3.0);
    publish(&mut registry, "cdn-b", "delivery", "d", 8.0, 0.0);

    let broker = Broker::new(Weighted, registry);
    let tier_domain = Domain::ints(0..=2);

    // The client wants at least standard storage and at least basic+1
    // total quality across filter and delivery.
    let quality_floor = Constraint::crisp(Weighted, &vars(["f", "d"]), |v| {
        v[0].as_int().unwrap() + v[1].as_int().unwrap() >= 2
    })
    .with_label("quality-floor");

    let query = ServiceQuery {
        stages: vec![
            QueryStage {
                capability: "storage".into(),
                variable: Var::new("s"),
                domain: tier_domain.clone(),
                requirement: Constraint::crisp(Weighted, &vars(["s"]), |v| {
                    v[0].as_int().unwrap() >= 1
                })
                .with_label("storage ≥ standard"),
            },
            QueryStage {
                capability: "filter".into(),
                variable: Var::new("f"),
                domain: tier_domain.clone(),
                requirement: Constraint::always(Weighted),
            },
            QueryStage {
                capability: "delivery".into(),
                variable: Var::new("d"),
                domain: tier_domain,
                requirement: Constraint::always(Weighted),
            },
        ],
        cross_constraints: vec![quality_floor],
        min_level: Some(Weight::new(30.0)?), // budget: ≤ 30 €/month
    };

    println!("== Composite-service query ==");
    println!("  stages: storage (tier ≥ 1), filter, delivery");
    println!("  cross: filter-tier + delivery-tier ≥ 2; budget ≤ 30 €/month");

    let plan = broker.query(&query, QosOffer::to_weighted)?;
    println!("\n== Plan (jointly optimised) ==");
    for (stage, (service, provider)) in ["storage", "filter", "delivery"]
        .iter()
        .zip(&plan.selections)
    {
        println!("  {stage:9} → {service} ({provider})");
    }
    println!("  binding: {}", plan.binding);
    println!("  total cost: {} €/month", plan.level);

    // Sanity: re-price the plan by hand.
    let s = plan.binding.get(&Var::new("s")).unwrap().as_int().unwrap() as f64;
    let f = plan.binding.get(&Var::new("f")).unwrap().as_int().unwrap() as f64;
    let d = plan.binding.get(&Var::new("d")).unwrap().as_int().unwrap() as f64;
    println!(
        "  (check: best storage price at tier {s}: {}, filter at {f}: {}, cdn at {d}: {})",
        (4.0 * s + 2.0).min(s + 5.0),
        (6.0 * f + 1.0).min(2.0 * f + 4.0),
        (3.0 * d + 3.0).min(8.0 * d)
    );

    Ok(())
}
