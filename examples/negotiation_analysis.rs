//! Model-checking negotiations before signing: possibility vs.
//! guarantee.
//!
//! The broker of Sec. 4 should not bind parties to a negotiation that
//! *can* fail. The [`Explorer`] walks every schedule of an `nmsccp`
//! configuration and answers:
//!
//! - can the negotiation succeed under **some** schedule?
//! - is success **guaranteed** under every schedule?
//!
//! Shown on the paper's Examples 1 and 2 and on a schedule-dependent
//! race, plus a timed rendition where the environment relaxes the
//! store mid-negotiation.
//!
//! Run with `cargo run --example negotiation_analysis`.

use softsoa::core::{Constraint, Domain, Domains};
use softsoa::nmsccp::{
    parse_agent, Explorer, ParseEnv, Program, Store, TimedAction, TimedEvent, TimedInterpreter,
};
use softsoa::semiring::WeightedInt;

fn env() -> ParseEnv<WeightedInt> {
    let lin = |a: u64, b: u64| {
        Constraint::unary(WeightedInt, "x", move |v| {
            a * v.as_int().unwrap() as u64 + b
        })
    };
    ParseEnv::new(WeightedInt)
        .with_constraint("c1", lin(1, 3))
        .with_constraint("c3", lin(2, 0))
        .with_constraint("c4", lin(1, 5))
        .with_constraint("one", Constraint::always(WeightedInt))
        .with_constraint("h1", lin(0, 1))
        .with_level("one_h", 1u64)
        .with_level("two", 2u64)
        .with_level("four", 4u64)
        .with_level("ten", 10u64)
}

fn doms() -> Domains {
    Domains::new().with("x", Domain::ints(0..=10))
}

fn analyse(label: &str, agent_text: &str) -> Result<(), Box<dyn std::error::Error>> {
    let agent = parse_agent(agent_text, &env())?;
    let verdict =
        Explorer::new(Program::new()).explore(agent, Store::empty(WeightedInt, doms()))?;
    println!("  {label}");
    println!(
        "    possible: {:3}   guaranteed: {:3}   deadlock reachable: {:3}   ({} configs)",
        if verdict.success_reachable {
            "YES"
        } else {
            "no"
        },
        if verdict.always_succeeds && !verdict.truncated {
            "YES"
        } else {
            "no"
        },
        if verdict.deadlock_reachable {
            "YES"
        } else {
            "no"
        },
        verdict.configurations,
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== Exploring every schedule ==");
    analyse(
        "Example 1 (no relaxation):",
        "tell(c4) success || tell(c3) ask(one) ->[four, two] success",
    )?;
    analyse(
        "Example 2 (retract c1):",
        "tell(c4) retract(c1) ->[ten, two] success || tell(c3) ask(one) ->[four, two] success",
    )?;
    // A race: the client needs the store at exactly 1 hour, but two
    // 1-hour policies can both land first and push it to 2.
    analyse(
        "race (schedule-dependent):",
        "tell(h1) success || tell(h1) success || ask(one) ->[one_h, one_h] success",
    )?;

    // --- Timed relaxation ---------------------------------------------------
    println!("\n== Timed environment (Example 2 as a schedule) ==");
    let agent = parse_agent("tell(c4) tell(c3) ask(one) ->[four, two] success", &env())?;
    let schedule = vec![TimedEvent {
        at_step: 3,
        action: TimedAction::Retract(
            Constraint::unary(WeightedInt, "x", |v| v.as_int().unwrap() as u64 + 3)
                .with_label("c1"),
        ),
    }];
    let report = TimedInterpreter::new(Program::new(), schedule)
        .run(agent, Store::empty(WeightedInt, doms()))?;
    for entry in &report.report.trace {
        println!(
            "  step {:2} {:22} σ⇓∅ = {}",
            entry.step, entry.note, entry.consistency
        );
    }
    println!(
        "  outcome: {}",
        if report.report.outcome.is_success() {
            "SUCCESS"
        } else {
            "no agreement"
        }
    );
    Ok(())
}
