#!/usr/bin/env bash
# Snapshot the bounds-driven-search benchmark groups into a
# machine-readable JSON file (nanoseconds per iteration, one entry per
# benchmark id). Usage:
#
#   scripts/bench_snapshot.sh [out.json] [group ...]
#
# Runs the `bounded_vs_blind`, `bell_vs_dp`, `propagation_vs_blind`,
# `churn_incremental` and `treedec_vs_blind` criterion groups — or
# just the groups named on the command line, merging their fresh numbers into an existing
# out.json so one group can be re-measured without re-running the
# multi-minute full sweep — and parses the harness report lines, e.g.
#
#   bell_vs_dp/subset_dp/13    median  5.16 ms  min  4.79 ms  mean  5.13 ms  (1 iters/sample)
#
# into {"median_ns": ..., "min_ns": ..., "mean_ns": ...} records. The
# default output name, BENCH_10.json, is the committed snapshot for
# the bucket-tree elimination engine (BENCH_7.json was the incremental
# re-solve one, BENCH_6.json the propagation/decomposition one,
# BENCH_5.json the bounds/warm-start/coalition-DP one); CI regenerates
# it as an artifact on every push.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_10.json}"
shift $(($# > 0 ? 1 : 0))
benches=("$@")
if [ ${#benches[@]} -eq 0 ]; then
    benches=(bounded_vs_blind bell_vs_dp propagation_vs_blind churn_incremental treedec_vs_blind)
fi
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

for bench in "${benches[@]}"; do
    cargo bench -p softsoa-bench --bench "$bench" | tee -a "$raw"
done

python3 - "$raw" "$out" <<'EOF'
import json
import re
import sys

raw, out = sys.argv[1], sys.argv[2]
scale = {"ns": 1.0, "µs": 1e3, "us": 1e3, "ms": 1e6, "s": 1e9}
row = re.compile(
    r"^(?P<label>[\w./-]+)"
    r"\s+median\s+(?P<median>[\d.]+)\s+(?P<mu>\S+)"
    r"\s+min\s+(?P<min>[\d.]+)\s+(?P<nu>\S+)"
    r"\s+mean\s+(?P<mean>[\d.]+)\s+(?P<eu>\S+)"
    r"\s+\((?P<iters>\d+) iters/sample\)$"
)

groups = {}
with open(raw, encoding="utf-8") as fh:
    for line in fh:
        m = row.match(line.strip())
        if not m:
            continue
        label = m.group("label")
        group = label.split("/", 1)[0]
        groups.setdefault(group, {})[label] = {
            "median_ns": round(float(m.group("median")) * scale[m.group("mu")], 3),
            "min_ns": round(float(m.group("min")) * scale[m.group("nu")], 3),
            "mean_ns": round(float(m.group("mean")) * scale[m.group("eu")], 3),
            "iters_per_sample": int(m.group("iters")),
        }

if not groups:
    sys.exit("bench_snapshot: no benchmark report lines found")

# Partial re-measure: start from the existing snapshot (if any) and
# overwrite just the groups that were run, so the untouched groups keep
# their committed numbers.
merged = {}
try:
    with open(out, encoding="utf-8") as fh:
        merged = json.load(fh).get("groups", {})
except (FileNotFoundError, json.JSONDecodeError):
    pass
merged.update(groups)

snapshot = {
    "script": "scripts/bench_snapshot.sh",
    "groups": {g: dict(sorted(rows.items())) for g, rows in sorted(merged.items())},
}
with open(out, "w", encoding="utf-8") as fh:
    json.dump(snapshot, fh, indent=2)
    fh.write("\n")
print(f"bench_snapshot: wrote {out}")
EOF
