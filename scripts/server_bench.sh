#!/usr/bin/env bash
# Snapshot the negotiation daemon's throughput and fault envelope into
# BENCH_8.json, and the contended fairness–utility frontier into
# BENCH_9.json. Usage:
#
#   scripts/server_bench.sh [out.json] [contention_out.json]
#
# Runs the deterministic load generator (`softsoa load`, release build)
# against a self-hosted daemon twice:
#
#   fault_free — 400 well-behaved sessions (20% registry churn), no
#                injected faults: the throughput baseline.
#   chaos      — the same load with 15% hostile transports (silent
#                stalls, truncated frames, slow-loris, disconnects),
#                store-level fault injection in every negotiation
#                (rate 0.3) and server-side wire chaos (rate 0.05),
#                under a tightened 800 ms session deadline.
#
# Both rows carry sessions/sec, P50/P99/max latency, the per-outcome
# tally, and the flat-memory witness (binding-cache entries vs bound).
# The script fails if any session hangs or a drain misses its
# deadline — the dependability claims this PR exists to enforce.
#
# The contention group then runs the same fixed contended workload
# (6 waves of 6 stable clients racing for 2 single-slot providers)
# under each allocation objective — fcfs, utilitarian, leximin, nash —
# tracing the fairness–utility frontier: total agreed level vs
# starvation count and Jain index. The script fails unless leximin
# starves nobody while the FCFS baseline starves at least one client.
set -euo pipefail
cd "$(dirname "$0")/.."

out="${1:-BENCH_8.json}"
out_contention="${2:-BENCH_9.json}"

cargo build --release -p softsoa-cli
bin=target/release/softsoa

common=(--clients 400 --concurrency 24 --churn-rate 0.2
        --workers 8 --queue 128 --drain-ms 3000)

fault_free="$("$bin" load "${common[@]}" \
    --fault-rate 0 --seed 7 --session-deadline-ms 2000)"
chaos="$("$bin" load "${common[@]}" \
    --fault-rate 0.15 --seed 1008 --session-deadline-ms 800 \
    --store-chaos-seed 41 --store-chaos-rate 0.3 \
    --wire-chaos-seed 17 --wire-chaos-rate 0.05)"

python3 - "$out" <<EOF
import json
import sys

rows = {"fault_free": json.loads('''$fault_free'''),
        "chaos": json.loads('''$chaos''')}
for name, row in rows.items():
    load, drain = row["load"], row["drain"]
    assert load["hung"] == 0, f"{name}: {load['hung']} hung sessions"
    assert drain["within_deadline"], f"{name}: drain overran: {drain}"
    assert load["cache_entries"] <= load["cache_capacity"], \
        f"{name}: binding cache unbounded: {load}"
    print(f"{name:>10}: {load['sessions_per_sec']:8.1f} sessions/s  "
          f"p99 {load['p99_ms']:7.1f} ms  outcomes {load['outcomes']}")
with open(sys.argv[1], "w") as fh:
    json.dump(rows, fh, indent=2)
    fh.write("\n")
print(f"wrote {sys.argv[1]}")
EOF

contention=(--contended --waves 6 --wave-clients 6 --providers 2 --slots 1
            --seed 7 --drain-ms 3000)

fcfs="$("$bin" load "${contention[@]}" --fairness fcfs)"
utilitarian="$("$bin" load "${contention[@]}" --fairness utilitarian)"
leximin="$("$bin" load "${contention[@]}" --fairness leximin)"
nash="$("$bin" load "${contention[@]}" --fairness nash)"

python3 - "$out_contention" <<EOF
import json
import sys

rows = {"fcfs": json.loads('''$fcfs'''),
        "utilitarian": json.loads('''$utilitarian'''),
        "leximin": json.loads('''$leximin'''),
        "nash": json.loads('''$nash''')}
for name, row in rows.items():
    assert row["hung"] == 0, f"{name}: {row['hung']} hung wave sessions"
    print(f"{name:>12}: sum_level {row['sum_level']:6.2f}  "
          f"starved {row['starved_clients']}  jain {row['jain_bound']:.3f}  "
          f"max streak {row['max_denial_streak']}")
assert rows["leximin"]["starved_clients"] == 0, \
    f"leximin starves: {rows['leximin']}"
assert rows["nash"]["starved_clients"] == 0, f"nash starves: {rows['nash']}"
assert rows["fcfs"]["starved_clients"] >= 1, \
    f"fcfs fails to starve anyone — no contention: {rows['fcfs']}"
assert rows["leximin"]["jain_bound"] >= rows["fcfs"]["jain_bound"], \
    "leximin is less fair than fcfs"
with open(sys.argv[1], "w") as fh:
    json.dump(rows, fh, indent=2)
    fh.write("\n")
print(f"wrote {sys.argv[1]}")
EOF
